package interval

import (
	"sort"
	"strings"

	"repro/internal/chronon"
)

// Set is a finite union of disjoint, non-adjacent, non-empty half-open
// intervals in increasing order — the "temporal element" of Gadia's
// homogeneous model [Gad88], which §2 of the paper cites as one physical
// representation of time-stamps ("tuples containing attributes
// time-stamped with one or more finite unions of intervals").
//
// The zero Set is empty. Sets are immutable: operations return new sets.
type Set struct {
	ivs []Interval // canonical: sorted, disjoint, gaps > 0, none empty
}

// NewSet builds a set from arbitrary intervals, normalizing them: empty
// intervals are dropped; overlapping and adjacent intervals are coalesced.
func NewSet(ivs ...Interval) Set {
	tmp := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.Valid() {
			panic("interval: malformed interval in NewSet")
		}
		if !iv.Empty() {
			tmp = append(tmp, iv)
		}
	}
	if len(tmp) == 0 {
		return Set{}
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i].Start < tmp[j].Start })
	out := tmp[:1]
	for _, iv := range tmp[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End { // overlap or adjacency: coalesce
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return Set{ivs: append([]Interval(nil), out...)}
}

// Intervals returns the canonical intervals. The slice must not be
// modified.
func (s Set) Intervals() []Interval { return s.ivs }

// Empty reports whether the set contains no chronons.
func (s Set) Empty() bool { return len(s.ivs) == 0 }

// Len reports the number of maximal intervals.
func (s Set) Len() int { return len(s.ivs) }

// Duration returns the total number of chronons covered.
func (s Set) Duration() int64 {
	var d int64
	for _, iv := range s.ivs {
		d += iv.Duration()
	}
	return d
}

// Contains reports whether chronon c is covered. Binary search over the
// canonical order.
func (s Set) Contains(c chronon.Chronon) bool {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End > c })
	return i < len(s.ivs) && s.ivs[i].Contains(c)
}

// Hull returns the smallest single interval covering the set (the empty
// interval for an empty set).
func (s Set) Hull() Interval {
	if s.Empty() {
		return Interval{}
	}
	return Interval{Start: s.ivs[0].Start, End: s.ivs[len(s.ivs)-1].End}
}

// Equal reports whether two sets cover exactly the same chronons.
func (s Set) Equal(t Set) bool {
	if len(s.ivs) != len(t.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != t.ivs[i] {
			return false
		}
	}
	return true
}

// Union returns the set of chronons in s or t.
func (s Set) Union(t Set) Set {
	return NewSet(append(append([]Interval(nil), s.ivs...), t.ivs...)...)
}

// Intersect returns the set of chronons in both s and t. Linear merge over
// the two canonical sequences.
func (s Set) Intersect(t Set) Set {
	var out []Interval
	i, j := 0, 0
	for i < len(s.ivs) && j < len(t.ivs) {
		if common, ok := s.ivs[i].Intersect(t.ivs[j]); ok {
			out = append(out, common)
		}
		if s.ivs[i].End < t.ivs[j].End {
			i++
		} else {
			j++
		}
	}
	return Set{ivs: out} // pieces of canonical sets are already canonical
}

// Subtract returns the set of chronons in s but not in t.
func (s Set) Subtract(t Set) Set {
	var out []Interval
	j := 0
	for _, iv := range s.ivs {
		cur := iv
		for j < len(t.ivs) && t.ivs[j].End <= cur.Start {
			j++
		}
		k := j
		for k < len(t.ivs) && t.ivs[k].Start < cur.End {
			hole := t.ivs[k]
			if hole.Start > cur.Start {
				out = append(out, Interval{Start: cur.Start, End: hole.Start})
			}
			if hole.End >= cur.End {
				cur = Interval{Start: cur.End, End: cur.End} // fully consumed
				break
			}
			cur = Interval{Start: hole.End, End: cur.End}
			k++
		}
		if !cur.Empty() {
			out = append(out, cur)
		}
	}
	return Set{ivs: out}
}

// Complement returns the set of chronons in [lo, hi) not covered by s.
func (s Set) Complement(lo, hi chronon.Chronon) Set {
	return NewSet(Interval{Start: lo, End: hi}).Subtract(s)
}

// Overlaps reports whether the two sets share any chronon.
func (s Set) Overlaps(t Set) bool {
	i, j := 0, 0
	for i < len(s.ivs) && j < len(t.ivs) {
		if s.ivs[i].Overlaps(t.ivs[j]) {
			return true
		}
		if s.ivs[i].End < t.ivs[j].End {
			i++
		} else {
			j++
		}
	}
	return false
}

// String renders the set as "{[a, b), [c, d)}".
func (s Set) String() string {
	if s.Empty() {
		return "{}"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
