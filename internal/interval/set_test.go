package interval

import (
	"math/rand"
	"testing"

	"repro/internal/chronon"
)

func TestNewSetNormalizes(t *testing.T) {
	s := NewSet(Of(5, 10), Of(0, 3), Of(9, 12), Of(3, 4), Of(20, 20))
	want := []Interval{Of(0, 4), Of(5, 12)}
	got := s.Intervals()
	if len(got) != len(want) {
		t.Fatalf("Intervals = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Intervals[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if s.Len() != 2 || s.Empty() {
		t.Error("Len/Empty wrong")
	}
	if s.Duration() != 4+7 {
		t.Errorf("Duration = %d", s.Duration())
	}
}

func TestNewSetAdjacentCoalesce(t *testing.T) {
	s := NewSet(Of(0, 5), Of(5, 10))
	if s.Len() != 1 || s.Intervals()[0] != Of(0, 10) {
		t.Errorf("adjacent intervals not coalesced: %v", s)
	}
}

func TestNewSetPanicsOnMalformed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("malformed interval should panic")
		}
	}()
	NewSet(Interval{Start: 5, End: 3})
}

func TestSetContains(t *testing.T) {
	s := NewSet(Of(0, 5), Of(10, 15))
	cases := map[chronon.Chronon]bool{
		-1: false, 0: true, 4: true, 5: false, 7: false, 10: true, 14: true, 15: false,
	}
	for c, want := range cases {
		if got := s.Contains(c); got != want {
			t.Errorf("Contains(%d) = %v, want %v", c, got, want)
		}
	}
	if (Set{}).Contains(0) {
		t.Error("empty set contains something")
	}
}

func TestSetHull(t *testing.T) {
	s := NewSet(Of(3, 5), Of(10, 20))
	if s.Hull() != Of(3, 20) {
		t.Errorf("Hull = %v", s.Hull())
	}
	if !(Set{}).Hull().Empty() {
		t.Error("empty hull should be empty")
	}
}

func TestSetUnionIntersectSubtract(t *testing.T) {
	a := NewSet(Of(0, 10), Of(20, 30))
	b := NewSet(Of(5, 25))
	if got := a.Union(b); !got.Equal(NewSet(Of(0, 30))) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewSet(Of(5, 10), Of(20, 25))) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Subtract(b); !got.Equal(NewSet(Of(0, 5), Of(25, 30))) {
		t.Errorf("Subtract = %v", got)
	}
	if got := b.Subtract(a); !got.Equal(NewSet(Of(10, 20))) {
		t.Errorf("Subtract = %v", got)
	}
}

func TestSetSubtractEdgeCases(t *testing.T) {
	a := NewSet(Of(0, 10))
	if got := a.Subtract(NewSet(Of(0, 10))); !got.Empty() {
		t.Errorf("self subtract = %v", got)
	}
	if got := a.Subtract(Set{}); !got.Equal(a) {
		t.Errorf("subtract empty = %v", got)
	}
	if got := (Set{}).Subtract(a); !got.Empty() {
		t.Errorf("empty minus a = %v", got)
	}
	// Hole strictly inside.
	if got := a.Subtract(NewSet(Of(3, 7))); !got.Equal(NewSet(Of(0, 3), Of(7, 10))) {
		t.Errorf("punch hole = %v", got)
	}
	// Multiple holes in one interval.
	if got := a.Subtract(NewSet(Of(1, 2), Of(4, 5), Of(9, 12))); !got.Equal(NewSet(Of(0, 1), Of(2, 4), Of(5, 9))) {
		t.Errorf("multi holes = %v", got)
	}
}

func TestSetComplement(t *testing.T) {
	s := NewSet(Of(2, 4), Of(6, 8))
	if got := s.Complement(0, 10); !got.Equal(NewSet(Of(0, 2), Of(4, 6), Of(8, 10))) {
		t.Errorf("Complement = %v", got)
	}
	if got := (Set{}).Complement(0, 5); !got.Equal(NewSet(Of(0, 5))) {
		t.Errorf("Complement of empty = %v", got)
	}
}

func TestSetOverlaps(t *testing.T) {
	a := NewSet(Of(0, 5), Of(10, 15))
	if !a.Overlaps(NewSet(Of(4, 6))) {
		t.Error("should overlap")
	}
	if a.Overlaps(NewSet(Of(5, 10))) {
		t.Error("gap-filling set should not overlap")
	}
	if a.Overlaps(Set{}) {
		t.Error("empty overlaps nothing")
	}
}

func TestSetString(t *testing.T) {
	if (Set{}).String() != "{}" {
		t.Error("empty set string wrong")
	}
	s := NewSet(Of(0, 1))
	if s.String() == "" || s.String() == "{}" {
		t.Error("set string wrong")
	}
}

// TestSetAlgebraAgainstBitmap cross-checks the interval-set algebra against
// a brute-force bitmap model over a small universe.
func TestSetAlgebraAgainstBitmap(t *testing.T) {
	const universe = 64
	rng := rand.New(rand.NewSource(99))
	randomSet := func() (Set, [universe]bool) {
		var ivs []Interval
		var bits [universe]bool
		for k := 0; k < 4; k++ {
			s := int64(rng.Intn(universe))
			e := s + int64(rng.Intn(universe-int(s)))
			ivs = append(ivs, Of(s, e))
			for c := s; c < e; c++ {
				bits[c] = true
			}
		}
		return NewSet(ivs...), bits
	}
	for trial := 0; trial < 500; trial++ {
		a, ab := randomSet()
		b, bb := randomSet()
		union, inter, sub := a.Union(b), a.Intersect(b), a.Subtract(b)
		comp := a.Complement(0, universe)
		for c := 0; c < universe; c++ {
			cc := chronon.Chronon(c)
			if union.Contains(cc) != (ab[c] || bb[c]) {
				t.Fatalf("trial %d: union wrong at %d", trial, c)
			}
			if inter.Contains(cc) != (ab[c] && bb[c]) {
				t.Fatalf("trial %d: intersect wrong at %d", trial, c)
			}
			if sub.Contains(cc) != (ab[c] && !bb[c]) {
				t.Fatalf("trial %d: subtract wrong at %d", trial, c)
			}
			if comp.Contains(cc) != !ab[c] {
				t.Fatalf("trial %d: complement wrong at %d", trial, c)
			}
			if a.Contains(cc) != ab[c] {
				t.Fatalf("trial %d: contains wrong at %d", trial, c)
			}
		}
		if a.Overlaps(b) != !inter.Empty() {
			t.Fatalf("trial %d: overlaps inconsistent", trial)
		}
		// Canonical form invariants.
		prevEnd := chronon.MinChronon
		for _, iv := range union.Intervals() {
			if iv.Empty() {
				t.Fatalf("trial %d: empty interval in canonical set", trial)
			}
			if prevEnd != chronon.MinChronon && iv.Start <= prevEnd {
				t.Fatalf("trial %d: intervals not disjoint/ordered", trial)
			}
			prevEnd = iv.End
		}
	}
}
