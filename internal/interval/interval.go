// Package interval implements half-open time intervals over the chronon
// domain together with Allen's thirteen interval relations.
//
// The inter-interval taxonomy of the paper (§3.4) distinguishes temporal
// relations where elements successive in transaction time have valid-time
// intervals related "in one of the 13 possible ways of ordering two
// intervals" [All83]. This package provides those thirteen relations, their
// inverses, and the composition algebra, so the taxonomy's
// successive-transaction-time-X classes can be expressed for any X.
package interval

import (
	"fmt"

	"repro/internal/chronon"
)

// Interval is a half-open span of time [Start, End). The paper's valid-time
// interval time-stamp [vt⊢, vt⊣) uses exactly this convention, as does the
// transaction-time existence interval [tt⊢, tt⊣).
type Interval struct {
	Start chronon.Chronon // inclusive
	End   chronon.Chronon // exclusive
}

// Make constructs the interval [start, end). It panics if end < start; an
// empty interval (start == end) is permitted but relates to nothing.
func Make(start, end chronon.Chronon) Interval {
	if end < start {
		panic(fmt.Sprintf("interval: end %v before start %v", end, start))
	}
	return Interval{Start: start, End: end}
}

// Of is a convenience constructor from raw chronon values.
func Of(start, end int64) Interval {
	return Make(chronon.Chronon(start), chronon.Chronon(end))
}

// Empty reports whether the interval contains no chronons.
func (iv Interval) Empty() bool { return iv.Start >= iv.End }

// Valid reports whether the interval is well formed (Start <= End).
func (iv Interval) Valid() bool { return iv.Start <= iv.End }

// Duration returns the length of the interval in chronons (seconds).
func (iv Interval) Duration() int64 { return iv.End.Sub(iv.Start) }

// Contains reports whether the chronon c lies within [Start, End).
func (iv Interval) Contains(c chronon.Chronon) bool {
	return iv.Start <= c && c < iv.End
}

// Overlaps reports whether the two intervals share at least one chronon.
// (This is plain set intersection, not Allen's "overlaps" relation; use
// Relate for the latter.)
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start < other.End && other.Start < iv.End
}

// Intersect returns the common sub-interval of iv and other and whether it
// is non-empty.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	s := chronon.Max(iv.Start, other.Start)
	e := chronon.Min(iv.End, other.End)
	if s >= e {
		return Interval{}, false
	}
	return Interval{Start: s, End: e}, true
}

// Hull returns the smallest interval covering both iv and other.
func (iv Interval) Hull(other Interval) Interval {
	return Interval{
		Start: chronon.Min(iv.Start, other.Start),
		End:   chronon.Max(iv.End, other.End),
	}
}

// Equal reports whether the two intervals have identical endpoints.
func (iv Interval) Equal(other Interval) bool { return iv == other }

// String renders the interval as "[start, end)".
func (iv Interval) String() string {
	return fmt.Sprintf("[%v, %v)", iv.Start, iv.End)
}

// At returns the degenerate "instant" interval [c, c+1) covering exactly one
// chronon.
func At(c chronon.Chronon) Interval {
	return Interval{Start: c, End: c.Add(1)}
}
