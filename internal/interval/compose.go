package interval

import "sync"

// Compose returns Allen's composition of r and s: the set of relations that
// can hold between intervals a and c given that a r b and b s c for some
// interval b. The full 13x13 composition table is derived once, on first
// use, by exhaustive enumeration of endpoint configurations.
//
// Three intervals have at most six distinct endpoints, so enumerating all
// interval triples over a ten-point domain realizes every qualitative
// configuration and therefore yields the exact table.
func Compose(r, s Relation) RelationSet {
	composeOnce.Do(buildComposeTable)
	return composeTable[r][s]
}

var (
	composeOnce  sync.Once
	composeTable [NumRelations][NumRelations]RelationSet
)

func buildComposeTable() {
	const points = 10
	var ivs []Interval
	for s := int64(0); s < points; s++ {
		for e := s + 1; e <= points; e++ {
			ivs = append(ivs, Of(s, e))
		}
	}
	for _, a := range ivs {
		for _, b := range ivs {
			r := Relate(a, b)
			for _, c := range ivs {
				s := Relate(b, c)
				composeTable[r][s] = composeTable[r][s].Add(Relate(a, c))
			}
		}
	}
}
