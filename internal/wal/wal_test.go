package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// payloads the tests append; each is distinct so replay order is checkable.
func testPayload(i int) []byte { return []byte(fmt.Sprintf("payload-%04d", i)) }

func mustOpen(t *testing.T, opts Options) *Log {
	t.Helper()
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append(Kind(1), "rel", testPayload(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func TestWALAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Sync: SyncAlways})
	for i := 0; i < 5; i++ {
		lsn, err := l.Append(Kind(byte(i+1)), fmt.Sprintf("rel-%d", i), testPayload(i))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("Append %d: lsn = %d, want %d", i, lsn, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := mustOpen(t, Options{Dir: dir, Sync: SyncAlways})
	defer l2.Close()
	recs := l2.TakeRecovered()
	if len(recs) != 5 {
		t.Fatalf("recovered %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Kind != Kind(byte(i+1)) ||
			r.Rel != fmt.Sprintf("rel-%d", i) || string(r.Payload) != string(testPayload(i)) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if got := l2.TakeRecovered(); got != nil {
		t.Fatalf("second TakeRecovered = %v, want nil", got)
	}
	// Appending continues the LSN sequence.
	lsn, err := l2.Append(Kind(9), "rel", nil)
	if err != nil || lsn != 6 {
		t.Fatalf("post-recovery Append = %d, %v; want 6", lsn, err)
	}
}

func TestWALSegmentRollingAndReopen(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 128})
	appendN(t, l, 20)
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("Segments = %d, want several (roll threshold 128B)", st.Segments)
	}
	if st.LastLSN != 20 || st.DurableLSN != 20 || st.Appended != 20 {
		t.Fatalf("stats = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := mustOpen(t, Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 128})
	defer l2.Close()
	recs := l2.TakeRecovered()
	if len(recs) != 20 {
		t.Fatalf("recovered %d records, want 20", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || string(r.Payload) != string(testPayload(i)) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

func TestWALTruncateBelow(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 128})
	appendN(t, l, 20)
	before := l.Stats().Segments
	cut := l.DurableLSN()
	removed, err := l.TruncateBelow(cut)
	if err != nil {
		t.Fatalf("TruncateBelow: %v", err)
	}
	if removed != before-1 {
		t.Fatalf("removed %d segments, want %d (all but the active one)", removed, before-1)
	}
	if st := l.Stats(); st.Segments != 1 || st.TruncatedSegments != uint64(removed) {
		t.Fatalf("stats after truncation = %+v", st)
	}
	// Appends continue and a reopen starts from the surviving segment.
	if _, err := l.Append(Kind(1), "rel", testPayload(20)); err != nil {
		t.Fatalf("Append after truncation: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2 := mustOpen(t, Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 128})
	defer l2.Close()
	recs := l2.TakeRecovered()
	if len(recs) == 0 || recs[len(recs)-1].LSN != 21 {
		t.Fatalf("recovered %d records, last %v; want tail through lsn 21", len(recs), recs)
	}
	// Only the records the truncation kept (a suffix) are recovered.
	if recs[0].LSN == 1 {
		t.Fatal("truncated records reappeared on reopen")
	}
}

func TestWALSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncGroup, SyncInterval} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, Options{Dir: dir, Sync: policy})
			appendN(t, l, 10)
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			l2 := mustOpen(t, Options{Dir: dir, Sync: policy})
			defer l2.Close()
			if n := len(l2.TakeRecovered()); n != 10 {
				t.Fatalf("recovered %d records, want 10", n)
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "group": SyncGroup, "interval": SyncInterval} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("%v.String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy(sometimes) succeeded")
	}
}

func TestWALFailStopOnWriteError(t *testing.T) {
	fs := NewErrFS()
	l := mustOpen(t, Options{FS: fs, Sync: SyncAlways})
	appendN(t, l, 3)
	fs.FailAt(1, FaultError)
	if _, err := l.Append(Kind(1), "rel", testPayload(3)); !errors.Is(err, ErrInjected) {
		t.Fatalf("Append under fault = %v, want ErrInjected", err)
	}
	// The log is poisoned: later appends fail without touching the file.
	if _, err := l.Append(Kind(1), "rel", testPayload(4)); !errors.Is(err, ErrInjected) {
		t.Fatalf("Append after poison = %v, want sticky ErrInjected", err)
	}
	if err := l.Err(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Err = %v, want ErrInjected", err)
	}
	l.Close()

	// Recovery sees exactly the acknowledged records.
	l2 := mustOpen(t, Options{FS: fs, Sync: SyncAlways})
	if n := len(l2.TakeRecovered()); n != 3 {
		t.Fatalf("recovered %d records, want 3", n)
	}
	l2.Close()
}

func TestWALShortWriteTornFrame(t *testing.T) {
	fs := NewErrFS()
	l := mustOpen(t, Options{FS: fs, Sync: SyncAlways})
	appendN(t, l, 3)
	fs.FailAt(1, FaultShortWrite)
	if _, err := l.Append(Kind(1), "rel", testPayload(3)); !errors.Is(err, ErrInjected) {
		t.Fatalf("Append under short write = %v, want ErrInjected", err)
	}
	l.Close()

	// The half-written frame is a torn tail; replay stops at record 3.
	l2 := mustOpen(t, Options{FS: fs, Sync: SyncAlways})
	defer l2.Close()
	recs := l2.TakeRecovered()
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	// And the log can append again past the discarded tail.
	if lsn, err := l2.Append(Kind(1), "rel", testPayload(9)); err != nil || lsn != 4 {
		t.Fatalf("Append after torn-tail recovery = %d, %v; want 4", lsn, err)
	}
}

func TestWALGroupCommitBatches(t *testing.T) {
	fs := NewErrFS()
	l := mustOpen(t, Options{FS: fs, Sync: SyncGroup})
	defer l.Close()
	// Write a burst without waiting, then one WaitDurable for the last LSN:
	// the elected leader must cover the whole burst with few fsyncs.
	var last uint64
	for i := 0; i < 50; i++ {
		lsn, err := l.Write(Kind(1), "rel", testPayload(i))
		if err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
		last = lsn
	}
	if err := l.WaitDurable(last); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
	st := l.Stats()
	if st.DurableLSN < last {
		t.Fatalf("DurableLSN = %d, want >= %d", st.DurableLSN, last)
	}
	if st.MaxBatch < 2 {
		t.Fatalf("MaxBatch = %d, want a batched fsync", st.MaxBatch)
	}
	if st.MeanBatch() <= 1 {
		t.Fatalf("MeanBatch = %v, want > 1", st.MeanBatch())
	}
}

func TestWALCorruptSealedSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 128})
	appendN(t, l, 20)
	if l.Stats().Segments < 2 {
		t.Fatal("test needs at least one sealed segment")
	}
	l.Close()

	// Flip a payload byte in the FIRST (sealed) segment.
	names, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(names) < 2 {
		t.Fatalf("segments on disk = %v", names)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0xff
	if err := os.WriteFile(names[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Sync: SyncAlways}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over corrupt sealed segment = %v, want ErrCorrupt", err)
	}
}

func TestWALDamagedFinalHeaderRecreated(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 128})
	appendN(t, l, 20)
	segs := l.Stats().Segments
	if segs < 2 {
		t.Fatal("test needs a sealed segment")
	}
	l.Close()

	// Mangle the FINAL segment's header: the crash-interrupted-roll case.
	names, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	final := names[len(names)-1]
	data, err := os.ReadFile(final)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff
	if err := os.WriteFile(final, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 128})
	defer l2.Close()
	recs := l2.TakeRecovered()
	if len(recs) == 0 || len(recs) >= 20 {
		t.Fatalf("recovered %d records, want the sealed prefix only", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has lsn %d", i, r.LSN)
		}
	}
	// The active segment was recreated; the log accepts appends at the
	// next LSN after the surviving prefix.
	lsn, err := l2.Append(Kind(1), "rel", nil)
	if err != nil || lsn != uint64(len(recs)+1) {
		t.Fatalf("Append = %d, %v; want %d", lsn, err, len(recs)+1)
	}
}

func TestWALClosedRejects(t *testing.T) {
	l := mustOpen(t, Options{FS: NewErrFS(), Sync: SyncAlways})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := l.Append(Kind(1), "rel", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestWALRecordTooLarge(t *testing.T) {
	l := mustOpen(t, Options{FS: NewErrFS(), Sync: SyncAlways})
	defer l.Close()
	if _, err := l.Append(Kind(1), "rel", make([]byte, maxFrame)); err == nil {
		t.Fatal("oversized Append succeeded")
	}
	// The rejection is a validation error, not an I/O failure: the log
	// stays healthy.
	if err := l.Err(); err != nil {
		t.Fatalf("Err after oversized append = %v, want nil", err)
	}
	if _, err := l.Append(Kind(1), "rel", []byte("ok")); err != nil {
		t.Fatalf("Append after rejection: %v", err)
	}
}
