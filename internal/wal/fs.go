package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the small file-system surface the log needs. Production uses
// DirFS; tests substitute ErrFS to inject faults at exact operation
// boundaries — every byte the log persists or recovers flows through this
// interface, which is what makes the recovery guarantees testable rather
// than merely claimed.
type FS interface {
	// List returns the file names in the log directory, in any order.
	List() ([]string, error)
	// ReadFile returns a file's full contents.
	ReadFile(name string) ([]byte, error)
	// Create makes (or truncates) a file and opens it for appending. The
	// implementation must make the file's existence durable (DirFS fsyncs
	// the directory) so a crash cannot lose a whole segment by name.
	Create(name string) (File, error)
	// OpenAppend opens an existing file for appending after truncating it
	// to size bytes — how a reopened log discards a torn tail.
	OpenAppend(name string, size int64) (File, error)
	// Remove deletes a file (log truncation).
	Remove(name string) error
}

// File is an append-only handle.
type File interface {
	Write(p []byte) (int, error)
	// Sync makes everything written so far durable.
	Sync() error
	Close() error
}

// DirFS returns the production FS rooted at dir.
func DirFS(dir string) FS { return &osFS{dir: dir} }

type osFS struct{ dir string }

func (o *osFS) List() ([]string, error) {
	des, err := os.ReadDir(o.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, de := range des {
		if !de.IsDir() {
			out = append(out, de.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

func (o *osFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(o.dir, name))
}

func (o *osFS) Create(name string) (File, error) {
	f, err := os.OpenFile(filepath.Join(o.dir, name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	o.syncDir()
	return f, nil
}

func (o *osFS) OpenAppend(name string, size int64) (File, error) {
	f, err := os.OpenFile(filepath.Join(o.dir, name), os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func (o *osFS) Remove(name string) error {
	if err := os.Remove(filepath.Join(o.dir, name)); err != nil {
		return err
	}
	o.syncDir()
	return nil
}

// syncDir flushes the directory entry table so renames/creates/removes
// survive power loss. Best effort: not every platform lets a directory be
// fsynced, and the segment contents themselves are CRC-guarded.
func (o *osFS) syncDir() {
	if d, err := os.Open(o.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
