// Package wal is a segmented, append-only write-ahead log with CRC32C-
// framed records and group commit. The catalog routes every mutation
// through it before acknowledgment, which restores the paper's core
// transaction-time invariant under crashes: an acknowledged append to a
// transaction-time relation is part of the history the system actually
// stored, even across kill -9.
//
// Each segment file is named by the LSN of its first record and starts
// with a checksummed header; records follow as independently checksummed
// frames, so a torn tail (the crash-interrupted last write) is detected
// and discarded at the last whole record instead of being replayed as
// garbage. Durability is fail-stop: the first I/O error poisons the log
// and every later append or commit wait reports it, because after a
// failed or short write the tail state of the segment is unknown and
// appending past it could orphan durable records behind garbage.
//
// Commit protocol: Write frames the record under the log mutex (cheap),
// WaitDurable blocks until an fsync covers the record's LSN. Under the
// group policy the first waiter becomes the sync leader, fsyncs once for
// every record written so far, and wakes the rest — one fsync per batch of
// concurrent committers. Append is the two calls fused.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	segMagic   = "TSWL"
	segVersion = 1
	// headerSize is magic + u16 version + u64 base LSN + u32 CRC.
	headerSize = 18
	// frameMin is the smallest frame body: u64 LSN + u8 kind + u16 rel len.
	frameMin = 11
	// maxFrame bounds a frame body. A single catalog mutation is tiny,
	// and even a batched-ingest frame (N insertions in one record) stays
	// well inside 16 MiB; anything larger is corruption.
	maxFrame = 1 << 24

	defaultSegmentBytes = 64 << 20
	defaultSyncEvery    = 100 * time.Millisecond
)

// MaxFrameBytes is the largest frame body the log accepts — exported so
// batching callers can bound a multi-record payload before staging it.
const MaxFrameBytes = maxFrame

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors.
var (
	// ErrCorrupt reports damage replay cannot attribute to a torn tail:
	// a mangled sealed segment or an LSN discontinuity.
	ErrCorrupt = errors.New("wal: corrupt log")
	// ErrClosed reports use of a closed log.
	ErrClosed = errors.New("wal: closed")
)

// SyncPolicy selects when an acknowledged record is durable.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs inside every Write: one fsync per record.
	SyncAlways SyncPolicy = iota
	// SyncGroup batches concurrent committers behind a single fsync.
	SyncGroup
	// SyncInterval acknowledges immediately and fsyncs on a timer; a crash
	// may lose up to SyncEvery of acknowledged writes. Callers choose this
	// loss window explicitly.
	SyncInterval
)

// ParseSyncPolicy maps a -wal-sync flag value to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "group":
		return SyncGroup, nil
	case "interval":
		return SyncInterval, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, group, or interval)", s)
}

// String names the policy as the flag spells it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncGroup:
		return "group"
	case SyncInterval:
		return "interval"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Kind tags a record's meaning. The log does not interpret it; the
// catalog defines the vocabulary and must keep the values stable across
// releases, since they are replayed from disk.
type Kind uint8

// Record is one logical log entry.
type Record struct {
	LSN     uint64
	Kind    Kind
	Rel     string // owning relation name
	Payload []byte
}

// Options parameterizes Open.
type Options struct {
	// Dir is the segment directory, created if missing. Ignored when FS is
	// set.
	Dir string
	// FS overrides the file system (fault injection, fuzzing).
	FS FS
	// Sync is the commit durability policy.
	Sync SyncPolicy
	// SegmentBytes rolls the active segment once it exceeds this size.
	SegmentBytes int64
	// SyncEvery is the SyncInterval flush period.
	SyncEvery time.Duration
}

// Stats are the log's lifetime gauges, exported through /metrics.
type Stats struct {
	Appended          uint64        // records written
	Fsyncs            uint64        // fsyncs issued
	SyncedRecords     uint64        // records covered by those fsyncs
	MaxBatch          uint64        // largest single-fsync batch
	Replayed          uint64        // records recovered by Open
	ReplayDuration    time.Duration // Open scan plus catalog re-apply
	Segments          int           // live segment files
	LastLSN           uint64        // last written LSN
	DurableLSN        uint64        // last fsync-covered LSN
	TruncatedSegments uint64        // segments deleted by truncation
	VerifyFailures    uint64        // ScrubSegment checks that found damage
}

// MeanBatch is the average records per fsync.
func (s Stats) MeanBatch() float64 {
	if s.Fsyncs == 0 {
		return 0
	}
	return float64(s.SyncedRecords) / float64(s.Fsyncs)
}

type segmentInfo struct {
	name string
	base uint64 // LSN of the first record
	last uint64 // LSN of the last record; base-1 while empty
	file File   // open handle; sealed handles stay open so a racing group-commit fsync never hits a closed fd
	// rels names every relation with a record in this segment, so
	// segment-level corruption can be attributed to exactly the
	// relations whose history it carries.
	rels map[string]struct{}
}

func (s *segmentInfo) addRel(rel string) {
	if s.rels == nil {
		s.rels = make(map[string]struct{})
	}
	s.rels[rel] = struct{}{}
}

// Log is an open write-ahead log.
type Log struct {
	fs   FS
	opts Options

	mu       sync.Mutex // serializes appends, rolls, truncation
	segs     []segmentInfo
	size     int64  // bytes in the active segment
	next     uint64 // next LSN to assign
	written  uint64 // last LSN handed to the OS
	appended uint64
	closed   bool
	stale    []File // handles of truncated segments, closed on Close

	smu     sync.Mutex // guards the durability watermark and sync state
	scond   *sync.Cond
	durable uint64
	syncing bool  // a sync leader is between election and publication
	failed  error // sticky first I/O error: the log is fail-stop

	fsyncs     uint64
	syncedRecs uint64
	maxBatch   uint64

	recovered   []Record
	replayed    uint64
	replayDur   time.Duration
	truncated   uint64
	verifyFails uint64

	stopc chan struct{}
	wg    sync.WaitGroup
}

func segName(base uint64) string { return fmt.Sprintf("wal-%020d.seg", base) }

// Open scans the directory, validates every segment, recovers the whole
// records (read them with TakeRecovered), discards a torn tail in the
// final segment, and prepares the log for appending. Damage anywhere a
// torn tail cannot explain aborts with ErrCorrupt rather than silently
// dropping history.
func Open(opts Options) (*Log, error) {
	fsys := opts.FS
	if fsys == nil {
		if opts.Dir == "" {
			return nil, errors.New("wal: neither Dir nor FS given")
		}
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("wal: log dir: %w", err)
		}
		fsys = DirFS(opts.Dir)
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = defaultSyncEvery
	}
	l := &Log{fs: fsys, opts: opts}
	l.scond = sync.NewCond(&l.smu)

	start := time.Now()
	names, err := fsys.List()
	if err != nil {
		return nil, fmt.Errorf("wal: listing segments: %w", err)
	}
	var segNames []string
	for _, n := range names {
		if strings.HasPrefix(n, "wal-") && strings.HasSuffix(n, ".seg") {
			segNames = append(segNames, n)
		}
	}
	sort.Strings(segNames)

	next := uint64(1)
	recreate := false
	activeValid := 0
	var all []Record
	for i, name := range segNames {
		final := i == len(segNames)-1
		data, err := fsys.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("wal: reading %s: %w", name, err)
		}
		base, recs, validLen, headerOK := parseSegment(data)
		if !headerOK {
			if !final {
				return nil, fmt.Errorf("%w: sealed segment %s has a damaged header", ErrCorrupt, name)
			}
			// The crash interrupted a roll before the new segment's header
			// was durable; no acknowledged record can live in it. Recreate
			// the active segment from scratch.
			if name != segName(next) {
				if err := fsys.Remove(name); err != nil {
					return nil, fmt.Errorf("wal: removing damaged %s: %w", name, err)
				}
			}
			recreate = true
			break
		}
		if len(l.segs) == 0 {
			next = base // earlier segments were truncated away
		} else if base != next {
			return nil, fmt.Errorf("%w: segment %s starts at lsn %d, want %d", ErrCorrupt, name, base, next)
		}
		if validLen < len(data) && !final {
			return nil, fmt.Errorf("%w: sealed segment %s has a torn tail", ErrCorrupt, name)
		}
		next += uint64(len(recs))
		all = append(all, recs...)
		si := segmentInfo{name: name, base: base, last: next - 1}
		for _, rec := range recs {
			si.addRel(rec.Rel)
		}
		l.segs = append(l.segs, si)
		activeValid = validLen
	}

	l.next = next
	if len(l.segs) == 0 || recreate {
		f, name, err := l.createSegment(next)
		if err != nil {
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: syncing %s header: %w", name, err)
		}
		l.segs = append(l.segs, segmentInfo{name: name, base: next, last: next - 1, file: f})
		l.size = headerSize
	} else {
		active := &l.segs[len(l.segs)-1]
		f, err := fsys.OpenAppend(active.name, int64(activeValid))
		if err != nil {
			return nil, fmt.Errorf("wal: reopening %s: %w", active.name, err)
		}
		active.file = f
		l.size = int64(activeValid)
	}
	l.written = next - 1
	l.durable = next - 1
	l.recovered = all
	l.replayed = uint64(len(all))
	l.replayDur = time.Since(start)

	if opts.Sync == SyncInterval {
		l.stopc = make(chan struct{})
		l.wg.Add(1)
		go l.syncLoop(l.stopc)
	}
	return l, nil
}

func (l *Log) createSegment(base uint64) (File, string, error) {
	name := segName(base)
	f, err := l.fs.Create(name)
	if err != nil {
		return nil, "", fmt.Errorf("wal: creating %s: %w", name, err)
	}
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, segMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, segVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, base)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(hdr, castagnoli))
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, "", fmt.Errorf("wal: writing %s header: %w", name, err)
	}
	return f, name, nil
}

// parseSegment decodes one segment file. headerOK=false means the header
// itself is unreadable (an empty or crash-torn segment). validLen is the
// byte length of the well-formed prefix and recs the whole records inside
// it. Framing damage past the header is reported through validLen <
// len(data), never as an error: only the caller knows whether a torn tail
// is legal (final segment) or corruption (sealed one).
func parseSegment(data []byte) (base uint64, recs []Record, validLen int, headerOK bool) {
	if len(data) < headerSize || string(data[:4]) != segMagic {
		return 0, nil, 0, false
	}
	if binary.LittleEndian.Uint32(data[14:18]) != crc32.Checksum(data[:14], castagnoli) {
		return 0, nil, 0, false
	}
	if binary.LittleEndian.Uint16(data[4:6]) != segVersion {
		return 0, nil, 0, false
	}
	base = binary.LittleEndian.Uint64(data[6:14])
	if base == 0 || base > math.MaxUint64/2 {
		return 0, nil, 0, false
	}
	off := headerSize
	next := base
	for {
		if len(data)-off < 4 {
			break
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n < frameMin || n > maxFrame || len(data)-off < 4+n+4 {
			break
		}
		body := data[off+4 : off+4+n]
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(data[off+4+n:]) {
			break
		}
		lsn := binary.LittleEndian.Uint64(body)
		relLen := int(binary.LittleEndian.Uint16(body[9:11]))
		if frameMin+relLen > n || lsn != next {
			break
		}
		recs = append(recs, Record{
			LSN:     lsn,
			Kind:    Kind(body[8]),
			Rel:     string(body[frameMin : frameMin+relLen]),
			Payload: append([]byte(nil), body[frameMin+relLen:]...),
		})
		next++
		off += 4 + n + 4
	}
	return base, recs, off, true
}

// FrameBody encodes a record's frame body exactly as it is framed on
// disk: u64 LSN, u8 kind, u16 relation length, relation, payload. It is
// exported because these bytes are the integrity subsystem's Merkle
// leaf identity — the primary's write path, boot replay, and follower
// apply all hash the same encoding of the same record.
func FrameBody(lsn uint64, kind Kind, rel string, payload []byte) []byte {
	body := make([]byte, 0, frameMin+len(rel)+len(payload))
	body = binary.LittleEndian.AppendUint64(body, lsn)
	body = append(body, byte(kind))
	body = binary.LittleEndian.AppendUint16(body, uint16(len(rel)))
	body = append(body, rel...)
	body = append(body, payload...)
	return body
}

func appendFrame(buf []byte, lsn uint64, kind Kind, rel string, payload []byte) []byte {
	body := FrameBody(lsn, kind, rel, payload)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body, castagnoli))
}

// TakeRecovered returns the records Open recovered and releases them.
func (l *Log) TakeRecovered() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	recs := l.recovered
	l.recovered = nil
	return recs
}

// AddReplayDuration folds the caller's re-apply time into the replay
// gauge, so "last replay" covers scan plus application.
func (l *Log) AddReplayDuration(d time.Duration) {
	l.mu.Lock()
	l.replayDur += d
	l.mu.Unlock()
}

// Err returns the sticky I/O error that poisoned the log, if any.
func (l *Log) Err() error {
	l.smu.Lock()
	defer l.smu.Unlock()
	return l.failed
}

func (l *Log) setFailed(err error) {
	l.smu.Lock()
	if l.failed == nil {
		l.failed = err
	}
	l.scond.Broadcast()
	l.smu.Unlock()
}

// LastLSN reports the last written LSN.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.written
}

// DurableLSN reports the last fsync-covered LSN.
func (l *Log) DurableLSN() uint64 {
	l.smu.Lock()
	defer l.smu.Unlock()
	return l.durable
}

// Write frames one record into the active segment and returns its LSN.
// The record is NOT durable yet: pair with WaitDurable (or use Append).
// Writes for one relation must happen in that relation's commit order —
// the catalog guarantees this by writing under the relation's exclusive
// lock.
func (l *Log) Write(kind Kind, rel string, payload []byte) (uint64, error) {
	if len(rel) > math.MaxUint16 {
		return 0, fmt.Errorf("wal: relation name too long (%d bytes)", len(rel))
	}
	if frameMin+len(rel)+len(payload) > maxFrame {
		return 0, fmt.Errorf("wal: record too large (%d bytes)", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if err := l.Err(); err != nil {
		return 0, err
	}
	frame := appendFrame(nil, l.next, kind, rel, payload)
	if l.size+int64(len(frame)) > l.opts.SegmentBytes && l.size > headerSize {
		if err := l.rollLocked(); err != nil {
			l.setFailed(err)
			return 0, err
		}
	}
	active := &l.segs[len(l.segs)-1]
	if _, err := active.file.Write(frame); err != nil {
		err = fmt.Errorf("wal: append: %w", err)
		l.setFailed(err)
		return 0, err
	}
	lsn := l.next
	l.next++
	l.written = lsn
	l.size += int64(len(frame))
	l.appended++
	active.last = lsn
	active.addRel(rel)
	if l.opts.Sync == SyncAlways {
		if err := active.file.Sync(); err != nil {
			err = fmt.Errorf("wal: fsync: %w", err)
			l.setFailed(err)
			return 0, err
		}
		l.publishDurable(lsn)
	}
	return lsn, nil
}

// rollLocked seals the active segment (fsync, keep the handle open) and
// starts the next one. Caller holds l.mu.
func (l *Log) rollLocked() error {
	active := &l.segs[len(l.segs)-1]
	if err := active.file.Sync(); err != nil {
		return fmt.Errorf("wal: fsync before roll: %w", err)
	}
	l.publishDurable(l.written)
	f, name, err := l.createSegment(l.next)
	if err != nil {
		return err
	}
	l.segs = append(l.segs, segmentInfo{name: name, base: l.next, last: l.next - 1, file: f})
	l.size = headerSize
	return nil
}

// publishDurable advances the durability watermark to target after a
// successful fsync and books the batch.
func (l *Log) publishDurable(target uint64) {
	l.smu.Lock()
	l.fsyncs++
	if target > l.durable {
		batch := target - l.durable
		l.syncedRecs += batch
		if batch > l.maxBatch {
			l.maxBatch = batch
		}
		l.durable = target
	}
	l.scond.Broadcast()
	l.smu.Unlock()
}

// WaitDurable blocks until the record at lsn is durable under the log's
// policy. Under SyncGroup the first waiter becomes the sync leader: it
// fsyncs once for everything written so far and wakes the batch.
func (l *Log) WaitDurable(lsn uint64) error {
	switch l.opts.Sync {
	case SyncAlways:
		// Write already synced or poisoned the log.
		l.smu.Lock()
		defer l.smu.Unlock()
		if l.durable < lsn && l.failed != nil {
			return l.failed
		}
		return nil
	case SyncInterval:
		// Deliberately weak: durability arrives within SyncEvery.
		return nil
	}
	l.smu.Lock()
	for {
		if l.durable >= lsn {
			l.smu.Unlock()
			return nil
		}
		if l.failed != nil {
			err := l.failed
			l.smu.Unlock()
			return err
		}
		if !l.syncing {
			l.syncing = true
			l.smu.Unlock()
			l.leaderSync()
			l.smu.Lock()
			continue
		}
		l.scond.Wait()
	}
}

// leaderSync runs one fsync pass as the elected leader: snapshot the
// active file and written watermark together under l.mu, fsync outside
// every lock, publish. Sealed segments were fsynced when rolled, so one
// fsync of the active file covers every record up to the watermark. The
// snapshot's file handle stays valid even if a roll or truncation races
// ahead, because handles are kept open until Close.
func (l *Log) leaderSync() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.finishSync(ErrClosed, 0)
		return
	}
	f := l.segs[len(l.segs)-1].file
	target := l.written
	l.mu.Unlock()
	err := f.Sync()
	if err != nil {
		err = fmt.Errorf("wal: fsync: %w", err)
	}
	l.finishSync(err, target)
}

func (l *Log) finishSync(err error, target uint64) {
	if err != nil {
		l.smu.Lock()
		l.syncing = false
		if l.failed == nil {
			l.failed = err
		}
		l.scond.Broadcast()
		l.smu.Unlock()
		return
	}
	l.smu.Lock()
	l.syncing = false
	l.smu.Unlock()
	l.publishDurable(target)
}

// syncLoop is the SyncInterval flusher. stopc is passed in because Close
// nils the field before closing the channel.
func (l *Log) syncLoop(stopc chan struct{}) {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-stopc:
			return
		case <-t.C:
			l.mu.Lock()
			written := l.written
			closed := l.closed
			l.mu.Unlock()
			l.smu.Lock()
			idle := l.syncing || l.failed != nil || l.durable >= written
			if !idle {
				l.syncing = true
			}
			l.smu.Unlock()
			if closed || idle {
				continue
			}
			l.leaderSync()
		}
	}
}

// Append writes the record and returns once it is durable per the policy.
func (l *Log) Append(kind Kind, rel string, payload []byte) (uint64, error) {
	lsn, err := l.Write(kind, rel, payload)
	if err != nil {
		return 0, err
	}
	return lsn, l.WaitDurable(lsn)
}

// TruncateBelow deletes whole segments every record of which has LSN <=
// cut — the snapshot-coordinated truncation: the catalog passes the
// durable watermark its snapshot sweep covered. The active segment is
// never deleted. Returns how many segments were removed.
func (l *Log) TruncateBelow(cut uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	removed := 0
	for len(l.segs) > 1 && l.segs[0].last <= cut {
		s := l.segs[0]
		if err := l.fs.Remove(s.name); err != nil {
			l.truncated += uint64(removed)
			return removed, fmt.Errorf("wal: removing %s: %w", s.name, err)
		}
		if s.file != nil {
			// Keep the handle open until Close: a group-commit leader may
			// still hold it for an in-flight (harmless) fsync.
			l.stale = append(l.stale, s.file)
		}
		l.segs = l.segs[1:]
		removed++
	}
	l.truncated += uint64(removed)
	return removed, nil
}

// Stats snapshots the log's gauges.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	st := Stats{
		Appended:          l.appended,
		Replayed:          l.replayed,
		ReplayDuration:    l.replayDur,
		Segments:          len(l.segs),
		LastLSN:           l.written,
		TruncatedSegments: l.truncated,
		VerifyFailures:    l.verifyFails,
	}
	l.mu.Unlock()
	l.smu.Lock()
	st.Fsyncs = l.fsyncs
	st.SyncedRecords = l.syncedRecs
	st.MaxBatch = l.maxBatch
	st.DurableLSN = l.durable
	l.smu.Unlock()
	return st
}

// Close fsyncs the active segment a final time and closes every handle.
// Afterward the log reports ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	stopc := l.stopc
	l.stopc = nil
	l.mu.Unlock()
	if stopc != nil {
		close(stopc)
		l.wg.Wait()
	}
	// Let any in-flight sync leader publish before the handles go away.
	l.smu.Lock()
	for l.syncing {
		l.scond.Wait()
	}
	l.smu.Unlock()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	var err error
	if l.Err() == nil && len(l.segs) > 0 {
		if serr := l.segs[len(l.segs)-1].file.Sync(); serr != nil {
			err = fmt.Errorf("wal: final fsync: %w", serr)
		} else {
			l.publishDurable(l.written)
		}
	}
	l.closed = true
	for i := range l.segs {
		if l.segs[i].file != nil {
			_ = l.segs[i].file.Close()
			l.segs[i].file = nil
		}
	}
	for _, f := range l.stale {
		_ = f.Close()
	}
	l.stale = nil
	l.mu.Unlock()

	// Wake waiters; the log is terminally closed.
	l.smu.Lock()
	if l.failed == nil {
		if err != nil {
			l.failed = err
		} else {
			l.failed = ErrClosed
		}
	}
	l.scond.Broadcast()
	l.smu.Unlock()
	return err
}
