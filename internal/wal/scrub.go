package wal

import (
	"fmt"
)

// SegmentRelations names every relation with a record in the given
// segment, so a scrubber that finds the segment damaged can quarantine
// exactly the relations whose history it carries. Unknown segments
// return nil.
func (l *Log) SegmentRelations(name string) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range l.segs {
		if s.name != name {
			continue
		}
		out := make([]string, 0, len(s.rels))
		for rel := range s.rels {
			out = append(out, rel)
		}
		return out
	}
	return nil
}

// SegmentSize reports a segment's current on-disk byte size, for the
// scrubber's rate pacing. Unknown or unreadable segments report 0.
func (l *Log) SegmentSize(name string) int64 {
	l.mu.Lock()
	known := false
	for i := range l.segs {
		if l.segs[i].name == name {
			known = true
			break
		}
	}
	l.mu.Unlock()
	if !known {
		return 0
	}
	data, err := l.fs.ReadFile(name)
	if err != nil {
		return 0
	}
	return int64(len(data))
}

// SegmentData returns a segment's raw on-disk bytes, damaged or not —
// the scrubber copies them aside as evidence before a repair truncates
// the segment away.
func (l *Log) SegmentData(name string) ([]byte, error) {
	return l.fs.ReadFile(name)
}

// ScrubSegment re-reads one sealed segment from disk and verifies it
// end to end: header checksum, every frame CRC, LSN continuity, and —
// because the segment is sealed — that no trailing garbage follows the
// last frame. Any damage returns an error wrapping ErrCorrupt and
// increments the VerifyFailures gauge. The active segment is skipped
// (its tail legitimately holds in-flight frames a concurrent append is
// still writing); scrubbing it reports nil.
func (l *Log) ScrubSegment(name string) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	var want *segmentInfo
	active := false
	for i := range l.segs {
		if l.segs[i].name == name {
			want = &l.segs[i]
			active = i == len(l.segs)-1
			break
		}
	}
	if want == nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: unknown segment %s", name)
	}
	base, last := want.base, want.last
	l.mu.Unlock()
	if active {
		return nil
	}

	fail := func(msg string) error {
		l.mu.Lock()
		l.verifyFails++
		l.mu.Unlock()
		return fmt.Errorf("%w: segment %s %s", ErrCorrupt, name, msg)
	}
	data, err := l.fs.ReadFile(name)
	if err != nil {
		return fail(fmt.Sprintf("unreadable: %v", err))
	}
	gotBase, recs, validLen, headerOK := parseSegment(data)
	if !headerOK {
		return fail("has a damaged header")
	}
	if gotBase != base {
		return fail(fmt.Sprintf("claims base %d, want %d", gotBase, base))
	}
	if validLen != len(data) {
		return fail(fmt.Sprintf("has %d bytes of damage after offset %d", len(data)-validLen, validLen))
	}
	if got := base + uint64(len(recs)) - 1; got != last {
		return fail(fmt.Sprintf("ends at lsn %d, want %d", got, last))
	}
	return nil
}
