package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fillSegments appends records until the log holds at least want segments.
func fillSegments(t *testing.T, l *Log, want int) (appended uint64) {
	t.Helper()
	for i := 0; len(l.Segments()) < want; i++ {
		payload := []byte(fmt.Sprintf("payload-%04d", i))
		if _, err := l.Append(1, "rel", payload); err != nil {
			t.Fatalf("append: %v", err)
		}
		appended++
	}
	return appended
}

// TestSealedSegmentsNeverMutate is the follower-safety invariant behind
// WAL shipping: once a segment is sealed by a roll, its bytes on disk
// never change again, no matter how much the log keeps appending,
// syncing, or rolling. A follower that fetched a sealed segment holds
// exactly what the primary will always hold.
func TestSealedSegmentsNeverMutate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()

	fillSegments(t, l, 4)
	segs := l.Segments()
	if len(segs) < 4 {
		t.Fatalf("want >= 4 segments, got %d", len(segs))
	}
	sealed := make(map[string][]byte)
	for _, s := range segs {
		if !s.Sealed {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, s.Name))
		if err != nil {
			t.Fatalf("reading sealed %s: %v", s.Name, err)
		}
		sealed[s.Name] = data
	}
	if len(sealed) < 3 {
		t.Fatalf("want >= 3 sealed segments, got %d", len(sealed))
	}

	// Keep the log busy: more appends, more rolls, an explicit sync.
	fillSegments(t, l, len(segs)+3)
	if err := l.WaitDurable(l.LastLSN()); err != nil {
		t.Fatalf("wait durable: %v", err)
	}

	for name, before := range sealed {
		after, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("re-reading sealed %s: %v", name, err)
		}
		if string(before) != string(after) {
			t.Fatalf("sealed segment %s mutated after sealing", name)
		}
	}
}

func TestIterateFromBoundedByDurable(t *testing.T) {
	fs := NewErrFS()
	l, err := Open(Options{FS: fs, Sync: SyncGroup, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	// Write 5 records, make only the first 3 durable.
	for i := 0; i < 3; i++ {
		if _, err := l.Append(1, "rel", []byte{byte(i)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	for i := 3; i < 5; i++ {
		if _, err := l.Write(1, "rel", []byte{byte(i)}); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	recs, durable, err := l.IterateFrom(1, 100)
	if err != nil {
		t.Fatalf("iterate: %v", err)
	}
	if durable != 3 {
		t.Fatalf("durable = %d, want 3", durable)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3 (durable prefix only)", len(recs))
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) || rec.Payload[0] != byte(i) {
			t.Fatalf("record %d: lsn %d payload %v", i, rec.LSN, rec.Payload)
		}
	}
	// Resume mid-stream.
	recs, _, err = l.IterateFrom(3, 100)
	if err != nil {
		t.Fatalf("iterate from 3: %v", err)
	}
	if len(recs) != 1 || recs[0].LSN != 3 {
		t.Fatalf("iterate from 3: got %v", recs)
	}
	// Past the watermark: empty, no error.
	recs, _, err = l.IterateFrom(4, 100)
	if err != nil || len(recs) != 0 {
		t.Fatalf("iterate past durable: recs=%v err=%v", recs, err)
	}
}

func TestIterateFromTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	fillSegments(t, l, 4)
	cut := l.Segments()[1].Last
	if _, err := l.TruncateBelow(cut); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if _, _, err := l.IterateFrom(1, 100); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
	oldest := l.OldestLSN()
	if oldest <= 1 {
		t.Fatalf("oldest = %d, want > 1 after truncation", oldest)
	}
	recs, _, err := l.IterateFrom(oldest, 10000)
	if err != nil {
		t.Fatalf("iterate from oldest: %v", err)
	}
	if len(recs) == 0 || recs[0].LSN != oldest || recs[len(recs)-1].LSN != l.DurableLSN() {
		t.Fatalf("iterate from oldest: %d recs, first %d, want first %d last %d",
			len(recs), recs[0].LSN, oldest, l.DurableLSN())
	}
}
