package wal

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Fault selects what ErrFS does when the armed operation count is reached.
type Fault uint8

const (
	// FaultNone leaves the operation untouched.
	FaultNone Fault = iota
	// FaultError fails the armed operation once with ErrInjected; nothing
	// is persisted by it and later operations proceed normally.
	FaultError
	// FaultShortWrite persists a prefix of the armed write, then fails it
	// with ErrInjected (a torn frame on disk). Later operations proceed.
	FaultShortWrite
	// FaultCrash simulates the process dying at the armed operation: it and
	// every later operation fail with ErrCrashed, and all bytes that were
	// written but never fsynced are lost at CrashRecover.
	FaultCrash
)

// Errors the fault-injecting file system returns.
var (
	ErrInjected = errors.New("errfs: injected fault")
	ErrCrashed  = errors.New("errfs: simulated crash")
)

// ErrFS is an in-memory FS that models the durability boundary precisely:
// each file splits into synced bytes (survive a crash) and pending bytes
// (written but not fsynced; a crash discards them). FailAt arms a fault at
// the k-th subsequent Write or Sync, so a test can kill the log at every
// I/O boundary and assert what recovery sees.
type ErrFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	ops     int
	armAt   int
	armMode Fault
	crashed bool
}

type memFile struct {
	synced  []byte
	pending []byte
}

// NewErrFS returns an empty fault-injecting file system.
func NewErrFS() *ErrFS { return &ErrFS{files: make(map[string]*memFile)} }

// FailAt arms a fault: counting from now, the k-th Write or Sync (1-based)
// triggers mode. A zero k disarms.
func (e *ErrFS) FailAt(k int, mode Fault) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if k <= 0 {
		e.armAt, e.armMode = 0, FaultNone
		return
	}
	e.armAt, e.armMode = e.ops+k, mode
}

// Ops reports how many Write/Sync operations have run so far.
func (e *ErrFS) Ops() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ops
}

// Crashed reports whether a FaultCrash has triggered.
func (e *ErrFS) Crashed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crashed
}

// CrashRecover simulates the reboot after a crash: every file keeps only
// its synced bytes, the operation counter restarts, and faults disarm.
func (e *ErrFS) CrashRecover() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, f := range e.files {
		f.pending = nil
	}
	e.ops, e.armAt, e.armMode, e.crashed = 0, 0, FaultNone, false
}

// Install seeds a file with raw bytes as if fully synced — the hook the
// replay fuzzer uses to present arbitrary streams to Open.
func (e *ErrFS) Install(name string, data []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.files[name] = &memFile{synced: append([]byte(nil), data...)}
}

// step counts one Write/Sync and returns the fault to apply to it.
// Caller holds e.mu.
func (e *ErrFS) step() Fault {
	if e.crashed {
		return FaultCrash
	}
	e.ops++
	if e.armAt != 0 && e.ops == e.armAt {
		mode := e.armMode
		if mode == FaultCrash {
			e.crashed = true
		} else {
			e.armAt, e.armMode = 0, FaultNone
		}
		return mode
	}
	return FaultNone
}

func (e *ErrFS) List() ([]string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return nil, ErrCrashed
	}
	out := make([]string, 0, len(e.files))
	for n := range e.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

func (e *ErrFS) ReadFile(name string) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return nil, ErrCrashed
	}
	f, ok := e.files[name]
	if !ok {
		return nil, fmt.Errorf("errfs: %s: no such file", name)
	}
	out := make([]byte, 0, len(f.synced)+len(f.pending))
	out = append(out, f.synced...)
	out = append(out, f.pending...)
	return out, nil
}

func (e *ErrFS) Create(name string) (File, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return nil, ErrCrashed
	}
	// The name becomes durable at create (DirFS fsyncs the directory);
	// the contents do not until Sync.
	f := &memFile{}
	e.files[name] = f
	return &memHandle{fs: e, f: f}, nil
}

func (e *ErrFS) OpenAppend(name string, size int64) (File, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return nil, ErrCrashed
	}
	f, ok := e.files[name]
	if !ok {
		return nil, fmt.Errorf("errfs: %s: no such file", name)
	}
	data := append(append([]byte(nil), f.synced...), f.pending...)
	if int64(len(data)) < size {
		return nil, fmt.Errorf("errfs: %s: truncate beyond end", name)
	}
	f.synced, f.pending = data[:size], nil
	return &memHandle{fs: e, f: f}, nil
}

func (e *ErrFS) Remove(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	if _, ok := e.files[name]; !ok {
		return fmt.Errorf("errfs: %s: no such file", name)
	}
	delete(e.files, name)
	return nil
}

type memHandle struct {
	fs     *ErrFS
	f      *memFile
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, errors.New("errfs: write on closed file")
	}
	switch h.fs.step() {
	case FaultError:
		return 0, ErrInjected
	case FaultShortWrite:
		n := len(p) / 2
		h.f.pending = append(h.f.pending, p[:n]...)
		return n, ErrInjected
	case FaultCrash:
		return 0, ErrCrashed
	}
	h.f.pending = append(h.f.pending, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return errors.New("errfs: sync on closed file")
	}
	switch h.fs.step() {
	case FaultError, FaultShortWrite:
		return ErrInjected
	case FaultCrash:
		return ErrCrashed
	}
	h.f.synced = append(h.f.synced, h.f.pending...)
	h.f.pending = nil
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
