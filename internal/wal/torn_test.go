package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// TestWALTornTailEveryOffset truncates a real segment file at every byte
// offset of its final record and asserts replay stops cleanly at the last
// whole record: the acknowledged prefix survives, the torn tail is
// discarded, and the log appends at the right next LSN.
func TestWALTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Sync: SyncAlways})
	appendN(t, l, 3)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seg := filepath.Join(dir, segName(1))
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	prefixLen := int(st.Size())

	l = mustOpen(t, Options{Dir: dir, Sync: SyncAlways})
	l.TakeRecovered()
	if _, err := l.Append(Kind(7), "rel", testPayload(3)); err != nil {
		t.Fatalf("final Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= prefixLen {
		t.Fatalf("final record added no bytes (%d <= %d)", len(full), prefixLen)
	}

	for cut := prefixLen; cut < len(full); cut++ {
		tdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(tdir, segName(1)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(Options{Dir: tdir, Sync: SyncAlways})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		recs := l.TakeRecovered()
		if len(recs) != 3 {
			t.Fatalf("cut %d: recovered %d records, want 3", cut, len(recs))
		}
		for i, r := range recs {
			if r.LSN != uint64(i+1) || string(r.Payload) != string(testPayload(i)) {
				t.Fatalf("cut %d: record %d = %+v", cut, i, r)
			}
		}
		if lsn, err := l.Append(Kind(1), "rel", nil); err != nil || lsn != 4 {
			t.Fatalf("cut %d: Append = %d, %v; want 4", cut, lsn, err)
		}
		l.Close()
	}
}

// validSegment builds a well-formed segment image for fuzz seeding.
func validSegment(base uint64, n int) []byte {
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, segMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, segVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, base)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(hdr, castagnoli))
	out := hdr
	for i := 0; i < n; i++ {
		out = appendFrame(out, base+uint64(i), Kind(1), "rel", []byte(fmt.Sprintf("p%d", i)))
	}
	return out
}

// FuzzWALReplay feeds arbitrary byte streams to Open as a segment file and
// asserts the recovery invariants: Open either rejects the stream or
// recovers a dense run of LSNs and leaves the log appendable.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(validSegment(1, 3))
	f.Add(validSegment(1, 3)[:headerSize+5]) // torn first frame
	f.Add(validSegment(42, 2))               // truncated-log base
	f.Add([]byte(segMagic))
	f.Add([]byte("garbage that is longer than a segment header....."))
	f.Fuzz(func(t *testing.T, data []byte) {
		fs := NewErrFS()
		fs.Install(segName(1), data)
		l, err := Open(Options{FS: fs, Sync: SyncAlways})
		if err != nil {
			return // rejected streams are fine; panics are not
		}
		recs := l.TakeRecovered()
		for i := 1; i < len(recs); i++ {
			if recs[i].LSN != recs[i-1].LSN+1 {
				t.Fatalf("recovered LSNs not dense: %d then %d", recs[i-1].LSN, recs[i].LSN)
			}
		}
		want := uint64(1)
		if len(recs) > 0 {
			want = recs[len(recs)-1].LSN + 1
		} else if l.LastLSN() > 0 {
			want = l.LastLSN() + 1
		}
		lsn, err := l.Append(Kind(1), "rel", []byte("post"))
		if err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if lsn != want {
			t.Fatalf("Append lsn = %d, want %d", lsn, want)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// The appended record must itself be recoverable.
		l2, err := Open(Options{FS: fs, Sync: SyncAlways})
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		recs2 := l2.TakeRecovered()
		if len(recs2) == 0 || recs2[len(recs2)-1].LSN != lsn {
			t.Fatalf("appended record lost: recovered %d records, want tail lsn %d", len(recs2), lsn)
		}
		l2.Close()
	})
}
