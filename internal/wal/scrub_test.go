package wal

import (
	"errors"
	"fmt"
	"sort"
	"testing"
)

// buildSealedLog writes enough records over two relations to seal at
// least one segment, returning the log, its FS, and a sealed segment
// name.
func buildSealedLog(t *testing.T) (*Log, *ErrFS, string) {
	t.Helper()
	fs := NewErrFS()
	l, err := Open(Options{FS: fs, Sync: SyncAlways, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	for i := 0; i < 40; i++ {
		rel := "alpha"
		if i%2 == 1 {
			rel = "beta"
		}
		if _, err := l.Append(Kind(1), rel, []byte(fmt.Sprintf("payload-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	segs := l.Segments()
	if len(segs) < 2 {
		t.Fatalf("want >= 2 segments, got %d", len(segs))
	}
	for _, s := range segs {
		if s.Sealed {
			return l, fs, s.Name
		}
	}
	t.Fatal("no sealed segment")
	return nil, nil, ""
}

// TestScrubSegmentCorruptionMatrix is the WAL leg of the corruption
// matrix: flipping one bit of every byte of a sealed segment must be
// detected (zero false negatives) and the pristine segment must pass
// (zero false positives).
func TestScrubSegmentCorruptionMatrix(t *testing.T) {
	l, fs, name := buildSealedLog(t)

	if err := l.ScrubSegment(name); err != nil {
		t.Fatalf("false positive on clean segment: %v", err)
	}
	clean, err := fs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(clean); off++ {
		bad := append([]byte(nil), clean...)
		bad[off] ^= 1 << (off % 8)
		fs.Install(name, bad)
		if err := l.ScrubSegment(name); err == nil {
			t.Fatalf("bit flip at offset %d undetected", off)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("offset %d: want ErrCorrupt, got %v", off, err)
		}
	}
	// Truncation (lost tail bytes) must also be detected on a sealed
	// segment.
	fs.Install(name, clean[:len(clean)-3])
	if err := l.ScrubSegment(name); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated sealed segment undetected: %v", err)
	}
	// Restore: clean again, and the failure gauge counted every hit.
	fs.Install(name, clean)
	if err := l.ScrubSegment(name); err != nil {
		t.Fatalf("false positive after restore: %v", err)
	}
	if got := l.Stats().VerifyFailures; got != uint64(len(clean))+1 {
		t.Fatalf("VerifyFailures = %d, want %d", got, len(clean)+1)
	}
}

func TestScrubSegmentSkipsActive(t *testing.T) {
	l, _, _ := buildSealedLog(t)
	segs := l.Segments()
	active := segs[len(segs)-1]
	if active.Sealed {
		t.Fatal("last segment should be active")
	}
	if err := l.ScrubSegment(active.Name); err != nil {
		t.Fatalf("scrubbing active segment: %v", err)
	}
	if err := l.ScrubSegment("wal-nope.seg"); err == nil {
		t.Fatal("unknown segment accepted")
	}
}

func TestSegmentRelations(t *testing.T) {
	l, _, name := buildSealedLog(t)
	rels := l.SegmentRelations(name)
	sort.Strings(rels)
	if len(rels) != 2 || rels[0] != "alpha" || rels[1] != "beta" {
		t.Fatalf("relations = %v", rels)
	}
	if l.SegmentRelations("wal-nope.seg") != nil {
		t.Fatal("unknown segment has relations")
	}

	// Relation attribution must survive a reopen (rebuilt from replay).
	fs := NewErrFS()
	l2, err := Open(Options{FS: fs, Sync: SyncAlways, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := l2.Append(Kind(1), "gamma", []byte(fmt.Sprintf("p-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sealed := ""
	for _, s := range l2.Segments() {
		if s.Sealed {
			sealed = s.Name
			break
		}
	}
	l2.Close()
	l3, err := Open(Options{FS: fs, Sync: SyncAlways, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	got := l3.SegmentRelations(sealed)
	if len(got) != 1 || got[0] != "gamma" {
		t.Fatalf("after reopen, relations = %v", got)
	}
}

func TestFrameBodyMatchesOnDiskFraming(t *testing.T) {
	fs := NewErrFS()
	l, err := Open(Options{FS: fs, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	lsn, err := l.Append(Kind(7), "events", payload)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := fs.ReadFile(segName(1))
	if err != nil {
		t.Fatal(err)
	}
	_, recs, _, ok := parseSegment(data)
	if !ok || len(recs) != 1 {
		t.Fatalf("parse: ok=%v recs=%d", ok, len(recs))
	}
	want := FrameBody(lsn, Kind(7), "events", payload)
	got := data[headerSize+4 : headerSize+4+len(want)]
	if string(got) != string(want) {
		t.Fatal("FrameBody differs from the on-disk frame body")
	}
	// And the parsed record re-encodes to the same body: replay and
	// follower apply hash identical leaves.
	rt := FrameBody(recs[0].LSN, recs[0].Kind, recs[0].Rel, recs[0].Payload)
	if string(rt) != string(want) {
		t.Fatal("re-encoded record body differs")
	}
}
