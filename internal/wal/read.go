package wal

import (
	"errors"
	"fmt"
)

// ErrTruncated reports a read from an LSN the log no longer holds: the
// segment carrying it was deleted by snapshot-coordinated truncation. A
// follower seeing this cannot catch up from the log alone — it must be
// reseeded from a snapshot of the primary's data directory.
var ErrTruncated = errors.New("wal: requested lsn precedes the oldest retained segment")

// SegmentInfo describes one live segment file for the replication read
// API. Sealed segments are immutable: once a roll fsyncs a segment and
// opens its successor, no byte of the sealed file is ever rewritten
// (truncation deletes whole files, never edits them) — which is what
// makes shipping them to a follower safe without coordination.
type SegmentInfo struct {
	Name   string
	Base   uint64 // LSN of the first record
	Last   uint64 // LSN of the last record; Base-1 while empty
	Sealed bool   // false only for the active (append-target) segment
}

// Segments snapshots the log's live segment directory, oldest first.
func (l *Log) Segments() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SegmentInfo, len(l.segs))
	for i, s := range l.segs {
		out[i] = SegmentInfo{
			Name:   s.name,
			Base:   s.base,
			Last:   s.last,
			Sealed: i != len(l.segs)-1,
		}
	}
	return out
}

// OldestLSN reports the smallest LSN the log still holds (the base of the
// oldest retained segment). A reader asking for anything below it gets
// ErrTruncated.
func (l *Log) OldestLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) == 0 {
		return 1
	}
	return l.segs[0].base
}

// IterateFrom reads up to max records starting at LSN from, in LSN order,
// never past the durability watermark. The durable bound is the
// follower-safety invariant: a record is shipped only once an fsync
// covers it, so replicas can never apply state the primary might lose in
// a crash. The returned durable value is the watermark the scan was
// bounded by — at most wait-free staleness metadata for the caller.
//
// from below the oldest retained segment returns ErrTruncated; from past
// the watermark returns an empty batch. A zero from reads from the start.
func (l *Log) IterateFrom(from uint64, max int) (recs []Record, durable uint64, err error) {
	if from == 0 {
		from = 1
	}
	if max <= 0 {
		max = 1 << 10
	}
	// Durable first, then the segment snapshot: records the scan sees are
	// a superset of those the watermark covers, and the filter keeps
	// exactly the covered prefix.
	durable = l.DurableLSN()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, durable, ErrClosed
	}
	segs := make([]SegmentInfo, len(l.segs))
	for i, s := range l.segs {
		segs[i] = SegmentInfo{Name: s.name, Base: s.base, Last: s.last}
	}
	l.mu.Unlock()

	if len(segs) > 0 && from < segs[0].Base {
		return nil, durable, fmt.Errorf("%w: want lsn %d, oldest is %d", ErrTruncated, from, segs[0].Base)
	}
	for _, seg := range segs {
		if seg.Last < from || seg.Base > durable {
			continue
		}
		data, rerr := l.fs.ReadFile(seg.Name)
		if rerr != nil {
			return nil, durable, fmt.Errorf("wal: reading %s: %w", seg.Name, rerr)
		}
		// A concurrent append may leave a torn frame at the active
		// segment's tail; parseSegment stops at the last whole record,
		// and the durable filter below drops anything not yet synced.
		_, segRecs, _, headerOK := parseSegment(data)
		if !headerOK {
			return nil, durable, fmt.Errorf("%w: segment %s unreadable", ErrCorrupt, seg.Name)
		}
		for _, rec := range segRecs {
			if rec.LSN < from || rec.LSN > durable {
				continue
			}
			recs = append(recs, rec)
			if len(recs) >= max {
				return recs, durable, nil
			}
		}
	}
	return recs, durable, nil
}
