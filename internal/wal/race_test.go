package wal

import (
	"fmt"
	"sync"
	"testing"
)

// TestWALConcurrentAppendReplay hammers one log from many goroutines under
// the group-commit policy and asserts every acknowledged record survives
// replay exactly once, with per-goroutine appends in their commit order.
// Run under -race (make race) this also exercises the leader election.
func TestWALConcurrentAppendReplay(t *testing.T) {
	const (
		writers = 8
		perW    = 40
	)
	fs := NewErrFS()
	l := mustOpen(t, Options{FS: fs, Sync: SyncGroup, SegmentBytes: 4 << 10})

	// acked[g][i] records the LSN goroutine g got for its i-th append.
	acked := make([][]uint64, writers)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		acked[g] = make([]uint64, perW)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rel := fmt.Sprintf("rel-%02d", g)
			for i := 0; i < perW; i++ {
				lsn, err := l.Append(Kind(1), rel, []byte(fmt.Sprintf("%02d/%04d", g, i)))
				if err != nil {
					errs <- fmt.Errorf("writer %d append %d: %w", g, i, err)
					return
				}
				acked[g][i] = lsn
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appended != writers*perW || st.DurableLSN != writers*perW {
		t.Fatalf("stats = %+v, want %d records all durable", st, writers*perW)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := mustOpen(t, Options{FS: fs, Sync: SyncGroup})
	defer l2.Close()
	recs := l2.TakeRecovered()
	if len(recs) != writers*perW {
		t.Fatalf("recovered %d records, want %d", len(recs), writers*perW)
	}
	byLSN := make(map[uint64]Record, len(recs))
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has lsn %d: replay order != LSN order", i, r.LSN)
		}
		byLSN[r.LSN] = r
	}
	for g := 0; g < writers; g++ {
		for i, lsn := range acked[g] {
			r, ok := byLSN[lsn]
			if !ok {
				t.Fatalf("writer %d append %d (lsn %d) lost", g, i, lsn)
			}
			want := fmt.Sprintf("%02d/%04d", g, i)
			if string(r.Payload) != want {
				t.Fatalf("lsn %d holds %q, want %q", lsn, r.Payload, want)
			}
			if i > 0 && acked[g][i-1] >= lsn {
				t.Fatalf("writer %d: append %d (lsn %d) not after append %d (lsn %d)",
					g, i, lsn, i-1, acked[g][i-1])
			}
		}
	}
}
