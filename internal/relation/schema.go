// Package relation implements the temporal relation of the paper's
// conceptual model (§2): a sequence of historical states indexed by
// transaction time, holding temporal elements with both transaction and
// valid time-stamps. It supports the three kinds of queries the paper
// requires of temporal relations — current, historical (time-slice), and
// rollback — plus per-surrogate partitioning into life-lines.
package relation

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/element"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type element.ValueKind
}

// Schema describes a temporal relation: its name, whether its elements are
// event- or interval-stamped, the valid time-stamp granularity, and its
// attribute layout. Per §2, attributes divide into time-invariant values
// (e.g. the time-invariant key: social-security, account, or membership
// numbers), time-varying values (e.g. title and salary), and user-defined
// times, to which the system gives no temporal semantics.
type Schema struct {
	Name        string
	ValidTime   element.TimestampKind
	Granularity chronon.Granularity
	Invariant   []Column // time-invariant attributes
	Varying     []Column // time-varying attributes
	UserTimes   []string // names of user-defined time attributes
}

// Validate reports whether the schema is well formed.
func (s Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("relation: schema has no name")
	}
	if !s.Granularity.Valid() {
		return fmt.Errorf("relation %s: invalid granularity %d", s.Name, s.Granularity)
	}
	seen := make(map[string]bool)
	check := func(group string, names []string) error {
		for _, n := range names {
			if n == "" {
				return fmt.Errorf("relation %s: empty %s attribute name", s.Name, group)
			}
			if seen[n] {
				return fmt.Errorf("relation %s: duplicate attribute %q", s.Name, n)
			}
			seen[n] = true
		}
		return nil
	}
	var inv, vary []string
	for _, c := range s.Invariant {
		inv = append(inv, c.Name)
	}
	for _, c := range s.Varying {
		vary = append(vary, c.Name)
	}
	if err := check("time-invariant", inv); err != nil {
		return err
	}
	if err := check("time-varying", vary); err != nil {
		return err
	}
	return check("user-defined time", s.UserTimes)
}

// checkValues verifies that the supplied attribute values match the columns
// in arity and type (null is accepted anywhere).
func checkValues(rel, group string, cols []Column, vals []element.Value) error {
	if len(vals) != len(cols) {
		return fmt.Errorf("relation %s: %d %s values for %d columns", rel, len(vals), group, len(cols))
	}
	for i, v := range vals {
		if v.IsNull() {
			continue
		}
		if v.Kind() != cols[i].Type {
			return fmt.Errorf("relation %s: %s attribute %q: got %v, want %v",
				rel, group, cols[i].Name, v.Kind(), cols[i].Type)
		}
	}
	return nil
}
