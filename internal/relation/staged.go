package relation

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/surrogate"
)

// Staged transactions split a mutation into validate-and-stamp (Stage*)
// and apply (Commit*), so a write-ahead log can sit between the two: the
// caller stages the transaction, appends the stamped records to the log,
// and commits to memory only once the append is accepted. A staging
// failure leaves the relation untouched; an abandoned stage burns only a
// clock tick and a surrogate, both of which tolerate gaps. Commit must be
// called before any other mutation of the relation, or transaction times
// would interleave out of order — the catalog guarantees this by holding
// the relation's exclusive lock across the stage/log/commit sequence.

// StageInsert validates an insertion, stamps it with the next transaction
// time, and runs the guards, without applying it. The returned element is
// exactly what CommitInsert will store.
func (r *Relation) StageInsert(ins Insertion) (*element.Element, error) {
	e, err := r.buildElement(ins)
	if err != nil {
		return nil, err
	}
	e.TTStart = r.clock.Next()
	e.TTEnd = chronon.Forever
	for _, g := range r.guards {
		if err := g.CheckInsert(r, e); err != nil {
			return nil, fmt.Errorf("relation %s: insert rejected: %w", r.schema.Name, err)
		}
	}
	return e, nil
}

// CommitInsert applies a staged insertion.
func (r *Relation) CommitInsert(e *element.Element) { r.applyInsert(e) }

// StageDelete validates a logical deletion and stamps its transaction
// time, without applying it.
func (r *Relation) StageDelete(es surrogate.Surrogate) (*element.Element, chronon.Chronon, error) {
	e, ok := r.byES[es]
	if !ok {
		return nil, 0, fmt.Errorf("relation %s: delete %v: %w", r.schema.Name, es, ErrNoSuchElement)
	}
	if !e.Current() {
		return nil, 0, fmt.Errorf("relation %s: delete %v: %w", r.schema.Name, es, ErrAlreadyDeleted)
	}
	tt := r.clock.Next()
	for _, g := range r.guards {
		if err := g.CheckDelete(r, e, tt); err != nil {
			return nil, 0, fmt.Errorf("relation %s: delete rejected: %w", r.schema.Name, err)
		}
	}
	return e, tt, nil
}

// CommitDelete applies a staged deletion. The element is closed by
// copy-on-close: the returned clone (TTEnd = tt) is what the live relation
// now holds; e itself is left open for any pinned read snapshot. Callers
// that maintain a secondary store must Replace e with the clone there too.
func (r *Relation) CommitDelete(e *element.Element, tt chronon.Chronon) *element.Element {
	return r.applyDelete(e, tt)
}

// StageModify validates the paper's modification — a logical delete of
// the current element plus an insert of its replacement, both at one
// transaction time — without applying either. Commit with CommitDelete
// then CommitInsert, in that order.
func (r *Relation) StageModify(es surrogate.Surrogate, vt element.Timestamp, varying []element.Value) (old, repl *element.Element, tt chronon.Chronon, err error) {
	old, ok := r.byES[es]
	if !ok {
		return nil, nil, 0, fmt.Errorf("relation %s: modify %v: %w", r.schema.Name, es, ErrNoSuchElement)
	}
	if !old.Current() {
		return nil, nil, 0, fmt.Errorf("relation %s: modify %v: %w", r.schema.Name, es, ErrAlreadyDeleted)
	}
	repl, err = r.buildElement(Insertion{
		Object:    old.OS,
		VT:        vt,
		Invariant: old.Invariant,
		Varying:   varying,
		UserTimes: old.UserTimes,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	tt = r.clock.Next()
	repl.TTStart = tt
	repl.TTEnd = chronon.Forever
	for _, g := range r.guards {
		if err := g.CheckDelete(r, old, tt); err != nil {
			return nil, nil, 0, fmt.Errorf("relation %s: modify rejected: %w", r.schema.Name, err)
		}
		if err := g.CheckInsert(r, repl); err != nil {
			return nil, nil, 0, fmt.Errorf("relation %s: modify rejected: %w", r.schema.Name, err)
		}
	}
	return old, repl, tt, nil
}
