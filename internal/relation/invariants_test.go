package relation

import (
	"math/rand"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/surrogate"
	"repro/internal/tx"
)

// TestHistoricalStatesImmutable drives a random operation sequence and
// verifies the defining property of transaction time (§2): "the historical
// state resulting from a transaction remains unchanged from the time of
// that transaction to the time of the next transaction" — i.e. later
// operations never change what Rollback reports for earlier times.
func TestHistoricalStatesImmutable(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	r := New(eventSchema(), tx.NewLogicalClock(0, 7))

	type snapshot struct {
		tt  chronon.Chronon
		ess []surrogate.Surrogate
	}
	var snaps []snapshot
	record := func() {
		tt := r.Clock().Now()
		var ess []surrogate.Surrogate
		for _, e := range r.Rollback(tt) {
			ess = append(ess, e.ES)
		}
		snaps = append(snaps, snapshot{tt: tt, ess: ess})
	}

	var live []*element.Element
	for i := 0; i < 400; i++ {
		switch {
		case len(live) == 0 || rng.Intn(3) > 0:
			e, err := r.Insert(Insertion{
				VT:        element.EventAt(chronon.Chronon(rng.Intn(10000))),
				Invariant: []element.Value{element.String_("s")},
				Varying:   []element.Value{element.Float(rng.Float64())},
			})
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, e)
		case rng.Intn(2) == 0:
			k := rng.Intn(len(live))
			if err := r.Delete(live[k].ES); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		default:
			k := rng.Intn(len(live))
			repl, err := r.Modify(live[k].ES, element.EventAt(chronon.Chronon(rng.Intn(10000))),
				[]element.Value{element.Float(rng.Float64())})
			if err != nil {
				t.Fatal(err)
			}
			live[k] = repl
		}
		if i%20 == 0 {
			record()
		}
	}
	// Every earlier snapshot must be reproducible bit-for-bit now.
	for _, s := range snaps {
		got := r.Rollback(s.tt)
		if len(got) != len(s.ess) {
			t.Fatalf("rollback(%v) now has %d elements, had %d", s.tt, len(got), len(s.ess))
		}
		for i, e := range got {
			if e.ES != s.ess[i] {
				t.Fatalf("rollback(%v)[%d] = %v, was %v", s.tt, i, e.ES, s.ess[i])
			}
		}
	}
}

// TestCurrentMatchesRollbackAtNow pins the equivalence of the current
// query with a rollback at the present transaction time.
func TestCurrentMatchesRollbackAtNow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := New(eventSchema(), tx.NewLogicalClock(0, 3))
	var live []*element.Element
	for i := 0; i < 300; i++ {
		if len(live) == 0 || rng.Intn(4) > 0 {
			e, err := r.Insert(Insertion{
				VT:        element.EventAt(chronon.Chronon(i)),
				Invariant: []element.Value{element.String_("s")},
				Varying:   []element.Value{element.Float(1)},
			})
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, e)
		} else {
			k := rng.Intn(len(live))
			if err := r.Delete(live[k].ES); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		}
		cur := r.Current()
		roll := r.Rollback(r.Clock().Now())
		if len(cur) != len(roll) {
			t.Fatalf("step %d: current %d vs rollback-at-now %d", i, len(cur), len(roll))
		}
		for j := range cur {
			if cur[j] != roll[j] {
				t.Fatalf("step %d: element %d differs", i, j)
			}
		}
	}
}

// TestLifeLineConsistency verifies the per-surrogate partitioning: the
// union of all life-lines is exactly the version set, life-lines are
// disjoint, and each is in transaction-time order.
func TestLifeLineConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	r := New(eventSchema(), tx.NewLogicalClock(0, 3))
	var objects []surrogate.Surrogate
	for i := 0; i < 5; i++ {
		objects = append(objects, r.NewObject())
	}
	for i := 0; i < 200; i++ {
		if _, err := r.Insert(Insertion{
			Object:    objects[rng.Intn(len(objects))],
			VT:        element.EventAt(chronon.Chronon(i)),
			Invariant: []element.Value{element.String_("s")},
			Varying:   []element.Value{element.Float(1)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	parts := r.Partitions()
	seen := make(map[surrogate.Surrogate]bool)
	total := 0
	for os, es := range parts {
		prev := chronon.MinChronon
		for _, e := range es {
			if e.OS != os {
				t.Fatalf("element %v in wrong partition %v", e, os)
			}
			if seen[e.ES] {
				t.Fatalf("element %v in two partitions", e.ES)
			}
			seen[e.ES] = true
			if e.TTStart < prev {
				t.Fatalf("life-line of %v out of tt order", os)
			}
			prev = e.TTStart
			total++
		}
	}
	if total != r.Len() {
		t.Fatalf("partitions cover %d of %d elements", total, r.Len())
	}
}

// TestBacklogReplaysToIdenticalStates replays the live backlog and checks a
// sweep of rollback states match — the backlog is the authoritative
// history.
func TestBacklogReplaysToIdenticalStates(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	r := New(eventSchema(), tx.NewLogicalClock(0, 5))
	var live []*element.Element
	for i := 0; i < 250; i++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			e, err := r.Insert(Insertion{
				VT:        element.EventAt(chronon.Chronon(rng.Intn(5000))),
				Invariant: []element.Value{element.String_("s")},
				Varying:   []element.Value{element.Float(1)},
			})
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, e)
		} else {
			k := rng.Intn(len(live))
			if err := r.Delete(live[k].ES); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		}
	}
	replayed, err := Replay(r.Schema(), tx.NewLogicalClock(0, 5), r.Backlog())
	if err != nil {
		t.Fatal(err)
	}
	now := r.Clock().Now()
	for tt := chronon.Chronon(0); tt <= now; tt += 13 {
		a, b := r.Rollback(tt), replayed.Rollback(tt)
		if len(a) != len(b) {
			t.Fatalf("rollback(%v): %d vs %d", tt, len(a), len(b))
		}
		for i := range a {
			if a[i].ES != b[i].ES || a[i].TTEnd != b[i].TTEnd {
				t.Fatalf("rollback(%v)[%d] differs", tt, i)
			}
		}
	}
}
