package relation

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/surrogate"
	"repro/internal/tx"
)

// Replay reconstructs a relation from a persisted backlog: the append-only
// journal of insertions and logical deletions is the authoritative history
// (the backlog representation of [JMRS90] cited in §2), so replaying it
// rebuilds every historical state. The records must be in non-decreasing
// transaction-time order with internally consistent surrogates; Replay
// validates as it goes and rejects corrupt histories.
//
// Replayed elements keep their original surrogates and transaction times;
// the relation's generators are advanced past the replayed maxima so new
// transactions cannot collide. If the clock supports AdvanceTo (as
// tx.LogicalClock does) it is advanced to the last replayed transaction
// time, keeping future transaction times monotone.
//
// Guards are not consulted during replay: the history was validated when
// it was first stored. Attach enforcers after replaying.
func Replay(schema Schema, clock tx.Clock, records []LogRecord) (*Relation, error) {
	r := New(schema, clock)
	lastTT := chronon.MinChronon
	var maxES, maxOS uint64
	for i, rec := range records {
		if rec.TT < lastTT {
			return nil, fmt.Errorf("relation: replay record %d: tt %v before %v", i, rec.TT, lastTT)
		}
		lastTT = rec.TT
		switch rec.Op {
		case OpInsert:
			e := rec.Elem
			if e == nil {
				return nil, fmt.Errorf("relation: replay record %d: insert without element", i)
			}
			if e.ES.IsNone() || e.OS.IsNone() {
				return nil, fmt.Errorf("relation: replay record %d: missing surrogate", i)
			}
			if _, dup := r.byES[e.ES]; dup {
				return nil, fmt.Errorf("relation: replay record %d: duplicate element surrogate %v", i, e.ES)
			}
			if e.VT.Kind() != schema.ValidTime {
				return nil, fmt.Errorf("relation: replay record %d: %v stamp in %v relation", i, e.VT.Kind(), schema.ValidTime)
			}
			if err := checkValues(schema.Name, "time-invariant", schema.Invariant, e.Invariant); err != nil {
				return nil, fmt.Errorf("relation: replay record %d: %w", i, err)
			}
			if err := checkValues(schema.Name, "time-varying", schema.Varying, e.Varying); err != nil {
				return nil, fmt.Errorf("relation: replay record %d: %w", i, err)
			}
			cp := e.Clone()
			cp.TTStart = rec.TT
			cp.TTEnd = chronon.Forever
			r.applyInsert(cp)
			if u := uint64(cp.ES); u > maxES {
				maxES = u
			}
			if u := uint64(cp.OS); u > maxOS {
				maxOS = u
			}
		case OpDelete:
			if rec.Elem == nil {
				return nil, fmt.Errorf("relation: replay record %d: delete without element", i)
			}
			target, ok := r.byES[rec.Elem.ES]
			if !ok {
				return nil, fmt.Errorf("relation: replay record %d: delete of unknown element %v", i, rec.Elem.ES)
			}
			if !target.Current() {
				return nil, fmt.Errorf("relation: replay record %d: delete of already-deleted element %v", i, rec.Elem.ES)
			}
			r.applyDelete(target, rec.TT)
		default:
			return nil, fmt.Errorf("relation: replay record %d: unknown op %d", i, rec.Op)
		}
	}
	r.esGen.Reserve(maxES)
	r.osGen.Reserve(maxOS)
	if adv, ok := clock.(interface{ AdvanceTo(chronon.Chronon) }); ok && lastTT != chronon.MinChronon {
		adv.AdvanceTo(lastTT)
	}
	return r, nil
}

// ApplyLog redoes one persisted backlog record against a live relation —
// the incremental form of Replay, used for write-ahead-log recovery after
// the snapshot has been replayed. The same validations apply per record:
// non-decreasing transaction time, consistent surrogates, schema-typed
// values. Surrogate generators are reserved past the record and an
// AdvanceTo-capable clock is advanced, exactly as Replay does in bulk.
//
// Guards are not re-checked (the history was validated when first stored)
// but they do observe the application through Applied, so enforcers
// attached before recovery end warm.
func (r *Relation) ApplyLog(rec LogRecord) error {
	lastTT := chronon.MinChronon
	if n := len(r.log); n > 0 {
		lastTT = r.log[n-1].TT
	}
	if rec.TT < lastTT {
		return fmt.Errorf("relation %s: log apply: tt %v before %v", r.schema.Name, rec.TT, lastTT)
	}
	switch rec.Op {
	case OpInsert:
		e := rec.Elem
		if e == nil {
			return fmt.Errorf("relation %s: log apply: insert without element", r.schema.Name)
		}
		if e.ES.IsNone() || e.OS.IsNone() {
			return fmt.Errorf("relation %s: log apply: missing surrogate", r.schema.Name)
		}
		if _, dup := r.byES[e.ES]; dup {
			return fmt.Errorf("relation %s: log apply: duplicate element surrogate %v", r.schema.Name, e.ES)
		}
		if e.VT.Kind() != r.schema.ValidTime {
			return fmt.Errorf("relation %s: log apply: %v stamp in %v relation", r.schema.Name, e.VT.Kind(), r.schema.ValidTime)
		}
		if err := checkValues(r.schema.Name, "time-invariant", r.schema.Invariant, e.Invariant); err != nil {
			return fmt.Errorf("relation %s: log apply: %w", r.schema.Name, err)
		}
		if err := checkValues(r.schema.Name, "time-varying", r.schema.Varying, e.Varying); err != nil {
			return fmt.Errorf("relation %s: log apply: %w", r.schema.Name, err)
		}
		cp := e.Clone()
		cp.TTStart = rec.TT
		cp.TTEnd = chronon.Forever
		r.applyInsert(cp)
		r.esGen.Reserve(uint64(cp.ES))
		r.osGen.Reserve(uint64(cp.OS))
	case OpDelete:
		if rec.Elem == nil {
			return fmt.Errorf("relation %s: log apply: delete without element", r.schema.Name)
		}
		target, ok := r.byES[rec.Elem.ES]
		if !ok {
			return fmt.Errorf("relation %s: log apply: delete of unknown element %v", r.schema.Name, rec.Elem.ES)
		}
		if !target.Current() {
			return fmt.Errorf("relation %s: log apply: delete of already-deleted element %v", r.schema.Name, rec.Elem.ES)
		}
		r.applyDelete(target, rec.TT)
	default:
		return fmt.Errorf("relation %s: log apply: unknown op %d", r.schema.Name, rec.Op)
	}
	if adv, ok := r.clock.(interface{ AdvanceTo(chronon.Chronon) }); ok {
		adv.AdvanceTo(rec.TT)
	}
	return nil
}

// ReservedSurrogates reports the highest element and object surrogates in
// use, for persistence metadata.
func (r *Relation) ReservedSurrogates() (es, os surrogate.Surrogate) {
	return surrogate.Surrogate(r.esGen.Issued()), surrogate.Surrogate(r.osGen.Issued())
}
