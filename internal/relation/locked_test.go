package relation

import (
	"sync"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/tx"
)

func TestLockedConcurrentUse(t *testing.T) {
	l := NewLocked(New(eventSchema(), tx.NewLogicalClock(0, 1)))
	const writers, readers, per = 4, 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []*element.Element
			for i := 0; i < per; i++ {
				e, err := l.Insert(Insertion{
					VT:        element.EventAt(chronon.Chronon(w*per + i)),
					Invariant: []element.Value{element.String_("s")},
					Varying:   []element.Value{element.Float(1)},
				})
				if err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				mine = append(mine, e)
				if i%10 == 9 {
					if err := l.Delete(mine[0].ES); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
					mine = mine[1:]
				}
				if i%25 == 24 {
					if _, err := l.Modify(mine[0].ES,
						element.EventAt(chronon.Chronon(i)),
						[]element.Value{element.Float(2)}); err != nil {
						t.Errorf("modify: %v", err)
						return
					}
					mine = mine[1:]
					// Modify replaced mine[0]; drop the stale pointer and
					// carry on — exactness of tracking is not the point.
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = l.Current()
				_ = l.Rollback(chronon.Chronon(i))
				_ = l.Timeslice(chronon.Chronon(i))
				_ = l.TimesliceAsOf(chronon.Chronon(i), chronon.Chronon(i))
				_ = l.Len()
			}
		}()
	}
	wg.Wait()
	if l.Len() == 0 {
		t.Fatal("nothing stored")
	}
	if l.Schema().Name != "readings" {
		t.Error("schema accessor wrong")
	}
	if l.Unwrap() == nil {
		t.Error("unwrap nil")
	}
}

func TestLockedVacuumAndObjects(t *testing.T) {
	l := NewLocked(New(eventSchema(), tx.NewLogicalClock(0, 10)))
	os := l.NewObject()
	e, err := l.Insert(Insertion{
		Object:    os,
		VT:        element.EventAt(1),
		Invariant: []element.Value{element.String_("s")},
		Varying:   []element.Value{element.Float(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.History(os)) != 1 {
		t.Error("history wrong")
	}
	if err := l.Delete(e.ES); err != nil {
		t.Fatal(err)
	}
	removed, err := l.Vacuum(1000)
	if err != nil || removed != 1 {
		t.Errorf("vacuum = %d, %v", removed, err)
	}
}
