package relation

import (
	"errors"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/surrogate"
	"repro/internal/tx"
)

func newEventRelation() *Relation {
	return New(eventSchema(), tx.NewLogicalClock(0, 10))
}

func insertReading(t *testing.T, r *Relation, vt chronon.Chronon, sensor string, temp float64) *element.Element {
	t.Helper()
	e, err := r.Insert(Insertion{
		VT:        element.EventAt(vt),
		Invariant: []element.Value{element.String_(sensor)},
		Varying:   []element.Value{element.Float(temp)},
	})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	return e
}

func TestNewPanicsOnBadInputs(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid schema should panic")
			}
		}()
		New(Schema{}, tx.NewLogicalClock(0, 1))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil clock should panic")
			}
		}()
		New(eventSchema(), nil)
	}()
}

func TestInsertAssignsStamps(t *testing.T) {
	r := newEventRelation()
	e := insertReading(t, r, 5, "s1", 20.5)
	if e.TTStart != 10 {
		t.Errorf("TTStart = %v, want 10", e.TTStart)
	}
	if !e.Current() {
		t.Error("fresh element should be current")
	}
	if e.ES.IsNone() || e.OS.IsNone() {
		t.Error("surrogates not assigned")
	}
	if vt, _ := e.VT.Event(); vt != 5 {
		t.Errorf("VT = %v, want 5", vt)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestInsertValidation(t *testing.T) {
	r := newEventRelation()
	// Wrong stamp kind.
	_, err := r.Insert(Insertion{VT: element.SpanOf(0, 5),
		Invariant: []element.Value{element.String_("s")},
		Varying:   []element.Value{element.Float(1)}})
	if !errors.Is(err, ErrWrongStampKind) {
		t.Errorf("wrong-kind insert: %v", err)
	}
	// Wrong arity.
	if _, err := r.Insert(Insertion{VT: element.EventAt(0)}); err == nil {
		t.Error("missing values accepted")
	}
	// Wrong type.
	_, err = r.Insert(Insertion{VT: element.EventAt(0),
		Invariant: []element.Value{element.Int(1)},
		Varying:   []element.Value{element.Float(1)}})
	if err == nil {
		t.Error("type mismatch accepted")
	}
	// Wrong user-time arity.
	_, err = r.Insert(Insertion{VT: element.EventAt(0),
		Invariant: []element.Value{element.String_("s")},
		Varying:   []element.Value{element.Float(1)},
		UserTimes: []chronon.Chronon{1}})
	if err == nil {
		t.Error("extra user times accepted")
	}
	if r.Len() != 0 {
		t.Error("failed inserts must not modify the relation")
	}
}

func TestObjectSurrogateReuse(t *testing.T) {
	r := newEventRelation()
	e1 := insertReading(t, r, 1, "s1", 1)
	e2, err := r.Insert(Insertion{Object: e1.OS,
		VT:        element.EventAt(2),
		Invariant: []element.Value{element.String_("s1")},
		Varying:   []element.Value{element.Float(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if e1.OS != e2.OS {
		t.Error("object surrogate not reused")
	}
	if e1.ES == e2.ES {
		t.Error("element surrogates must differ")
	}
	if got := len(r.History(e1.OS)); got != 2 {
		t.Errorf("History has %d elements, want 2", got)
	}
	if got := len(r.Objects()); got != 1 {
		t.Errorf("Objects = %d, want 1", got)
	}
}

func TestDelete(t *testing.T) {
	r := newEventRelation()
	e := insertReading(t, r, 1, "s1", 1)
	if err := r.Delete(e.ES); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	// Deletion is copy-on-close: the caller's pointer stays open (pinned
	// snapshots rely on that); the relation now holds the closed clone.
	if !e.Current() {
		t.Error("caller's element mutated by delete; copy-on-close broken")
	}
	live, ok := r.ByES(e.ES)
	if !ok {
		t.Fatal("deleted element vanished from byES")
	}
	if live.Current() {
		t.Error("deleted element still current")
	}
	if live.TTEnd != 20 {
		t.Errorf("TTEnd = %v, want 20", live.TTEnd)
	}
	if err := r.Delete(e.ES); !errors.Is(err, ErrAlreadyDeleted) {
		t.Errorf("double delete: %v", err)
	}
	if err := r.Delete(surrogate.Surrogate(999)); !errors.Is(err, ErrNoSuchElement) {
		t.Errorf("missing delete: %v", err)
	}
}

func TestModify(t *testing.T) {
	r := newEventRelation()
	e := insertReading(t, r, 1, "s1", 1)
	repl, err := r.Modify(e.ES, element.EventAt(2), []element.Value{element.Float(9)})
	if err != nil {
		t.Fatalf("Modify: %v", err)
	}
	// The paper: modification = logical delete + insert with fresh element
	// surrogate, both at the same transaction time. The close lands on a
	// clone (copy-on-close); observe it through the relation.
	old, _ := r.ByES(e.ES)
	if old.Current() {
		t.Error("modified-away element still current")
	}
	if !repl.Current() {
		t.Error("replacement not current")
	}
	if repl.ES == e.ES {
		t.Error("replacement must have a fresh element surrogate")
	}
	if repl.OS != e.OS {
		t.Error("replacement must keep the object surrogate")
	}
	if old.TTEnd != repl.TTStart {
		t.Errorf("delete tt %v != insert tt %v", old.TTEnd, repl.TTStart)
	}
	if s, _ := repl.Invariant[0].Str(); s != "s1" {
		t.Error("replacement lost time-invariant values")
	}
	if v, _ := repl.Varying[0].FloatVal(); v != 9 {
		t.Error("replacement has wrong varying value")
	}

	if _, err := r.Modify(e.ES, element.EventAt(3), repl.Varying); !errors.Is(err, ErrAlreadyDeleted) {
		t.Errorf("modify of deleted element: %v", err)
	}
	if _, err := r.Modify(surrogate.Surrogate(999), element.EventAt(3), repl.Varying); !errors.Is(err, ErrNoSuchElement) {
		t.Errorf("modify of missing element: %v", err)
	}
}

func TestCurrentAndRollback(t *testing.T) {
	r := newEventRelation()
	e1 := insertReading(t, r, 1, "s1", 1)   // tt=10
	e2 := insertReading(t, r, 2, "s2", 2)   // tt=20
	if err := r.Delete(e1.ES); err != nil { // tt=30
		t.Fatal(err)
	}
	e3 := insertReading(t, r, 3, "s3", 3) // tt=40
	e1, _ = r.ByES(e1.ES)                 // the closed clone the relation now holds

	cur := r.Current()
	if len(cur) != 2 || cur[0] != e2 || cur[1] != e3 {
		t.Errorf("Current = %v", cur)
	}

	cases := []struct {
		tt   chronon.Chronon
		want []*element.Element
	}{
		{5, nil},
		{10, []*element.Element{e1}},
		{20, []*element.Element{e1, e2}},
		{29, []*element.Element{e1, e2}},
		{30, []*element.Element{e2}},
		{40, []*element.Element{e2, e3}},
		{1 << 40, []*element.Element{e2, e3}},
	}
	for _, c := range cases {
		got := r.Rollback(c.tt)
		if len(got) != len(c.want) {
			t.Errorf("Rollback(%v) = %d elements, want %d", c.tt, len(got), len(c.want))
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Rollback(%v)[%d] = %v, want %v", c.tt, i, got[i], c.want[i])
			}
		}
	}
}

func TestTimeslice(t *testing.T) {
	r := New(intervalSchema(), tx.NewLogicalClock(0, 10))
	mk := func(start, end chronon.Chronon, emp, proj string) *element.Element {
		e, err := r.Insert(Insertion{
			VT:        element.SpanOf(start, end),
			Invariant: []element.Value{element.String_(emp)},
			Varying:   []element.Value{element.String_(proj)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e1 := mk(0, 100, "ann", "p1")
	e2 := mk(100, 200, "ann", "p2")
	_ = e2
	got := r.Timeslice(50)
	if len(got) != 1 || got[0] != e1 {
		t.Errorf("Timeslice(50) = %v", got)
	}
	got = r.Timeslice(100)
	if len(got) != 1 || got[0] != e2 {
		t.Errorf("Timeslice(100) = %v", got)
	}
	if got := r.Timeslice(250); len(got) != 0 {
		t.Errorf("Timeslice(250) = %v", got)
	}
	// After deletion, timeslice no longer sees the element...
	if err := r.Delete(e1.ES); err != nil {
		t.Fatal(err)
	}
	if got := r.Timeslice(50); len(got) != 0 {
		t.Errorf("Timeslice(50) after delete = %v", got)
	}
	// ...but the bitemporal query at an earlier transaction time does
	// (answered by the closed clone that replaced e1 on delete).
	e1, _ = r.ByES(e1.ES)
	got = r.TimesliceAsOf(50, e1.TTStart)
	if len(got) != 1 || got[0] != e1 {
		t.Errorf("TimesliceAsOf = %v", got)
	}
}

func TestBacklogOrder(t *testing.T) {
	r := newEventRelation()
	e1 := insertReading(t, r, 1, "s1", 1)
	insertReading(t, r, 2, "s2", 2)
	if err := r.Delete(e1.ES); err != nil {
		t.Fatal(err)
	}
	log := r.Backlog()
	if len(log) != 3 {
		t.Fatalf("backlog has %d records", len(log))
	}
	wantOps := []Op{OpInsert, OpInsert, OpDelete}
	prev := chronon.MinChronon
	for i, rec := range log {
		if rec.Op != wantOps[i] {
			t.Errorf("log[%d].Op = %v, want %v", i, rec.Op, wantOps[i])
		}
		if rec.TT <= prev {
			t.Errorf("backlog not in tt order at %d", i)
		}
		prev = rec.TT
	}
	if OpInsert.String() != "insert" || OpDelete.String() != "delete" {
		t.Error("Op names wrong")
	}
}

func TestGranularityQuantization(t *testing.T) {
	s := eventSchema()
	s.Granularity = chronon.Minute
	r := New(s, tx.NewLogicalClock(0, 60))
	e, err := r.Insert(Insertion{
		VT:        element.EventAt(125),
		Invariant: []element.Value{element.String_("s")},
		Varying:   []element.Value{element.Float(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if vt, _ := e.VT.Event(); vt != 120 {
		t.Errorf("quantized VT = %v, want 120", vt)
	}

	is := intervalSchema()
	is.Granularity = chronon.Minute
	ri := New(is, tx.NewLogicalClock(0, 60))
	e2, err := ri.Insert(Insertion{
		VT:        element.SpanOf(61, 119), // collapses to one tick
		Invariant: []element.Value{element.String_("e")},
		Varying:   []element.Value{element.String_("p")},
	})
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := e2.VT.Interval()
	if iv.Start != 60 || iv.End != 120 {
		t.Errorf("quantized interval = %v, want [60, 120)", iv)
	}
}

func TestPartitions(t *testing.T) {
	r := newEventRelation()
	a := insertReading(t, r, 1, "s1", 1)
	insertReading(t, r, 2, "s2", 2)
	b, err := r.Insert(Insertion{Object: a.OS,
		VT:        element.EventAt(3),
		Invariant: []element.Value{element.String_("s1")},
		Varying:   []element.Value{element.Float(3)}})
	if err != nil {
		t.Fatal(err)
	}
	parts := r.Partitions()
	if len(parts) != 2 {
		t.Fatalf("got %d partitions, want 2", len(parts))
	}
	if got := parts[a.OS]; len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("partition of %v = %v", a.OS, got)
	}
}

func TestByES(t *testing.T) {
	r := newEventRelation()
	e := insertReading(t, r, 1, "s1", 1)
	if got, ok := r.ByES(e.ES); !ok || got != e {
		t.Error("ByES failed")
	}
	if _, ok := r.ByES(surrogate.Surrogate(999)); ok {
		t.Error("ByES found a ghost")
	}
}

// rejectGuard rejects everything, for testing guard plumbing.
type rejectGuard struct{ err error }

func (g rejectGuard) CheckInsert(*Relation, *element.Element) error { return g.err }
func (g rejectGuard) CheckDelete(*Relation, *element.Element, chronon.Chronon) error {
	return g.err
}
func (g rejectGuard) Applied(*Relation, Op, *element.Element, chronon.Chronon) {}

// countGuard counts Applied callbacks.
type countGuard struct{ inserts, deletes int }

func (g *countGuard) CheckInsert(*Relation, *element.Element) error { return nil }
func (g *countGuard) CheckDelete(*Relation, *element.Element, chronon.Chronon) error {
	return nil
}
func (g *countGuard) Applied(_ *Relation, op Op, _ *element.Element, _ chronon.Chronon) {
	if op == OpInsert {
		g.inserts++
	} else {
		g.deletes++
	}
}

func TestGuardRejection(t *testing.T) {
	r := newEventRelation()
	sentinel := errors.New("nope")
	r.AddGuard(rejectGuard{err: sentinel})
	_, err := r.Insert(Insertion{
		VT:        element.EventAt(1),
		Invariant: []element.Value{element.String_("s")},
		Varying:   []element.Value{element.Float(1)},
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("guarded insert: %v", err)
	}
	if r.Len() != 0 {
		t.Error("rejected insert modified the relation")
	}
}

func TestGuardAppliedCallbacks(t *testing.T) {
	r := newEventRelation()
	g := &countGuard{}
	r.AddGuard(g)
	e := insertReading(t, r, 1, "s1", 1)
	if _, err := r.Modify(e.ES, element.EventAt(2), []element.Value{element.Float(2)}); err != nil {
		t.Fatal(err)
	}
	if g.inserts != 2 || g.deletes != 1 {
		t.Errorf("Applied counts = %d inserts, %d deletes; want 2, 1", g.inserts, g.deletes)
	}
}

func TestGuardRejectionOnDeleteLeavesElementCurrent(t *testing.T) {
	r := newEventRelation()
	e := insertReading(t, r, 1, "s1", 1)
	sentinel := errors.New("no deletes")
	r.AddGuard(rejectGuard{err: sentinel})
	if err := r.Delete(e.ES); !errors.Is(err, sentinel) {
		t.Errorf("guarded delete: %v", err)
	}
	if !e.Current() {
		t.Error("rejected delete changed the element")
	}
}
