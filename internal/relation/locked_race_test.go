package relation

// Race-focused hammer tests: many goroutines driving one Locked relation
// through every access path at once. The assertions are deliberately weak —
// the point is the interleaving itself, run under `go test -race`.

import (
	"sync"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/surrogate"
	"repro/internal/tx"
)

func lockedEventRelation() *Locked {
	return NewLocked(New(Schema{
		Name:        "hammer",
		ValidTime:   element.EventStamp,
		Granularity: chronon.Second,
	}, tx.NewLogicalClock(0, 1)))
}

func TestLockedConcurrentReadersAndWriters(t *testing.T) {
	l := lockedEventRelation()
	const (
		writers = 4
		readers = 4
		perG    = 200
	)
	var wg sync.WaitGroup
	inserted := make(chan surrogate.Surrogate, writers*perG)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				e, err := l.Insert(Insertion{VT: element.EventAt(chronon.Chronon(i))})
				if err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				inserted <- e.ES
			}
		}()
	}
	// Deleters consume freshly inserted elements concurrently with the
	// inserts still running.
	for d := 0; d < 2; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG/2; i++ {
				es := <-inserted
				if err := l.Delete(es); err != nil {
					t.Errorf("delete %v: %v", es, err)
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				switch (seed + i) % 4 {
				case 0:
					l.Current()
				case 1:
					l.Timeslice(chronon.Chronon(i % 50))
				case 2:
					l.Rollback(chronon.Chronon(i))
				case 3:
					_ = l.View(func(r *Relation) error {
						_ = r.Len()
						_ = r.Backlog()
						return nil
					})
				}
			}
		}(r)
	}
	wg.Wait()

	if got, want := l.Len(), writers*perG; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	deleted := 0
	_ = l.View(func(r *Relation) error {
		for _, e := range r.Versions() {
			if !e.Current() {
				deleted++
			}
		}
		return nil
	})
	if want := 2 * (perG / 2); deleted != want {
		t.Fatalf("deleted = %d, want %d", deleted, want)
	}
}

// TestLockedTransactionTimesStayUnique verifies the serialization invariant
// the storage layer depends on: concurrent transactions still receive
// strictly increasing, unique transaction times.
func TestLockedTransactionTimesStayUnique(t *testing.T) {
	l := lockedEventRelation()
	const (
		writers = 8
		perG    = 100
	)
	var wg sync.WaitGroup
	tts := make(chan chronon.Chronon, writers*perG)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				e, err := l.Insert(Insertion{VT: element.EventAt(chronon.Chronon(i))})
				if err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				tts <- e.TTStart
			}
		}()
	}
	wg.Wait()
	close(tts)
	seen := make(map[chronon.Chronon]bool, writers*perG)
	for tt := range tts {
		if seen[tt] {
			t.Fatalf("transaction time %v issued twice", tt)
		}
		seen[tt] = true
	}
	if len(seen) != writers*perG {
		t.Fatalf("distinct transaction times = %d, want %d", len(seen), writers*perG)
	}
}
