package relation

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/surrogate"
	"repro/internal/tx"
)

// Common errors returned by relation operations.
var (
	// ErrNoSuchElement reports an operation on an element surrogate that
	// was never stored in the relation.
	ErrNoSuchElement = errors.New("relation: no such element")
	// ErrAlreadyDeleted reports a deletion or modification of an element
	// that has already been logically deleted.
	ErrAlreadyDeleted = errors.New("relation: element already deleted")
	// ErrWrongStampKind reports a valid time-stamp whose kind (event vs
	// interval) does not match the relation schema.
	ErrWrongStampKind = errors.New("relation: valid time-stamp kind does not match schema")
)

// Guard validates transactions before they are applied. The constraint
// layer registers guards to enforce declared temporal specializations;
// a guard error rejects the transaction, leaving the relation unchanged.
type Guard interface {
	// CheckInsert is called with the fully built element (including its
	// assigned transaction time) before it is stored.
	CheckInsert(r *Relation, e *element.Element) error
	// CheckDelete is called before element e is logically deleted at
	// transaction time tt.
	CheckDelete(r *Relation, e *element.Element, tt chronon.Chronon) error
	// Applied is called after a transaction commits so that incremental
	// guards can update their state. op is OpInsert or OpDelete.
	Applied(r *Relation, op Op, e *element.Element, tt chronon.Chronon)
}

// Op identifies a backlog operation.
type Op uint8

// Backlog operation kinds. Per §2, a modification is represented as a
// logical deletion followed by an insertion with a fresh element surrogate.
const (
	OpInsert Op = iota
	OpDelete
)

// String names the operation.
func (o Op) String() string {
	if o == OpInsert {
		return "insert"
	}
	return "delete"
}

// LogRecord is one entry of the backlog: the relation's append-only journal
// of insertions and logical deletions, each stamped with its transaction
// time. The backlog representation is one of the physical designs §2 cites
// ([JMRS90]); here it doubles as the authoritative history from which any
// historical state can be reconstructed.
type LogRecord struct {
	Op   Op
	TT   chronon.Chronon
	Elem *element.Element
}

// Relation is an in-memory bitemporal relation.
type Relation struct {
	schema Schema
	clock  tx.Clock
	esGen  *surrogate.Generator
	osGen  *surrogate.Generator

	log      []LogRecord                                // backlog, tt order
	versions []*element.Element                         // all elements, tt⊢ order
	byES     map[surrogate.Surrogate]*element.Element   // every stored element
	byOS     map[surrogate.Surrogate][]*element.Element // life-lines, tt⊢ order
	osOrder  []surrogate.Surrogate                      // object surrogates in first-seen order
	guards   []Guard

	vacuumedTo chronon.Chronon // see Vacuum; MinChronon when never vacuumed
}

// New creates an empty relation with the given schema and transaction-time
// source. It panics on an invalid schema, since a schema is a programming
// artifact, not runtime input.
func New(schema Schema, clock tx.Clock) *Relation {
	if err := schema.Validate(); err != nil {
		panic(err)
	}
	if clock == nil {
		panic("relation: nil clock")
	}
	return &Relation{
		schema:     schema,
		clock:      clock,
		esGen:      surrogate.NewGenerator(),
		osGen:      surrogate.NewGenerator(),
		byES:       make(map[surrogate.Surrogate]*element.Element),
		byOS:       make(map[surrogate.Surrogate][]*element.Element),
		vacuumedTo: chronon.MinChronon,
	}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() Schema { return r.schema }

// Clock returns the relation's transaction-time source.
func (r *Relation) Clock() tx.Clock { return r.clock }

// AddGuard registers a transaction guard, e.g. a specialization enforcer.
func (r *Relation) AddGuard(g Guard) { r.guards = append(r.guards, g) }

// NewObject issues a fresh object surrogate for a new real-world object.
func (r *Relation) NewObject() surrogate.Surrogate { return r.osGen.Next() }

// Insertion describes the user-supplied portion of an insert.
type Insertion struct {
	Object    surrogate.Surrogate // object surrogate; None allocates a new one
	VT        element.Timestamp   // valid time-stamp
	Invariant []element.Value
	Varying   []element.Value
	UserTimes []chronon.Chronon
}

// Insert stores a new element as a single transaction. The valid time-stamp
// is quantized to the schema granularity. On a guard rejection the relation
// is unchanged and the error wraps the guard's.
func (r *Relation) Insert(ins Insertion) (*element.Element, error) {
	e, err := r.StageInsert(ins)
	if err != nil {
		return nil, err
	}
	r.CommitInsert(e)
	return e, nil
}

// Delete logically removes the element with the given element surrogate as
// a single transaction, setting its tt⊣ to the transaction time.
func (r *Relation) Delete(es surrogate.Surrogate) error {
	e, tt, err := r.StageDelete(es)
	if err != nil {
		return err
	}
	r.CommitDelete(e, tt)
	return nil
}

// Modify performs the paper's modification: the current element is
// logically deleted and a new element with a fresh element surrogate is
// stored, both indexed by the same transaction time. The new element keeps
// the old object surrogate and time-invariant values; the valid time-stamp
// and time-varying values are replaced.
func (r *Relation) Modify(es surrogate.Surrogate, vt element.Timestamp, varying []element.Value) (*element.Element, error) {
	old, repl, tt, err := r.StageModify(es, vt, varying)
	if err != nil {
		return nil, err
	}
	r.CommitDelete(old, tt)
	r.CommitInsert(repl)
	return repl, nil
}

func (r *Relation) buildElement(ins Insertion) (*element.Element, error) {
	if ins.VT.Kind() != r.schema.ValidTime {
		return nil, fmt.Errorf("relation %s: %w: got %v, schema is %v",
			r.schema.Name, ErrWrongStampKind, ins.VT.Kind(), r.schema.ValidTime)
	}
	if err := checkValues(r.schema.Name, "time-invariant", r.schema.Invariant, ins.Invariant); err != nil {
		return nil, err
	}
	if err := checkValues(r.schema.Name, "time-varying", r.schema.Varying, ins.Varying); err != nil {
		return nil, err
	}
	if len(ins.UserTimes) != len(r.schema.UserTimes) {
		return nil, fmt.Errorf("relation %s: %d user-defined times for %d columns",
			r.schema.Name, len(ins.UserTimes), len(r.schema.UserTimes))
	}
	os := ins.Object
	if os.IsNone() {
		os = r.osGen.Next()
	}
	vt := r.quantize(ins.VT)
	return &element.Element{
		ES:        r.esGen.Next(),
		OS:        os,
		VT:        vt,
		Invariant: append([]element.Value(nil), ins.Invariant...),
		Varying:   append([]element.Value(nil), ins.Varying...),
		UserTimes: append([]chronon.Chronon(nil), ins.UserTimes...),
	}, nil
}

// quantize truncates the valid time-stamp to the schema granularity.
func (r *Relation) quantize(ts element.Timestamp) element.Timestamp {
	g := r.schema.Granularity
	if g == chronon.Second {
		return ts
	}
	if c, ok := ts.Event(); ok {
		return element.EventAt(g.Truncate(c))
	}
	iv, _ := ts.Interval()
	s, e := g.Truncate(iv.Start), g.Truncate(iv.End)
	if e == s {
		e = s.Add(int64(g)) // keep the interval non-empty after quantization
	}
	return element.SpanOf(s, e)
}

func (r *Relation) applyInsert(e *element.Element) {
	r.log = append(r.log, LogRecord{Op: OpInsert, TT: e.TTStart, Elem: e})
	r.versions = append(r.versions, e)
	r.byES[e.ES] = e
	if _, seen := r.byOS[e.OS]; !seen {
		r.osOrder = append(r.osOrder, e.OS)
	}
	r.byOS[e.OS] = append(r.byOS[e.OS], e)
	for _, g := range r.guards {
		g.Applied(r, OpInsert, e, e.TTStart)
	}
}

// applyDelete closes the element's existence interval by copy-on-close:
// the element itself is never mutated. A clone with TTEnd finalized is
// swapped into every live structure and returned; the open original stays
// exactly as any previously published read snapshot saw it, which is what
// lets the catalog serve lock-free epoch-stamped reads.
func (r *Relation) applyDelete(e *element.Element, tt chronon.Chronon) *element.Element {
	closed := e.Clone()
	closed.TTEnd = tt
	r.swapVersion(e, closed)
	r.log = append(r.log, LogRecord{Op: OpDelete, TT: tt, Elem: closed})
	for _, g := range r.guards {
		g.Applied(r, OpDelete, closed, tt)
	}
	return closed
}

// swapVersion rewires every live structure that references old to repl.
// versions and log are tt⊢-sorted, so both lookups binary-search to the
// run sharing old's TTStart and walk it for pointer identity. The backlog
// insert record must be repointed too: Vacuum decides liveness from
// rec.Elem.TTEnd, and Declare's warm replay must observe the close.
func (r *Relation) swapVersion(old, repl *element.Element) {
	r.byES[old.ES] = repl
	line := r.byOS[old.OS]
	for i, e := range line {
		if e == old {
			line[i] = repl
			break
		}
	}
	i := sort.Search(len(r.versions), func(j int) bool {
		return r.versions[j].TTStart >= old.TTStart
	})
	for ; i < len(r.versions) && r.versions[i].TTStart == old.TTStart; i++ {
		if r.versions[i] == old {
			r.versions[i] = repl
			break
		}
	}
	j := sort.Search(len(r.log), func(k int) bool { return r.log[k].TT >= old.TTStart })
	for ; j < len(r.log) && r.log[j].TT == old.TTStart; j++ {
		if rec := &r.log[j]; rec.Op == OpInsert && rec.Elem == old {
			rec.Elem = repl
			break
		}
	}
}

// Len reports the number of stored element versions (including logically
// deleted ones).
func (r *Relation) Len() int { return len(r.versions) }

// Backlog returns the append-only transaction log. The returned slice must
// not be modified.
func (r *Relation) Backlog() []LogRecord { return r.log }

// Versions returns every element ever stored, in insertion (tt⊢) order.
// The returned slice must not be modified.
func (r *Relation) Versions() []*element.Element { return r.versions }

// ByES looks up an element by its element surrogate.
func (r *Relation) ByES(es surrogate.Surrogate) (*element.Element, bool) {
	e, ok := r.byES[es]
	return e, ok
}

// Current returns the current historical state: all elements that have not
// been logically deleted, in insertion order. This is the paper's "current
// query" — the only query a conventional database system supports.
func (r *Relation) Current() []*element.Element {
	var out []*element.Element
	for _, e := range r.versions {
		if e.Current() {
			out = append(out, e)
		}
	}
	return out
}

// Rollback reconstructs the historical state at transaction time tt: the
// elements whose existence interval contains tt. This is the rollback
// operator of [BZ82, Sch77] cited in §2. The backlog is in tt order, so the
// reconstruction scans only the prefix of insertions with tt⊢ <= tt.
func (r *Relation) Rollback(tt chronon.Chronon) []*element.Element {
	// versions is sorted by TTStart; binary search for the prefix end.
	n := sort.Search(len(r.versions), func(i int) bool {
		return r.versions[i].TTStart > tt
	})
	var out []*element.Element
	for _, e := range r.versions[:n] {
		if e.PresentAt(tt) {
			out = append(out, e)
		}
	}
	return out
}

// Timeslice answers the paper's "historical query": the elements of the
// current state whose facts are valid at vt (the time-slice operator of
// [BZ82, JMS79]).
func (r *Relation) Timeslice(vt chronon.Chronon) []*element.Element {
	var out []*element.Element
	for _, e := range r.versions {
		if e.Current() && e.ValidAt(vt) {
			out = append(out, e)
		}
	}
	return out
}

// TimesliceAsOf is the combined bitemporal query: the elements of the
// historical state as stored at transaction time tt whose facts are valid
// at vt.
func (r *Relation) TimesliceAsOf(vt, tt chronon.Chronon) []*element.Element {
	out, _ := r.TimesliceAsOfCtx(context.Background(), vt, tt)
	return out
}

// cancelCheckEvery is how many elements a cooperative scan examines
// between context checks — frequent enough that a cancelled caller stops
// burning CPU promptly, rare enough to cost nothing per element.
const cancelCheckEvery = 1024

// TimesliceAsOfCtx is TimesliceAsOf with cooperative cancellation: the
// scan re-checks ctx every cancelCheckEvery elements and returns ctx's
// error mid-scan when the caller has given up. It is the two-dimension
// full scan no physical organization indexes, hence the catalog's most
// expensive read and the one worth interrupting.
func (r *Relation) TimesliceAsOfCtx(ctx context.Context, vt, tt chronon.Chronon) ([]*element.Element, error) {
	var out []*element.Element
	for i, e := range r.versions {
		if i%cancelCheckEvery == cancelCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if e.PresentAt(tt) && e.ValidAt(vt) {
			out = append(out, e)
		}
	}
	return out, nil
}

// History returns the life-line of an object: every element version with
// the given object surrogate, in insertion order (c.f. the "time sequence"
// of [SK86] cited in §2).
func (r *Relation) History(os surrogate.Surrogate) []*element.Element {
	return r.byOS[os]
}

// Objects returns the object surrogates present in the relation, in
// first-seen order.
func (r *Relation) Objects() []surrogate.Surrogate {
	return r.osOrder
}

// Partitions returns the per-surrogate partitioning of the relation (§2):
// a map from object surrogate to that object's elements. Elements of
// distinct partitions have distinct object surrogates.
func (r *Relation) Partitions() map[surrogate.Surrogate][]*element.Element {
	out := make(map[surrogate.Surrogate][]*element.Element, len(r.byOS))
	for os, es := range r.byOS {
		out[os] = es
	}
	return out
}
