package relation

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/surrogate"
)

// Vacuum physically discards element versions that were logically deleted
// at or before the horizon, together with their backlog records. Temporal
// relations are append-only in principle, but practical systems bound the
// history they retain; vacuuming trades away the ability to roll back to
// states before the horizon.
//
// After Vacuum(h):
//
//   - Current, Timeslice, and every query at transaction times ≥ h are
//     unchanged;
//   - Rollback(tt) for tt < h is no longer faithful (it reports only the
//     surviving elements) — callers should consult VacuumHorizon first;
//   - the backlog reflects the surviving history only, and insert records
//     of vacuumed elements are gone.
//
// Vacuum returns the number of element versions discarded. The horizon
// must not regress: vacuuming to an earlier horizon than a previous call
// is an error.
func (r *Relation) Vacuum(horizon chronon.Chronon) (int, error) {
	if horizon < r.vacuumedTo {
		return 0, fmt.Errorf("relation %s: vacuum horizon %v before existing horizon %v",
			r.schema.Name, horizon, r.vacuumedTo)
	}
	r.vacuumedTo = horizon

	dead := func(e *element.Element) bool { return e.TTEnd <= horizon }

	removed := 0
	keptVersions := r.versions[:0]
	for _, e := range r.versions {
		if dead(e) {
			removed++
			delete(r.byES, e.ES)
			continue
		}
		keptVersions = append(keptVersions, e)
	}
	if removed == 0 {
		return 0, nil
	}
	r.versions = keptVersions

	keptLog := r.log[:0]
	for _, rec := range r.log {
		if dead(rec.Elem) {
			continue
		}
		keptLog = append(keptLog, rec)
	}
	r.log = keptLog

	keptOrder := r.osOrder[:0]
	for _, os := range r.osOrder {
		line := r.byOS[os]
		keptLine := line[:0]
		for _, e := range line {
			if !dead(e) {
				keptLine = append(keptLine, e)
			}
		}
		if len(keptLine) == 0 {
			delete(r.byOS, os)
			continue
		}
		r.byOS[os] = keptLine
		keptOrder = append(keptOrder, os)
	}
	r.osOrder = keptOrder
	return removed, nil
}

// VacuumHorizon reports the transaction time up to which history has been
// vacuumed (MinChronon if never). Rollback queries strictly before the
// horizon are not faithful.
func (r *Relation) VacuumHorizon() chronon.Chronon { return r.vacuumedTo }

// CanRollbackTo reports whether a rollback to tt reproduces the historical
// state faithfully.
func (r *Relation) CanRollbackTo(tt chronon.Chronon) bool {
	return tt >= r.vacuumedTo
}

// LiveObjects reports the object surrogates that still have versions after
// vacuuming, in first-seen order.
func (r *Relation) LiveObjects() []surrogate.Surrogate { return r.osOrder }
