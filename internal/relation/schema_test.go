package relation

import (
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
)

func eventSchema() Schema {
	return Schema{
		Name:        "readings",
		ValidTime:   element.EventStamp,
		Granularity: chronon.Second,
		Invariant:   []Column{{Name: "sensor", Type: element.KindString}},
		Varying:     []Column{{Name: "temp", Type: element.KindFloat}},
	}
}

func intervalSchema() Schema {
	return Schema{
		Name:        "assignments",
		ValidTime:   element.IntervalStamp,
		Granularity: chronon.Second,
		Invariant:   []Column{{Name: "emp", Type: element.KindString}},
		Varying:     []Column{{Name: "project", Type: element.KindString}},
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := eventSchema().Validate(); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
	bad := []Schema{
		{},
		{Name: "x", Granularity: 0},
		{Name: "x", Granularity: chronon.Second,
			Invariant: []Column{{Name: "", Type: element.KindInt}}},
		{Name: "x", Granularity: chronon.Second,
			Invariant: []Column{{Name: "a", Type: element.KindInt}},
			Varying:   []Column{{Name: "a", Type: element.KindInt}}},
		{Name: "x", Granularity: chronon.Second,
			Varying:   []Column{{Name: "a", Type: element.KindInt}},
			UserTimes: []string{"a"}},
		{Name: "x", Granularity: chronon.Second, UserTimes: []string{""}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schema %d accepted", i)
		}
	}
}

func TestSchemaValueChecking(t *testing.T) {
	cols := []Column{{Name: "a", Type: element.KindInt}, {Name: "b", Type: element.KindString}}
	if err := checkValues("r", "test", cols, []element.Value{element.Int(1), element.String_("x")}); err != nil {
		t.Errorf("matching values rejected: %v", err)
	}
	if err := checkValues("r", "test", cols, []element.Value{element.Null(), element.Null()}); err != nil {
		t.Errorf("nulls rejected: %v", err)
	}
	if err := checkValues("r", "test", cols, []element.Value{element.Int(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := checkValues("r", "test", cols, []element.Value{element.String_("x"), element.String_("y")}); err == nil {
		t.Error("type mismatch accepted")
	}
}
