package relation

import (
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/tx"
)

// vacuumFixture: inserts at tt 10,20,30; deletes e1 at 40, e2 at 50.
func vacuumFixture(t *testing.T) (*Relation, []*element.Element) {
	t.Helper()
	r := New(eventSchema(), tx.NewLogicalClock(0, 10))
	var es []*element.Element
	for i := int64(0); i < 3; i++ {
		e := insertReading(t, r, chronon.Chronon(i), "s", float64(i))
		es = append(es, e)
	}
	if err := r.Delete(es[0].ES); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(es[1].ES); err != nil {
		t.Fatal(err)
	}
	return r, es
}

func TestVacuumDiscardsDeadVersions(t *testing.T) {
	r, es := vacuumFixture(t)
	// Horizon 45: e1 (deleted at 40) is dead; e2 (deleted at 50) survives.
	removed, err := r.Vacuum(45)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if _, ok := r.ByES(es[0].ES); ok {
		t.Error("vacuumed element still reachable by surrogate")
	}
	if _, ok := r.ByES(es[1].ES); !ok {
		t.Error("surviving deleted element lost")
	}
	// Current state unchanged.
	cur := r.Current()
	if len(cur) != 1 || cur[0] != es[2] {
		t.Errorf("Current = %v", cur)
	}
	// Rollback at/after the horizon still faithful: at tt=45, e2 and e3
	// were present (e1 already deleted at 40).
	got := r.Rollback(45)
	if len(got) != 2 {
		t.Errorf("Rollback(45) = %d elements, want 2", len(got))
	}
	if !r.CanRollbackTo(45) || r.CanRollbackTo(44) {
		t.Error("CanRollbackTo boundary wrong")
	}
	if r.VacuumHorizon() != 45 {
		t.Errorf("VacuumHorizon = %v", r.VacuumHorizon())
	}
}

func TestVacuumBacklogShrinks(t *testing.T) {
	r, _ := vacuumFixture(t)
	before := len(r.Backlog()) // 3 inserts + 2 deletes
	if before != 5 {
		t.Fatalf("backlog = %d", before)
	}
	if _, err := r.Vacuum(45); err != nil {
		t.Fatal(err)
	}
	// e1's insert and delete records are gone: 3 remain.
	if got := len(r.Backlog()); got != 3 {
		t.Errorf("backlog after vacuum = %d, want 3", got)
	}
	// The surviving backlog still replays.
	replayed, err := Replay(r.Schema(), tx.NewLogicalClock(0, 10), r.Backlog())
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Len() != r.Len() {
		t.Errorf("replayed %d of %d", replayed.Len(), r.Len())
	}
}

func TestVacuumHorizonMonotone(t *testing.T) {
	r, _ := vacuumFixture(t)
	if _, err := r.Vacuum(45); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Vacuum(40); err == nil {
		t.Error("regressing horizon accepted")
	}
	// Re-vacuuming at the same or later horizon is fine.
	if _, err := r.Vacuum(45); err != nil {
		t.Errorf("same-horizon vacuum: %v", err)
	}
	removed, err := r.Vacuum(60)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Errorf("second vacuum removed %d, want 1 (e2)", removed)
	}
}

func TestVacuumNothingToDo(t *testing.T) {
	r := New(eventSchema(), tx.NewLogicalClock(0, 10))
	insertReading(t, r, 1, "s", 1)
	removed, err := r.Vacuum(1000)
	if err != nil || removed != 0 {
		t.Errorf("vacuum of current-only relation: %d, %v", removed, err)
	}
	if r.Len() != 1 {
		t.Error("current element vacuumed")
	}
}

func TestVacuumCleansLifeLines(t *testing.T) {
	r := New(eventSchema(), tx.NewLogicalClock(0, 10))
	a := insertReading(t, r, 1, "a", 1) // its own object
	b := insertReading(t, r, 2, "b", 2)
	if err := r.Delete(a.ES); err != nil { // tt=30
		t.Fatal(err)
	}
	if _, err := r.Vacuum(35); err != nil {
		t.Fatal(err)
	}
	if got := len(r.LiveObjects()); got != 1 {
		t.Fatalf("LiveObjects = %d, want 1", got)
	}
	if len(r.History(a.OS)) != 0 {
		t.Error("vacuumed life-line still populated")
	}
	if len(r.History(b.OS)) != 1 {
		t.Error("surviving life-line lost")
	}
	if len(r.Partitions()) != 1 {
		t.Error("partitions include vacuumed object")
	}
}

func TestVacuumPreservesChronology(t *testing.T) {
	// After vacuuming, versions must still be tt-sorted so Rollback's
	// binary search stays valid.
	r := New(eventSchema(), tx.NewLogicalClock(0, 10))
	var live []*element.Element
	for i := int64(0); i < 50; i++ {
		e := insertReading(t, r, chronon.Chronon(i), "s", 1)
		live = append(live, e)
		if i%3 == 2 {
			if err := r.Delete(live[0].ES); err != nil {
				t.Fatal(err)
			}
			live = live[1:]
		}
	}
	horizon := r.Clock().Now().Add(-100)
	if _, err := r.Vacuum(horizon); err != nil {
		t.Fatal(err)
	}
	prev := chronon.MinChronon
	for _, e := range r.Versions() {
		if e.TTStart < prev {
			t.Fatal("versions out of tt order after vacuum")
		}
		prev = e.TTStart
	}
	got := r.Rollback(r.Clock().Now())
	if len(got) != len(r.Current()) {
		t.Error("rollback-at-now disagrees with current after vacuum")
	}
}
