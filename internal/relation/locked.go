package relation

import (
	"sync"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/surrogate"
)

// Locked wraps a Relation for concurrent use: writes take an exclusive
// lock, queries a shared one. The underlying relation (and its guards'
// incremental checkers) are single-threaded by design; Locked serializes
// access so multiple goroutines can share one relation safely.
//
// Query results reference live elements; treat them as immutable snapshots
// of identity — their TTEnd advances when a later transaction deletes
// them, exactly as for the unlocked API.
type Locked struct {
	mu sync.RWMutex
	r  *Relation
}

// NewLocked wraps an existing relation. The caller must not use the bare
// relation concurrently afterwards.
func NewLocked(r *Relation) *Locked { return &Locked{r: r} }

// Unwrap returns the underlying relation for single-threaded phases (e.g.
// bulk loading before serving). The caller is responsible for exclusion.
func (l *Locked) Unwrap() *Relation { return l.r }

// Insert stores a new element as a single transaction.
func (l *Locked) Insert(ins Insertion) (*element.Element, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Insert(ins)
}

// Delete logically removes an element.
func (l *Locked) Delete(es surrogate.Surrogate) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Delete(es)
}

// Modify replaces an element's valid time and varying values.
func (l *Locked) Modify(es surrogate.Surrogate, vt element.Timestamp, varying []element.Value) (*element.Element, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Modify(es, vt, varying)
}

// Vacuum discards history before the horizon.
func (l *Locked) Vacuum(horizon chronon.Chronon) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Vacuum(horizon)
}

// NewObject issues a fresh object surrogate.
func (l *Locked) NewObject() surrogate.Surrogate {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.NewObject()
}

// Current returns the current historical state.
func (l *Locked) Current() []*element.Element {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.r.Current()
}

// Rollback reconstructs the historical state at tt.
func (l *Locked) Rollback(tt chronon.Chronon) []*element.Element {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.r.Rollback(tt)
}

// Timeslice answers the historical query at vt.
func (l *Locked) Timeslice(vt chronon.Chronon) []*element.Element {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.r.Timeslice(vt)
}

// TimesliceAsOf answers the bitemporal query.
func (l *Locked) TimesliceAsOf(vt, tt chronon.Chronon) []*element.Element {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.r.TimesliceAsOf(vt, tt)
}

// History returns an object's life-line.
func (l *Locked) History(os surrogate.Surrogate) []*element.Element {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.r.History(os)
}

// Len reports the number of stored element versions.
func (l *Locked) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.r.Len()
}

// Schema returns the relation's schema (immutable; no lock needed).
func (l *Locked) Schema() Schema { return l.r.Schema() }

// View runs fn with the shared lock held. fn must not mutate the relation
// or retain it past the call; it may read the backlog, run queries, or
// serialize a consistent snapshot.
func (l *Locked) View(fn func(*Relation) error) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return fn(l.r)
}

// Exclusive runs fn with the exclusive lock held, for compound operations
// that must be atomic with respect to other relation access — attaching
// enforcers, rebuilding derived stores, or multi-statement transactions.
// fn must not retain the relation past the call.
func (l *Locked) Exclusive(fn func(*Relation) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return fn(l.r)
}
