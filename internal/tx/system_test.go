package tx

import (
	"sync"
	"testing"
	"time"

	"repro/internal/chronon"
)

func TestSystemClockMonotoneUnderCollisions(t *testing.T) {
	// A frozen wall clock: every Next lands in the same second, so
	// uniqueness must come from bumping.
	frozen := time.Unix(1000, 0)
	c := newSystemClockAt(func() time.Time { return frozen })
	prev := chronon.MinChronon
	for i := 0; i < 100; i++ {
		now := c.Next()
		if now <= prev {
			t.Fatalf("not strictly increasing: %v after %v", now, prev)
		}
		prev = now
	}
	if prev != chronon.Chronon(1000+99) {
		t.Errorf("final stamp = %v, want 1099", prev)
	}
}

func TestSystemClockBackwardsStep(t *testing.T) {
	// The wall clock steps backwards (NTP correction): stamps keep
	// advancing anyway.
	times := []time.Time{time.Unix(2000, 0), time.Unix(1500, 0), time.Unix(2500, 0)}
	i := 0
	c := newSystemClockAt(func() time.Time { t := times[i%len(times)]; i++; return t })
	a := c.Next() // 2000
	b := c.Next() // wall says 1500: bump to 2001
	d := c.Next() // wall says 2500: take it
	if a != 2000 || b != 2001 || d != 2500 {
		t.Errorf("stamps = %v, %v, %v", a, b, d)
	}
	if c.Now() < d {
		t.Errorf("Now %v regressed below last stamp %v", c.Now(), d)
	}
}

func TestSystemClockConcurrentUnique(t *testing.T) {
	c := NewSystemClock()
	const workers, per = 8, 100
	var mu sync.Mutex
	seen := make(map[chronon.Chronon]bool)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				now := c.Next()
				mu.Lock()
				if seen[now] {
					t.Errorf("duplicate stamp %v", now)
				}
				seen[now] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestSystemClockAdvanceTo(t *testing.T) {
	// A restart scenario: rapid pre-crash transactions pushed stamps to
	// wall+N, so the reopened clock must not re-issue times at or below
	// the persisted maximum even though its wall clock reads earlier.
	wall := time.Unix(1000, 0)
	c := newSystemClockAt(func() time.Time { return wall })
	c.AdvanceTo(chronon.Chronon(1020)) // max persisted tt, 20s ahead of wall
	if got := c.Next(); got <= 1020 {
		t.Fatalf("Next after AdvanceTo(1020) = %v, want > 1020", got)
	}
	if c.Now() < 1020 {
		t.Fatalf("Now = %v, want >= 1020", c.Now())
	}
	// AdvanceTo never moves the floor backwards.
	c.AdvanceTo(chronon.Chronon(5))
	if got := c.Next(); got <= 1021 {
		t.Fatalf("Next after backwards AdvanceTo = %v, want > 1021", got)
	}
}
