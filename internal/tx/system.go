package tx

import (
	"sync"
	"time"

	"repro/internal/chronon"
)

// SystemClock is a Clock backed by the operating-system wall clock, with
// uniqueness enforced: if two transactions land in the same second (the
// chronon resolution), or the wall clock steps backwards, the issued
// transaction time is bumped past the previous one — preserving the
// paper's requirement that "each historical state has an associated
// unique transaction time" under any wall-clock behaviour.
type SystemClock struct {
	mu   sync.Mutex
	last chronon.Chronon
	// now is injectable for tests; defaults to time.Now.
	now func() time.Time
}

// NewSystemClock returns a wall-clock-backed transaction-time source.
func NewSystemClock() *SystemClock {
	return &SystemClock{last: chronon.MinChronon, now: time.Now}
}

// newSystemClockAt builds a SystemClock with an injected time source, for
// tests.
func newSystemClockAt(now func() time.Time) *SystemClock {
	return &SystemClock{last: chronon.MinChronon, now: now}
}

func (c *SystemClock) wall() chronon.Chronon {
	return chronon.Chronon(c.now().Unix())
}

// Next issues a strictly increasing transaction time at or after the wall
// clock.
func (c *SystemClock) Next() chronon.Chronon {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.wall()
	if t <= c.last {
		t = c.last.Add(1)
	}
	c.last = t
	return t
}

// Now reports the later of the wall clock and the last issued stamp.
func (c *SystemClock) Now() chronon.Chronon {
	c.mu.Lock()
	defer c.mu.Unlock()
	return chronon.Max(c.wall(), c.last)
}

// AdvanceTo moves the clock's floor to at least t without issuing a
// transaction time. Replay calls this with the last persisted stamp:
// rapid mutations bump transaction times ahead of the wall clock (one
// chronon per transaction within a second), so after a restart the wall
// clock alone could re-issue stamps below history already on disk.
func (c *SystemClock) AdvanceTo(t chronon.Chronon) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.last {
		c.last = t
	}
}
