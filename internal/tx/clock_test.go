package tx

import (
	"sync"
	"testing"

	"repro/internal/chronon"
)

func TestLogicalClockMonotone(t *testing.T) {
	c := NewLogicalClock(0, 5)
	prev := chronon.MinChronon
	for i := 0; i < 100; i++ {
		now := c.Next()
		if now <= prev {
			t.Fatalf("clock not strictly increasing: %v after %v", now, prev)
		}
		prev = now
	}
	if c.Now() != prev {
		t.Errorf("Now = %v, want %v", c.Now(), prev)
	}
}

func TestLogicalClockStep(t *testing.T) {
	c := NewLogicalClock(100, 7)
	if got := c.Next(); got != 107 {
		t.Errorf("first Next = %v, want 107", got)
	}
	if got := c.Next(); got != 114 {
		t.Errorf("second Next = %v, want 114", got)
	}
}

func TestLogicalClockAdvance(t *testing.T) {
	c := NewLogicalClock(0, 1)
	c.Advance(100)
	if got := c.Next(); got != 101 {
		t.Errorf("Next after Advance = %v, want 101", got)
	}
	c.AdvanceTo(50) // earlier than now: no-op
	if c.Now() != 101 {
		t.Errorf("AdvanceTo went backwards: %v", c.Now())
	}
	c.AdvanceTo(500)
	if c.Now() != 500 {
		t.Errorf("AdvanceTo = %v, want 500", c.Now())
	}
}

func TestLogicalClockAdvancePanics(t *testing.T) {
	c := NewLogicalClock(0, 1)
	defer func() {
		if recover() == nil {
			t.Error("Advance(-1) should panic")
		}
	}()
	c.Advance(-1)
}

func TestNewLogicalClockBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero step should panic")
		}
	}()
	NewLogicalClock(0, 0)
}

func TestLogicalClockConcurrentUnique(t *testing.T) {
	c := NewLogicalClock(0, 1)
	const workers, per = 8, 200
	var mu sync.Mutex
	seen := make(map[chronon.Chronon]bool)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				now := c.Next()
				mu.Lock()
				if seen[now] {
					t.Errorf("duplicate transaction time %v", now)
				}
				seen[now] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestScriptedClock(t *testing.T) {
	c := NewScriptedClock(10, 20, 35)
	if c.Now() != chronon.MinChronon {
		t.Errorf("initial Now = %v", c.Now())
	}
	if c.Remaining() != 3 {
		t.Errorf("Remaining = %d", c.Remaining())
	}
	for _, want := range []chronon.Chronon{10, 20, 35} {
		if got := c.Next(); got != want {
			t.Errorf("Next = %v, want %v", got, want)
		}
	}
	if c.Now() != 35 {
		t.Errorf("final Now = %v", c.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("exhausted scripted clock should panic")
		}
	}()
	c.Next()
}

func TestScriptedClockOutOfOrder(t *testing.T) {
	c := NewScriptedClock(10, 10)
	c.Next()
	defer func() {
		if recover() == nil {
			t.Error("non-increasing script should panic")
		}
	}()
	c.Next()
}
