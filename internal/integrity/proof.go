package integrity

import (
	"encoding/binary"
	"fmt"
)

// Proof is one wire-portable proof blob: an inclusion audit path or a
// consistency path, with the tree coordinates it applies to. It
// crosses the wire as a compact binary encoding (base64 inside JSON)
// so the client verifies exactly the bytes the server committed to,
// not a JSON re-interpretation of them.
type Proof struct {
	Kind ProofKind
	Rel  string
	// A is the leaf index (inclusion) or the old tree size
	// (consistency).
	A uint64
	// N is the tree size the proof lands on.
	N      uint64
	Hashes []Hash
}

// ProofKind discriminates the two proof shapes.
type ProofKind uint8

const (
	// ProofInclusion proves leaf A is in the size-N tree.
	ProofInclusion ProofKind = 1
	// ProofConsistency proves the size-A tree is a prefix of the
	// size-N tree.
	ProofConsistency ProofKind = 2
)

const (
	proofMagic   = "TSPF"
	proofVersion = 1
	// maxProofRel bounds the relation-name echo; the catalog rejects
	// names far shorter.
	maxProofRel = 1 << 10
	// maxProofHashes bounds the path length: a 2^64-leaf tree needs 64
	// audit-path entries; consistency paths stay under 2·64. Anything
	// longer is garbage, not a bigger tree.
	maxProofHashes = 160
)

// EncodeProof serializes a proof blob.
func EncodeProof(p Proof) ([]byte, error) {
	if p.Kind != ProofInclusion && p.Kind != ProofConsistency {
		return nil, fmt.Errorf("integrity: unknown proof kind %d", p.Kind)
	}
	if len(p.Rel) > maxProofRel {
		return nil, fmt.Errorf("integrity: relation name too long (%d bytes)", len(p.Rel))
	}
	if len(p.Hashes) > maxProofHashes {
		return nil, fmt.Errorf("integrity: proof too long (%d hashes)", len(p.Hashes))
	}
	out := make([]byte, 0, len(proofMagic)+2+2+len(p.Rel)+8+8+2+len(p.Hashes)*HashSize)
	out = append(out, proofMagic...)
	out = append(out, proofVersion, byte(p.Kind))
	out = binary.BigEndian.AppendUint16(out, uint16(len(p.Rel)))
	out = append(out, p.Rel...)
	out = binary.BigEndian.AppendUint64(out, p.A)
	out = binary.BigEndian.AppendUint64(out, p.N)
	out = binary.BigEndian.AppendUint16(out, uint16(len(p.Hashes)))
	for _, h := range p.Hashes {
		out = append(out, h[:]...)
	}
	return out, nil
}

// DecodeProof parses a proof blob. It is total: any input either
// yields a structurally valid proof or an error, never a panic —
// FuzzDecodeProof holds it to that.
func DecodeProof(b []byte) (Proof, error) {
	var p Proof
	fail := func(msg string) (Proof, error) {
		return Proof{}, fmt.Errorf("integrity: corrupt proof: %s", msg)
	}
	if len(b) < len(proofMagic)+2 {
		return fail("short header")
	}
	if string(b[:len(proofMagic)]) != proofMagic {
		return fail("bad magic")
	}
	b = b[len(proofMagic):]
	if b[0] != proofVersion {
		return fail("unsupported version")
	}
	p.Kind = ProofKind(b[1])
	if p.Kind != ProofInclusion && p.Kind != ProofConsistency {
		return fail("unknown kind")
	}
	b = b[2:]
	if len(b) < 2 {
		return fail("truncated relation length")
	}
	relLen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if relLen > maxProofRel {
		return fail("relation name too long")
	}
	if len(b) < relLen {
		return fail("truncated relation name")
	}
	p.Rel = string(b[:relLen])
	b = b[relLen:]
	if len(b) < 8+8+2 {
		return fail("truncated coordinates")
	}
	p.A = binary.BigEndian.Uint64(b)
	p.N = binary.BigEndian.Uint64(b[8:])
	count := int(binary.BigEndian.Uint16(b[16:]))
	b = b[18:]
	if count > maxProofHashes {
		return fail("proof too long")
	}
	if len(b) != count*HashSize {
		return fail("hash payload length mismatch")
	}
	if count > 0 {
		p.Hashes = make([]Hash, count)
		for i := range p.Hashes {
			copy(p.Hashes[i][:], b[i*HashSize:])
		}
	}
	return p, nil
}

// Verify checks the proof against the given anchors: the leaf hash and
// signed-root hash for inclusion, or the (oldRoot, newRoot) pair for
// consistency — in which case leaf is ignored and old is the root the
// caller already trusts at size p.A.
func (p Proof) Verify(leaf, old, root Hash) bool {
	switch p.Kind {
	case ProofInclusion:
		return VerifyInclusion(leaf, p.A, p.N, p.Hashes, root)
	case ProofConsistency:
		return VerifyConsistency(p.A, p.N, old, root, p.Hashes)
	}
	return false
}
