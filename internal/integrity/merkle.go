// Package integrity makes the engine's append-only transaction time
// tamper-evident and bit-rot detectable. Every WAL frame a relation
// commits becomes one leaf of a per-relation Merkle tree (the RFC 6962
// construction: domain-separated leaf/node hashes over SHA-256), the
// current root is signed per group-commit batch and persisted with the
// snapshot, and inclusion/consistency proofs let a client verify
// "this element was committed at tt=T and history was never rewritten"
// without trusting the server. The same leaf hashes ride the
// replication feed so a follower verifies shipped frames before
// applying them, and the background Scrubber re-reads sealed artifacts
// (WAL segments, snapshot shards, frozen delta runs) against their
// checksums on a byte-rate budget.
//
// The tree retains every leaf hash (32 bytes per committed frame): the
// engine is memory-resident by design, proofs must keep working across
// restarts and WAL truncation, and a follower needs the full leaf
// sequence to agree with the primary at any historical size.
package integrity

import (
	"crypto/sha256"
	"fmt"
	"math/bits"
)

// HashSize is the width of every tree hash.
const HashSize = sha256.Size

// Hash is one SHA-256 digest in the tree.
type Hash [HashSize]byte

// leafPrefix and nodePrefix domain-separate leaf hashes from interior
// hashes (RFC 6962 §2.1), so an interior node can never be replayed as
// a leaf (second-preimage defense).
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// LeafHash hashes one leaf's content: SHA256(0x00 || data). The leaf
// data for a WAL frame is the frame body exactly as framed on disk
// (LSN, kind, relation, payload), so the primary's write path, boot
// replay, and follower apply all derive identical leaves from the same
// record.
func LeafHash(data []byte) Hash {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(data)
	var out Hash
	h.Sum(out[:0])
	return out
}

// nodeHash combines two subtree roots: SHA256(0x01 || left || right).
func nodeHash(l, r Hash) Hash {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(l[:])
	h.Write(r[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// EmptyRoot is the root of the empty tree: SHA256 of the empty string,
// per RFC 6962.
func EmptyRoot() Hash { return sha256.Sum256(nil) }

// Tree is one relation's Merkle tree over its committed WAL frames.
// It keeps every leaf hash (proofs at historical sizes need them) plus
// an incremental stack of perfect-subtree roots so appending and
// reading the current root are O(log n). Not safe for concurrent use;
// the catalog serializes access per relation.
type Tree struct {
	leaves []Hash
	// stack holds the roots of the maximal perfect subtrees, one per
	// set bit of len(leaves), highest subtree first. The current root
	// is the right-fold of the stack, which equals the RFC 6962 MTH.
	stack []Hash
}

// NewTree returns an empty tree.
func NewTree() *Tree { return &Tree{} }

// NewTreeFromLeaves rebuilds a tree from a persisted leaf sequence
// (the backlog's integrity block). The slice is copied.
func NewTreeFromLeaves(leaves []Hash) *Tree {
	t := &Tree{leaves: make([]Hash, 0, len(leaves))}
	for _, l := range leaves {
		t.Append(l)
	}
	return t
}

// Append adds one leaf hash.
func (t *Tree) Append(leaf Hash) {
	// Merge trailing perfect subtrees exactly like a binary increment:
	// k trailing one-bits of the old size mean k merges.
	k := bits.TrailingZeros64(^uint64(len(t.leaves)))
	h := leaf
	for j := 0; j < k; j++ {
		h = nodeHash(t.stack[len(t.stack)-1], h)
		t.stack = t.stack[:len(t.stack)-1]
	}
	t.stack = append(t.stack, h)
	t.leaves = append(t.leaves, leaf)
}

// Size reports the number of leaves.
func (t *Tree) Size() uint64 { return uint64(len(t.leaves)) }

// Leaves returns a copy of the leaf sequence, for persistence.
func (t *Tree) Leaves() []Hash {
	out := make([]Hash, len(t.leaves))
	copy(out, t.leaves)
	return out
}

// Leaf returns leaf i.
func (t *Tree) Leaf(i uint64) (Hash, error) {
	if i >= t.Size() {
		return Hash{}, fmt.Errorf("integrity: leaf %d out of range (size %d)", i, t.Size())
	}
	return t.leaves[i], nil
}

// Root returns the current tree root in O(log n) from the incremental
// stack. The empty tree's root is EmptyRoot.
func (t *Tree) Root() Hash {
	if len(t.stack) == 0 {
		return EmptyRoot()
	}
	r := t.stack[len(t.stack)-1]
	for i := len(t.stack) - 2; i >= 0; i-- {
		r = nodeHash(t.stack[i], r)
	}
	return r
}

// RootAt returns the root the tree had when it held n leaves.
func (t *Tree) RootAt(n uint64) (Hash, error) {
	if n > t.Size() {
		return Hash{}, fmt.Errorf("integrity: root at %d beyond size %d", n, t.Size())
	}
	return mth(t.leaves[:n]), nil
}

// mth is the RFC 6962 Merkle tree head over a leaf range.
func mth(l []Hash) Hash {
	switch len(l) {
	case 0:
		return EmptyRoot()
	case 1:
		return l[0]
	}
	k := splitPoint(len(l))
	return nodeHash(mth(l[:k]), mth(l[k:]))
}

// splitPoint returns the largest power of two strictly less than n
// (n >= 2), the RFC 6962 split.
func splitPoint(n int) int {
	return 1 << (bits.Len(uint(n-1)) - 1)
}

// InclusionProof returns the audit path for leaf i in the tree of the
// first n leaves (RFC 6962 PATH), sibling-first.
func (t *Tree) InclusionProof(i, n uint64) ([]Hash, error) {
	if n > t.Size() {
		return nil, fmt.Errorf("integrity: proof at size %d beyond %d", n, t.Size())
	}
	if i >= n {
		return nil, fmt.Errorf("integrity: leaf %d out of range (size %d)", i, n)
	}
	return path(i, t.leaves[:n]), nil
}

func path(m uint64, l []Hash) []Hash {
	if len(l) <= 1 {
		return nil
	}
	k := uint64(splitPoint(len(l)))
	if m < k {
		return append(path(m, l[:k]), mth(l[k:]))
	}
	return append(path(m-k, l[k:]), mth(l[:k]))
}

// ConsistencyProof proves the tree of the first m leaves is a prefix
// of the tree of the first n leaves (RFC 6962 PROOF). m == 0 and
// m == n yield an empty proof (trivially consistent).
func (t *Tree) ConsistencyProof(m, n uint64) ([]Hash, error) {
	if n > t.Size() {
		return nil, fmt.Errorf("integrity: consistency at size %d beyond %d", n, t.Size())
	}
	if m > n {
		return nil, fmt.Errorf("integrity: consistency %d -> %d runs backward", m, n)
	}
	if m == 0 || m == n {
		return nil, nil
	}
	return subproof(m, t.leaves[:n], true), nil
}

func subproof(m uint64, l []Hash, b bool) []Hash {
	if m == uint64(len(l)) {
		if b {
			return nil
		}
		return []Hash{mth(l)}
	}
	k := uint64(splitPoint(len(l)))
	if m <= k {
		return append(subproof(m, l[:k], b), mth(l[k:]))
	}
	return append(subproof(m-k, l[k:], false), mth(l[:k]))
}

// VerifyInclusion checks an audit path: does leaf (already hashed) sit
// at index i of the size-n tree with the given root? Pure function —
// the client runs this locally against a signed root. The algorithm is
// the RFC 9162 iterative verification.
func VerifyInclusion(leaf Hash, i, n uint64, proof []Hash, root Hash) bool {
	if i >= n {
		return false
	}
	fn, sn := i, n-1
	r := leaf
	for _, p := range proof {
		if sn == 0 {
			return false // path longer than the tree is tall
		}
		if fn&1 == 1 || fn == sn {
			r = nodeHash(p, r)
			if fn&1 == 0 {
				// Right edge of the tree: skip the levels where this
				// subtree has no right sibling.
				for fn != 0 && fn&1 == 0 {
					fn >>= 1
					sn >>= 1
				}
			}
		} else {
			r = nodeHash(r, p)
		}
		fn >>= 1
		sn >>= 1
	}
	return sn == 0 && r == root
}

// VerifyConsistency checks a consistency proof: is the size-m tree
// with root oldRoot a prefix of the size-n tree with root newRoot?
// Pure function (RFC 9162 iterative verification). An empty old tree
// is consistent with anything; equal sizes require equal roots.
func VerifyConsistency(m, n uint64, oldRoot, newRoot Hash, proof []Hash) bool {
	if m > n {
		return false
	}
	if m == 0 {
		return len(proof) == 0
	}
	if m == n {
		return len(proof) == 0 && oldRoot == newRoot
	}
	// If m is a power of two, the old root is itself the first
	// component of the reconstruction.
	need := proof
	if m&(m-1) == 0 {
		need = append([]Hash{oldRoot}, proof...)
	}
	if len(need) == 0 {
		return false
	}
	fn, sn := m-1, n-1
	for fn&1 == 1 {
		fn >>= 1
		sn >>= 1
	}
	fr, sr := need[0], need[0]
	for _, c := range need[1:] {
		if sn == 0 {
			return false
		}
		if fn&1 == 1 || fn == sn {
			fr = nodeHash(c, fr)
			sr = nodeHash(c, sr)
			if fn&1 == 0 {
				for fn != 0 && fn&1 == 0 {
					fn >>= 1
					sn >>= 1
				}
			}
		} else {
			sr = nodeHash(sr, c)
		}
		fn >>= 1
		sn >>= 1
	}
	return sn == 0 && fr == oldRoot && sr == newRoot
}
