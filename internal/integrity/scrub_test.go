package integrity

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

func TestScrubberDetectsAndReports(t *testing.T) {
	arts := []Artifact{
		{Kind: "runs", Name: "a", Rel: "a", Bytes: 10},
		{Kind: "runs", Name: "b", Rel: "b", Bytes: 10},
		{Kind: "snapshot", Name: "snap", Bytes: 10},
	}
	var corrupted []string
	s := NewScrubber(ScrubberConfig{
		List: func() ([]Artifact, error) { return arts, nil },
		Verify: func(a Artifact) error {
			if a.Name == "b" {
				return errors.New("bit rot")
			}
			return nil
		},
		OnCorrupt: func(a Artifact, err error) { corrupted = append(corrupted, a.Name) },
	})
	checked, failed, err := s.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if checked != 3 || failed != 1 {
		t.Fatalf("checked=%d failed=%d", checked, failed)
	}
	if len(corrupted) != 1 || corrupted[0] != "b" {
		t.Fatalf("corrupted=%v", corrupted)
	}
	st := s.Stats()
	if st.Passes != 1 || st.Artifacts != 3 || st.Failures != 1 || st.Bytes != 30 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestScrubberCursorResume(t *testing.T) {
	cur := filepath.Join(t.TempDir(), "cursor")
	arts := make([]Artifact, 6)
	for i := range arts {
		arts[i] = Artifact{Kind: "runs", Name: fmt.Sprintf("r%d", i), Bytes: 1}
	}
	var seen []string
	ctx, cancel := context.WithCancel(context.Background())
	s := NewScrubber(ScrubberConfig{
		List: func() ([]Artifact, error) { return arts, nil },
		Verify: func(a Artifact) error {
			seen = append(seen, a.Name)
			if a.Name == "r2" {
				cancel() // simulate the process dying mid-pass
			}
			return nil
		},
		CursorPath: cur,
	})
	if _, _, err := s.RunOnce(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want canceled, got %v", err)
	}
	if len(seen) != 3 {
		t.Fatalf("pre-kill saw %v", seen)
	}
	// "Restart": a fresh scrubber over the same cursor file resumes
	// after r2 instead of rewalking from r0.
	seen = nil
	s2 := NewScrubber(ScrubberConfig{
		List:       func() ([]Artifact, error) { return arts, nil },
		Verify:     func(a Artifact) error { seen = append(seen, a.Name); return nil },
		CursorPath: cur,
	})
	if _, _, err := s2.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != "r3" {
		t.Fatalf("resume saw %v", seen)
	}
	// Cursor cleared after a full pass: next pass starts at r0.
	seen = nil
	if _, _, err := s2.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 || seen[0] != "r0" {
		t.Fatalf("fresh pass saw %v", seen)
	}
}

func TestScrubberStaleCursorRestarts(t *testing.T) {
	cur := filepath.Join(t.TempDir(), "cursor")
	s := NewScrubber(ScrubberConfig{
		List:       func() ([]Artifact, error) { return []Artifact{{Kind: "runs", Name: "gone", Bytes: 1}}, nil },
		Verify:     func(Artifact) error { return nil },
		CursorPath: cur,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.RunOnce(ctx) // persists nothing useful; now hand-load a stale cursor
	s.saveCursor(cursor{Kind: "runs", Name: "no-longer-listed"})
	var seen int
	s2 := NewScrubber(ScrubberConfig{
		List:       func() ([]Artifact, error) { return []Artifact{{Kind: "runs", Name: "x", Bytes: 1}}, nil },
		Verify:     func(Artifact) error { seen++; return nil },
		CursorPath: cur,
	})
	if _, _, err := s2.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Fatalf("stale cursor skipped artifacts: seen=%d", seen)
	}
}
