package integrity

import (
	"encoding/binary"
	"testing"
)

// testLeaves builds n deterministic leaf hashes.
func testLeaves(n int) []Hash {
	out := make([]Hash, n)
	for i := range out {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(i))
		out[i] = LeafHash(b[:])
	}
	return out
}

func TestIncrementalRootMatchesMTH(t *testing.T) {
	tr := NewTree()
	if tr.Root() != EmptyRoot() {
		t.Fatalf("empty tree root != EmptyRoot")
	}
	leaves := testLeaves(130)
	for i, l := range leaves {
		tr.Append(l)
		want := mth(leaves[:i+1])
		if got := tr.Root(); got != want {
			t.Fatalf("size %d: incremental root %x != mth %x", i+1, got, want)
		}
		at, err := tr.RootAt(uint64(i + 1))
		if err != nil || at != want {
			t.Fatalf("size %d: RootAt mismatch (err %v)", i+1, err)
		}
	}
	// Rebuild from persisted leaves must agree.
	tr2 := NewTreeFromLeaves(tr.Leaves())
	if tr2.Root() != tr.Root() || tr2.Size() != tr.Size() {
		t.Fatalf("rebuilt tree disagrees with original")
	}
}

func TestInclusionProofsExhaustive(t *testing.T) {
	const max = 66
	leaves := testLeaves(max)
	tr := NewTreeFromLeaves(leaves)
	for n := uint64(1); n <= max; n++ {
		root, err := tr.RootAt(n)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < n; i++ {
			proof, err := tr.InclusionProof(i, n)
			if err != nil {
				t.Fatalf("proof(%d,%d): %v", i, n, err)
			}
			if !VerifyInclusion(leaves[i], i, n, proof, root) {
				t.Fatalf("valid proof(%d,%d) rejected", i, n)
			}
			// Wrong leaf must fail.
			if VerifyInclusion(LeafHash([]byte("evil")), i, n, proof, root) {
				t.Fatalf("proof(%d,%d) accepted wrong leaf", i, n)
			}
			// Wrong index must fail.
			if n > 1 {
				j := (i + 1) % n
				if VerifyInclusion(leaves[i], j, n, proof, root) {
					t.Fatalf("proof(%d,%d) accepted at index %d", i, n, j)
				}
			}
			// Wrong root must fail.
			bad := root
			bad[0] ^= 0x80
			if VerifyInclusion(leaves[i], i, n, proof, bad) {
				t.Fatalf("proof(%d,%d) accepted forged root", i, n)
			}
			// Truncated and extended paths must fail.
			if len(proof) > 0 {
				if VerifyInclusion(leaves[i], i, n, proof[:len(proof)-1], root) {
					t.Fatalf("proof(%d,%d) accepted truncated path", i, n)
				}
			}
			if VerifyInclusion(leaves[i], i, n, append(append([]Hash(nil), proof...), Hash{}), root) {
				t.Fatalf("proof(%d,%d) accepted extended path", i, n)
			}
		}
	}
}

func TestConsistencyProofsExhaustive(t *testing.T) {
	const max = 66
	leaves := testLeaves(max)
	tr := NewTreeFromLeaves(leaves)
	for n := uint64(0); n <= max; n++ {
		newRoot, _ := tr.RootAt(n)
		for m := uint64(0); m <= n; m++ {
			oldRoot, _ := tr.RootAt(m)
			proof, err := tr.ConsistencyProof(m, n)
			if err != nil {
				t.Fatalf("consistency(%d,%d): %v", m, n, err)
			}
			if !VerifyConsistency(m, n, oldRoot, newRoot, proof) {
				t.Fatalf("valid consistency(%d,%d) rejected", m, n)
			}
			// A forged old root must fail whenever it is actually bound
			// (m > 0; for m == n binding is direct comparison).
			if m > 0 {
				bad := oldRoot
				bad[3] ^= 1
				if VerifyConsistency(m, n, bad, newRoot, proof) {
					t.Fatalf("consistency(%d,%d) accepted forged old root", m, n)
				}
			}
			// A forged new root must fail whenever n > 0 and bound.
			if m > 0 {
				bad := newRoot
				bad[7] ^= 1
				if VerifyConsistency(m, n, oldRoot, bad, proof) {
					t.Fatalf("consistency(%d,%d) accepted forged new root", m, n)
				}
			}
		}
	}
}

func TestVerifyConsistencyRejectsBackward(t *testing.T) {
	if VerifyConsistency(5, 3, Hash{}, Hash{}, nil) {
		t.Fatal("backward consistency accepted")
	}
	if VerifyConsistency(0, 4, EmptyRoot(), Hash{1}, []Hash{{}}) {
		t.Fatal("m=0 with non-empty proof accepted")
	}
	if VerifyConsistency(4, 4, Hash{1}, Hash{2}, nil) {
		t.Fatal("equal sizes with differing roots accepted")
	}
}

func TestProofCodecRoundTrip(t *testing.T) {
	leaves := testLeaves(40)
	tr := NewTreeFromLeaves(leaves)
	path, err := tr.InclusionProof(17, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Proof{
		{Kind: ProofInclusion, Rel: "flights", A: 17, N: 40, Hashes: path},
		{Kind: ProofConsistency, Rel: "", A: 8, N: 40, Hashes: nil},
	} {
		b, err := EncodeProof(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeProof(b)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Kind != p.Kind || got.Rel != p.Rel || got.A != p.A || got.N != p.N || len(got.Hashes) != len(p.Hashes) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, p)
		}
		for i := range got.Hashes {
			if got.Hashes[i] != p.Hashes[i] {
				t.Fatalf("hash %d differs after round trip", i)
			}
		}
	}
	// Every truncation of a valid encoding must error, not panic.
	b, _ := EncodeProof(Proof{Kind: ProofInclusion, Rel: "r", A: 1, N: 4, Hashes: path[:2]})
	for i := 0; i < len(b); i++ {
		if _, err := DecodeProof(b[:i]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", i)
		}
	}
	if _, err := DecodeProof(nil); err == nil {
		t.Fatal("nil decoded successfully")
	}
}

func TestProofVerifyDispatch(t *testing.T) {
	leaves := testLeaves(20)
	tr := NewTreeFromLeaves(leaves)
	root := tr.Root()
	path, _ := tr.InclusionProof(5, 20)
	p := Proof{Kind: ProofInclusion, Rel: "r", A: 5, N: 20, Hashes: path}
	if !p.Verify(leaves[5], Hash{}, root) {
		t.Fatal("inclusion dispatch failed")
	}
	oldRoot, _ := tr.RootAt(9)
	cp, _ := tr.ConsistencyProof(9, 20)
	c := Proof{Kind: ProofConsistency, Rel: "r", A: 9, N: 20, Hashes: cp}
	if !c.Verify(Hash{}, oldRoot, root) {
		t.Fatal("consistency dispatch failed")
	}
	if (Proof{Kind: 9}).Verify(Hash{}, Hash{}, Hash{}) {
		t.Fatal("unknown kind verified")
	}
}

func TestSignerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1, err := LoadOrCreateSigner(dir + "/key")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := LoadOrCreateSigner(dir + "/key")
	if err != nil {
		t.Fatal(err)
	}
	root := LeafHash([]byte("x"))
	sr := s1.Sign("events", 42, root)
	if !VerifyRoot(s1.Public(), sr) {
		t.Fatal("signature rejected under own key")
	}
	if !VerifyRoot(s2.Public(), sr) {
		t.Fatal("reloaded signer has different identity")
	}
	// Any field mutation must invalidate.
	for _, mut := range []func(*SignedRoot){
		func(r *SignedRoot) { r.Rel = "other" },
		func(r *SignedRoot) { r.Size++ },
		func(r *SignedRoot) { r.Root[0] ^= 1 },
		func(r *SignedRoot) { r.Sig[0] ^= 1 },
	} {
		bad := sr
		bad.Sig = append([]byte(nil), sr.Sig...)
		mut(&bad)
		if VerifyRoot(s1.Public(), bad) {
			t.Fatal("mutated signed root verified")
		}
	}
	if VerifyRoot(nil, sr) || VerifyRoot([]byte("short"), sr) {
		t.Fatal("bad key accepted")
	}
	unsigned := SignedRoot{Rel: "events", Size: 42, Root: root}
	if VerifyRoot(s1.Public(), unsigned) {
		t.Fatal("unsigned root verified")
	}
}
