package integrity

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"time"
)

// Artifact is one scrubbable unit of sealed state: a sealed WAL
// segment, a snapshot shard, or one relation's frozen delta runs.
type Artifact struct {
	Kind string `json:"kind"` // "wal-segment", "snapshot", "runs"
	Name string `json:"name"` // segment file name, snapshot path, or relation
	Rel  string `json:"rel,omitempty"`
	// Bytes sizes the artifact for the scrubber's rate limiter.
	Bytes int64 `json:"bytes"`
}

// ScrubberConfig wires a Scrubber to its data source. The scrubber
// itself owns only pacing, cursor persistence, and accounting; what an
// artifact is and how it is verified belongs to the catalog.
type ScrubberConfig struct {
	// List enumerates the artifacts to walk, in a stable order.
	List func() ([]Artifact, error)
	// Verify re-reads one artifact and returns a non-nil error when
	// its content no longer matches its checksums/Merkle roots.
	Verify func(Artifact) error
	// OnCorrupt reacts to one detection (quarantine + degrade +
	// repair live here). Errors from OnCorrupt are reported via the
	// journal by the callee; the scrub pass continues.
	OnCorrupt func(Artifact, error)
	// BytesPerSec caps scrub read bandwidth; 0 means unlimited.
	BytesPerSec int64
	// CursorPath persists the last completed artifact after each
	// verification, so a killed process resumes mid-pass instead of
	// restarting. Empty disables persistence.
	CursorPath string
}

// ScrubStats is the scrubber's lifetime accounting, served under the
// /metrics integrity section.
type ScrubStats struct {
	Passes    uint64 // completed full walks
	Artifacts uint64 // artifacts verified
	Bytes     uint64 // bytes verified
	Failures  uint64 // verification failures detected
	LastPass  int64  // unix seconds the last full pass completed
}

// Scrubber walks sealed artifacts on a byte-rate budget, verifying
// each against its checksums and invoking OnCorrupt on mismatch. One
// RunOnce is one full pass; Run loops on an interval.
type Scrubber struct {
	cfg ScrubberConfig

	passes    atomic.Uint64
	artifacts atomic.Uint64
	bytes     atomic.Uint64
	failures  atomic.Uint64
	lastPass  atomic.Int64
}

// NewScrubber builds a scrubber over the config.
func NewScrubber(cfg ScrubberConfig) *Scrubber {
	return &Scrubber{cfg: cfg}
}

// Stats snapshots the scrubber's counters.
func (s *Scrubber) Stats() ScrubStats {
	return ScrubStats{
		Passes:    s.passes.Load(),
		Artifacts: s.artifacts.Load(),
		Bytes:     s.bytes.Load(),
		Failures:  s.failures.Load(),
		LastPass:  s.lastPass.Load(),
	}
}

// cursor is the persisted resume point: the last artifact fully
// verified in the current pass.
type cursor struct {
	Kind string `json:"kind"`
	Name string `json:"name"`
}

func (s *Scrubber) loadCursor() (cursor, bool) {
	if s.cfg.CursorPath == "" {
		return cursor{}, false
	}
	b, err := os.ReadFile(s.cfg.CursorPath)
	if err != nil {
		return cursor{}, false
	}
	var c cursor
	if json.Unmarshal(b, &c) != nil || c.Kind == "" {
		return cursor{}, false
	}
	return c, true
}

func (s *Scrubber) saveCursor(c cursor) {
	if s.cfg.CursorPath == "" {
		return
	}
	b, err := json.Marshal(c)
	if err != nil {
		return
	}
	// Best effort, temp+rename so a crash never leaves a torn cursor.
	tmp := s.cfg.CursorPath + ".tmp"
	if os.WriteFile(tmp, b, 0o644) == nil {
		os.Rename(tmp, s.cfg.CursorPath)
	}
}

func (s *Scrubber) clearCursor() {
	if s.cfg.CursorPath != "" {
		os.Remove(s.cfg.CursorPath)
	}
}

// RunOnce performs one scrub pass: every artifact List reports,
// resuming after a persisted cursor when one exists, paced to
// BytesPerSec. It returns how many artifacts were verified and how
// many failed. A canceled context stops between artifacts with the
// cursor persisted, which is exactly what lets a killed node resume.
func (s *Scrubber) RunOnce(ctx context.Context) (checked, failed int, err error) {
	arts, err := s.cfg.List()
	if err != nil {
		return 0, 0, fmt.Errorf("integrity: scrub list: %w", err)
	}
	// Resume after the cursor artifact when it is still present;
	// otherwise start over (the artifact set changed under us).
	start := 0
	if c, ok := s.loadCursor(); ok {
		for i, a := range arts {
			if a.Kind == c.Kind && a.Name == c.Name {
				start = i + 1
				break
			}
		}
	}
	limiter := newRateLimiter(s.cfg.BytesPerSec)
	for i := start; i < len(arts); i++ {
		if ctx.Err() != nil {
			return checked, failed, ctx.Err()
		}
		a := arts[i]
		if err := limiter.wait(ctx, a.Bytes); err != nil {
			return checked, failed, err
		}
		verr := s.cfg.Verify(a)
		checked++
		s.artifacts.Add(1)
		s.bytes.Add(uint64(a.Bytes))
		if verr != nil {
			failed++
			s.failures.Add(1)
			if s.cfg.OnCorrupt != nil {
				s.cfg.OnCorrupt(a, verr)
			}
		}
		s.saveCursor(cursor{Kind: a.Kind, Name: a.Name})
	}
	// Pass complete: clear the cursor so the next pass starts fresh.
	s.clearCursor()
	s.passes.Add(1)
	s.lastPass.Store(time.Now().Unix())
	return checked, failed, nil
}

// Run loops RunOnce on the interval until the context ends. Pass
// errors are reported through report (nil-safe) and do not stop the
// loop — a scrubber outliving transient faults is the point.
func (s *Scrubber) Run(ctx context.Context, every time.Duration, report func(checked, failed int, err error)) {
	if every <= 0 {
		return
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			checked, failed, err := s.RunOnce(ctx)
			if report != nil {
				report(checked, failed, err)
			}
		}
	}
}

// rateLimiter paces byte consumption with a simple accumulating
// budget: sleep long enough that the bytes consumed so far never
// exceed rate × elapsed.
type rateLimiter struct {
	rate  int64
	start time.Time
	spent int64
}

func newRateLimiter(rate int64) *rateLimiter {
	return &rateLimiter{rate: rate, start: time.Now()}
}

func (r *rateLimiter) wait(ctx context.Context, bytes int64) error {
	if r.rate <= 0 {
		return nil
	}
	r.spent += bytes
	due := time.Duration(float64(r.spent) / float64(r.rate) * float64(time.Second))
	sleep := due - time.Since(r.start)
	if sleep <= 0 {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(sleep):
		return nil
	}
}
