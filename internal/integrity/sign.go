package integrity

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"os"
)

// rootContext domain-separates root signatures from any other Ed25519
// use of the same key.
const rootContext = "tsdb-merkle-root-v1"

// SignedRoot is one sealed epoch root: the relation's tree root at a
// given size, signed by the primary. A client that pins the public key
// can verify any root offline; a follower compares its own recomputed
// root at the same size against the primary's signature.
type SignedRoot struct {
	Rel  string
	Size uint64
	Root Hash
	Sig  []byte // Ed25519 signature, empty on unsigned (follower) roots
	Key  []byte // Ed25519 public key the signature verifies under
}

// rootMessage is the byte string a root signature covers.
func rootMessage(rel string, size uint64, root Hash) []byte {
	msg := make([]byte, 0, len(rootContext)+1+8+HashSize+len(rel))
	msg = append(msg, rootContext...)
	msg = append(msg, 0)
	msg = append(msg,
		byte(size>>56), byte(size>>48), byte(size>>40), byte(size>>32),
		byte(size>>24), byte(size>>16), byte(size>>8), byte(size))
	msg = append(msg, root[:]...)
	msg = append(msg, rel...)
	return msg
}

// Signer signs sealed roots with a persistent Ed25519 key.
type Signer struct {
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

// NewSigner wraps an existing 32-byte seed.
func NewSigner(seed []byte) (*Signer, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("integrity: signer seed is %d bytes, want %d", len(seed), ed25519.SeedSize)
	}
	priv := ed25519.NewKeyFromSeed(seed)
	return &Signer{priv: priv, pub: priv.Public().(ed25519.PublicKey)}, nil
}

// LoadOrCreateSigner loads the seed file at path, minting and
// persisting a fresh random seed (0600) when absent, so a data
// directory keeps one signing identity across restarts.
func LoadOrCreateSigner(path string) (*Signer, error) {
	seed, err := os.ReadFile(path)
	if err == nil {
		return NewSigner(seed)
	}
	if !os.IsNotExist(err) {
		return nil, fmt.Errorf("integrity: reading signer key: %w", err)
	}
	seed = make([]byte, ed25519.SeedSize)
	if _, err := rand.Read(seed); err != nil {
		return nil, fmt.Errorf("integrity: minting signer key: %w", err)
	}
	if err := os.WriteFile(path, seed, 0o600); err != nil {
		return nil, fmt.Errorf("integrity: persisting signer key: %w", err)
	}
	return NewSigner(seed)
}

// Public returns the signer's public key.
func (s *Signer) Public() []byte {
	return append([]byte(nil), s.pub...)
}

// Sign seals one root.
func (s *Signer) Sign(rel string, size uint64, root Hash) SignedRoot {
	return SignedRoot{
		Rel:  rel,
		Size: size,
		Root: root,
		Sig:  ed25519.Sign(s.priv, rootMessage(rel, size, root)),
		Key:  s.Public(),
	}
}

// VerifyRoot checks a sealed root's signature under the given public
// key (normally the client's pinned key, not the one the server sent).
func VerifyRoot(key []byte, sr SignedRoot) bool {
	if len(key) != ed25519.PublicKeySize || len(sr.Sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(ed25519.PublicKey(key), rootMessage(sr.Rel, sr.Size, sr.Root), sr.Sig)
}
