package integrity

import (
	"encoding/binary"
	"testing"
)

// FuzzDecodeProof holds DecodeProof to its contract: any byte string
// either decodes to a structurally valid proof or errors — never a
// panic, never a proof that re-encodes differently.
func FuzzDecodeProof(f *testing.F) {
	leaves := testLeaves(12)
	tr := NewTreeFromLeaves(leaves)
	path, _ := tr.InclusionProof(3, 12)
	good, _ := EncodeProof(Proof{Kind: ProofInclusion, Rel: "events", A: 3, N: 12, Hashes: path})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("TSPF"))
	f.Add([]byte("TSPF\x01\x01\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeProof(data)
		if err != nil {
			return
		}
		// A successful decode must re-encode to the same bytes: the
		// codec admits no two representations of one proof.
		out, err := EncodeProof(p)
		if err != nil {
			t.Fatalf("decoded proof failed to re-encode: %v", err)
		}
		if string(out) != string(data) {
			t.Fatalf("non-canonical encoding survived decode")
		}
	})
}

// FuzzMerkleConsistency holds the consistency verifier to soundness:
// for a real tree, the genuine proof verifies, and no forged root
// (any root differing from the true one) is ever accepted with that
// proof — regardless of how the fuzzer picks sizes and mutations.
func FuzzMerkleConsistency(f *testing.F) {
	f.Add(uint64(3), uint64(9), uint64(0), []byte{1})
	f.Add(uint64(8), uint64(8), uint64(5), []byte{0xff})
	f.Add(uint64(1), uint64(64), uint64(31), []byte{7, 7})
	f.Fuzz(func(t *testing.T, m, n uint64, mutIdx uint64, mut []byte) {
		const maxN = 96
		n %= maxN + 1
		if n == 0 {
			n = 1
		}
		m %= n + 1
		leaves := make([]Hash, n)
		for i := range leaves {
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], uint64(i))
			leaves[i] = LeafHash(b[:])
		}
		tr := NewTreeFromLeaves(leaves)
		oldRoot, err := tr.RootAt(m)
		if err != nil {
			t.Fatal(err)
		}
		newRoot := tr.Root()
		proof, err := tr.ConsistencyProof(m, n)
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyConsistency(m, n, oldRoot, newRoot, proof) {
			t.Fatalf("genuine consistency(%d,%d) rejected", m, n)
		}
		if len(mut) == 0 || m == 0 {
			// An empty old tree is consistent with anything: the proof
			// binds nothing, so there is no root to forge against.
			return
		}
		// Forge the new root by xor-ing fuzzer-chosen bytes in; any
		// change must be rejected.
		forged := newRoot
		changed := false
		for i, b := range mut {
			if b == 0 {
				continue
			}
			forged[(int(mutIdx)+i)%HashSize] ^= b
			changed = true
		}
		if changed && forged != newRoot && VerifyConsistency(m, n, oldRoot, forged, proof) {
			t.Fatalf("forged new root accepted at (%d,%d)", m, n)
		}
		// Same for the old root, which the proof always binds here.
		if changed {
			forgedOld := oldRoot
			for i, b := range mut {
				forgedOld[(int(mutIdx)+i)%HashSize] ^= b
			}
			if forgedOld != oldRoot && VerifyConsistency(m, n, forgedOld, newRoot, proof) {
				t.Fatalf("forged old root accepted at (%d,%d)", m, n)
			}
		}
	})
}
