// Package qcache is the catalog's plan-keyed query-result cache: a
// byte-budgeted LRU keyed by (relation, canonical query fingerprint,
// mutation epoch). The epoch in the key is what makes invalidation free —
// a mutation bumps the relation's epoch, so every cached result for the
// old epoch simply stops being looked up and ages out of the LRU; nothing
// is ever scanned or purged eagerly. Values are opaque to the cache;
// callers supply an approximate resident size and results larger than the
// per-entry budget are not admitted (one giant rollback result must not
// wipe the working set).
//
// All methods are safe for concurrent use and safe on a nil *Cache, so a
// disabled cache (capacity 0) needs no call-site branching.
package qcache

import (
	"container/list"
	"sync"
)

// Key identifies one cached result. Epoch is the relation's mutation
// epoch at the time the result was computed; a stale epoch can never be
// looked up again, which is the whole invalidation story.
type Key struct {
	Rel         string
	Fingerprint string
	Epoch       uint64
}

// Stats is a point-in-time view of the cache's counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Bytes     int64
	Capacity  int64
}

type entry struct {
	key  Key
	val  any
	size int64
}

// Cache is the LRU. The zero value is unusable; construct with New.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	maxEntry int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[Key]*list.Element

	hits, misses, evictions uint64
}

// New builds a cache bounded to capacity bytes, or returns nil (a valid,
// always-missing cache) when capacity is not positive. Individual entries
// are capped at an eighth of the capacity so one oversized result cannot
// evict the entire working set.
func New(capacity int64) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{
		capacity: capacity,
		maxEntry: capacity / 8,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
	}
}

// Get returns the cached value for k, marking it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	le, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(le)
	return le.Value.(*entry).val, true
}

// Put stores v under k with the given approximate size, evicting from the
// LRU tail until the byte budget holds. Oversized values are not admitted;
// a re-Put of an existing key replaces its value and size.
func (c *Cache) Put(k Key, v any, size int64) {
	if c == nil || size > c.maxEntry {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if le, ok := c.items[k]; ok {
		en := le.Value.(*entry)
		c.bytes += size - en.size
		en.val, en.size = v, size
		c.ll.MoveToFront(le)
	} else {
		c.items[k] = c.ll.PushFront(&entry{key: k, val: v, size: size})
		c.bytes += size
	}
	for c.bytes > c.capacity {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		en := tail.Value.(*entry)
		c.ll.Remove(tail)
		delete(c.items, en.key)
		c.bytes -= en.size
		c.evictions++
	}
}

// Stats reports the cache's counters; all zeros for a nil cache.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		Capacity:  c.capacity,
	}
}
