package qcache

import "testing"

func key(fp string, epoch uint64) Key {
	return Key{Rel: "r", Fingerprint: fp, Epoch: epoch}
}

func TestGetPutAndCounters(t *testing.T) {
	c := New(1024)
	if _, ok := c.Get(key("a", 1)); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(key("a", 1), "va", 100)
	v, ok := c.Get(key("a", 1))
	if !ok || v.(string) != "va" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	// A different epoch is a different key: the free-invalidation story.
	if _, ok := c.Get(key("a", 2)); ok {
		t.Fatal("stale-epoch key hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 || st.Bytes != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionIsLRU(t *testing.T) {
	c := New(800) // maxEntry = 100
	c.Put(key("a", 1), "a", 100)
	c.Put(key("b", 1), "b", 100)
	c.Put(key("c", 1), "c", 100)
	c.Get(key("a", 1)) // refresh a; b is now the LRU tail
	for i := 0; i < 6; i++ {
		c.Put(key(string(rune('d'+i)), 1), i, 100)
	}
	if _, ok := c.Get(key("a", 1)); !ok {
		t.Fatal("recently used entry evicted before the LRU tail")
	}
	if _, ok := c.Get(key("b", 1)); ok {
		t.Fatal("LRU tail survived past capacity")
	}
	if st := c.Stats(); st.Evictions == 0 || st.Bytes > st.Capacity {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOversizedEntryNotAdmitted(t *testing.T) {
	c := New(800) // maxEntry = 100
	c.Put(key("big", 1), "big", 101)
	if _, ok := c.Get(key("big", 1)); ok {
		t.Fatal("oversized entry admitted")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("entries = %d, want 0", st.Entries)
	}
}

func TestReplaceAdjustsBytes(t *testing.T) {
	c := New(1024)
	c.Put(key("a", 1), "v1", 100)
	c.Put(key("a", 1), "v2", 60)
	v, ok := c.Get(key("a", 1))
	if !ok || v.(string) != "v2" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if st := c.Stats(); st.Bytes != 60 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache // also what New(0) returns
	if New(0) != nil {
		t.Fatal("New(0) != nil")
	}
	c.Put(key("a", 1), "a", 1)
	if _, ok := c.Get(key("a", 1)); ok {
		t.Fatal("nil cache hit")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
}
