package backlog

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/tx"
)

func physRelation(t *testing.T) *relation.Relation {
	t.Helper()
	schema := relation.Schema{
		Name: "phys", ValidTime: element.EventStamp, Granularity: chronon.Second,
		Invariant: []relation.Column{{Name: "id", Type: element.KindInt}},
	}
	r := relation.New(schema, tx.NewSystemClock())
	if _, err := r.Insert(relation.Insertion{
		Invariant: []element.Value{element.Int(1)}, VT: element.EventAt(5),
	}); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPhysicalBlockRoundTrip(t *testing.T) {
	r := physRelation(t)
	phys := Physical{Org: 2, Source: "inferred", Adopted: []uint8{1, 4}, Migrations: 3}
	var buf bytes.Buffer
	if err := WriteWithPhysical(&buf, r, nil, 17, phys); err != nil {
		t.Fatal(err)
	}
	_, _, recs, walLSN, got, err := ReadWithPhysical(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if walLSN != 17 || len(recs) != 1 {
		t.Fatalf("walLSN=%d recs=%d", walLSN, len(recs))
	}
	if !reflect.DeepEqual(got, phys) {
		t.Fatalf("physical round-trip: got %+v, want %+v", got, phys)
	}
}

// A v3 stream (no physical block) must read back with the zero Physical:
// older snapshots keep loading, and the catalog re-advises from
// declarations as before.
func TestPhysicalBlockBackCompat(t *testing.T) {
	r := physRelation(t)
	var buf bytes.Buffer
	if err := WriteWithState(&buf, r, nil, 9); err != nil {
		t.Fatal(err)
	}
	// Rewrite the version field to 3 and drop the physical and integrity
	// blocks. The block layout after the header is schema, declarations,
	// state, physical, integrity — so a legal v3 stream is the current
	// stream minus the fourth and fifth blocks (the integrity header here
	// counts zero leaves, so no leaf chunks follow it).
	v3 := buf.Bytes()
	binary.LittleEndian.PutUint16(v3[4:6], 3)
	// Blocks: walk three blocks, then splice out the next two.
	off := 6
	for i := 0; i < 3; i++ {
		n := int(binary.LittleEndian.Uint32(v3[off:]))
		off += 4 + n + 4
	}
	cut := off
	for i := 0; i < 2; i++ {
		n := int(binary.LittleEndian.Uint32(v3[cut:]))
		cut += 4 + n + 4
	}
	stream := append(append([]byte{}, v3[:off]...), v3[cut:]...)

	_, _, recs, walLSN, phys, err := ReadWithPhysical(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if walLSN != 9 || len(recs) != 1 {
		t.Fatalf("walLSN=%d recs=%d", walLSN, len(recs))
	}
	if !reflect.DeepEqual(phys, Physical{}) {
		t.Fatalf("v3 stream yielded non-zero physical: %+v", phys)
	}
}

func TestPhysicalBlockCorrupt(t *testing.T) {
	if _, err := decodePhysical([]byte{2}); err == nil {
		t.Fatal("short physical block decoded")
	}
	if _, err := decodePhysical(append(encodePhysical(Physical{Source: "declared"}), 0xFF)); err == nil {
		t.Fatal("trailing physical bytes accepted")
	}
}
