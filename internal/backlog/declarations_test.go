package backlog

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"path/filepath"
	"testing"

	"repro/internal/chronon"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/surrogate"
	"repro/internal/tx"
)

func sampleDescriptors(t *testing.T) []constraint.Descriptor {
	t.Helper()
	delayed, err := core.DelayedRetroactiveSpec(chronon.Seconds(30))
	if err != nil {
		t.Fatal(err)
	}
	monthly, err := core.VTIntervalRegularSpec(chronon.Months(1))
	if err != nil {
		t.Fatal(err)
	}
	ttReg, err := core.TTEventRegularSpec(chronon.Seconds(60))
	if err != nil {
		t.Fatal(err)
	}
	cs := []struct {
		c     constraint.Constraint
		scope constraint.Scope
	}{
		{constraint.Event{Spec: delayed}, constraint.PerRelation},
		{constraint.Event{Spec: core.RetroactiveSpec(), Basis: core.TTDeletion, Endpoint: core.VTEnd}, constraint.PerRelation},
		{constraint.InterEvent{Spec: core.SequentialEventsSpec()}, constraint.PerPartition},
		{constraint.InterEvent{Spec: ttReg}, constraint.PerRelation},
		{constraint.IntervalRegular{Spec: monthly}, constraint.PerRelation},
		{constraint.InterInterval{Spec: core.ContiguousSpec()}, constraint.PerPartition},
	}
	var out []constraint.Descriptor
	for _, x := range cs {
		d, ok := constraint.Describe(x.c, x.scope)
		if !ok {
			t.Fatalf("constraint %v not describable", x.c)
		}
		out = append(out, d)
	}
	return out
}

func TestDescriptorRoundTripThroughBytes(t *testing.T) {
	descs := sampleDescriptors(t)
	body := encodeDeclarations(descs)
	got, err := decodeDeclarations(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(descs) {
		t.Fatalf("decoded %d of %d", len(got), len(descs))
	}
	for i := range descs {
		if got[i].Kind != descs[i].Kind || got[i].Class != descs[i].Class ||
			got[i].Scope != descs[i].Scope || got[i].Basis != descs[i].Basis ||
			got[i].Endpoint != descs[i].Endpoint || got[i].Granularity != descs[i].Granularity {
			t.Errorf("descriptor %d drifted: %+v vs %+v", i, got[i], descs[i])
		}
		if len(got[i].Bounds) != len(descs[i].Bounds) {
			t.Fatalf("descriptor %d bounds count differs", i)
		}
		for j := range got[i].Bounds {
			if got[i].Bounds[j] != descs[i].Bounds[j] {
				t.Errorf("descriptor %d bound %d drifted", i, j)
			}
		}
	}
}

func TestDecodeDeclarationsRejectsGarbage(t *testing.T) {
	if _, err := decodeDeclarations([]byte{0xff, 0xff, 0x01}); err == nil {
		t.Error("short catalog accepted")
	}
	// A structurally valid descriptor with an impossible class fails the
	// reconstruction check.
	var e enc
	e.u16(1)
	e.u8(uint8(constraint.DescEvent))
	e.u8(200) // no such class
	e.u8(0)
	e.u8(0)
	e.u8(0)
	e.i64(0)
	e.u16(0)
	if _, err := decodeDeclarations(e.b); err == nil {
		t.Error("unbuildable descriptor accepted")
	}
}

func TestSaveLoadWithDeclarations(t *testing.T) {
	r := relation.New(relation.Schema{
		Name: "temps", ValidTime: element.EventStamp, Granularity: chronon.Second,
	}, tx.NewLogicalClock(1000, 10))
	en := constraint.Attach(r, constraint.PerRelation,
		constraint.Event{Spec: core.RetroactiveSpec()},
		constraint.InterEvent{Spec: core.SequentialEventsSpec()},
	)
	for _, vt := range []int64{1005, 1015} {
		if _, err := r.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(vt))}); err != nil {
			t.Fatal(err)
		}
	}
	descs, missing := constraint.DescribeEnforcer(en)
	if missing != 0 || len(descs) != 2 {
		t.Fatalf("DescribeEnforcer = %d descs, %d missing", len(descs), missing)
	}
	path := filepath.Join(t.TempDir(), "temps.tsbl")
	if err := SaveWithDeclarations(path, r, descs); err != nil {
		t.Fatal(err)
	}
	restored, gotDescs, err := LoadWithDeclarations(path, tx.NewLogicalClock(1000, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotDescs) != 2 {
		t.Fatalf("restored %d declarations", len(gotDescs))
	}
	// The restored relation still enforces: a future event is rejected...
	if _, err := restored.Insert(relation.Insertion{VT: element.EventAt(99999)}); err == nil {
		t.Fatal("restored relation does not enforce retroactivity")
	}
	// ...and the warmed sequential checker rejects regression against the
	// replayed history (prior max(tt,vt) = 1020; vt 1014 < 1020).
	if _, err := restored.Insert(relation.Insertion{VT: element.EventAt(1014)}); err == nil {
		t.Fatal("restored relation does not enforce sequentiality against history")
	}
	// A valid continuation is accepted.
	if _, err := restored.Insert(relation.Insertion{VT: element.EventAt(1025)}); err != nil {
		t.Fatalf("valid continuation rejected: %v", err)
	}
}

func TestDeterminedNotDescribable(t *testing.T) {
	d := constraint.Determined{Spec: core.DeterminedSpec{M: core.M3(), Base: core.GeneralSpec()}}
	if _, ok := constraint.Describe(d, constraint.PerRelation); ok {
		t.Error("determined constraint claimed describable")
	}
	en := constraint.NewEnforcer(constraint.PerRelation, d)
	descs, missing := constraint.DescribeEnforcer(en)
	if len(descs) != 0 || missing != 1 {
		t.Errorf("DescribeEnforcer = %d, %d", len(descs), missing)
	}
}

func TestVersion1StreamStillReadable(t *testing.T) {
	// Handcraft a v1 stream: header(v1) + schema + one record + trailer.
	r := relation.New(relation.Schema{
		Name: "v1", ValidTime: element.EventStamp, Granularity: chronon.Second,
	}, tx.NewLogicalClock(0, 10))
	if _, err := r.Insert(relation.Insertion{VT: element.EventAt(5)}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.WriteString("TSBL")
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], 1)
	buf.Write(v[:])
	if err := writeBlock(&buf, encodeSchema(r.Schema())); err != nil {
		t.Fatal(err)
	}
	for _, rec := range r.Backlog() {
		if err := writeBlock(&buf, encodeRecord(rec)); err != nil {
			t.Fatal(err)
		}
	}
	var trailer [12]byte
	binary.LittleEndian.PutUint64(trailer[:8], 1)
	binary.LittleEndian.PutUint32(trailer[8:], crc32.Checksum(trailer[:8], castagnoli))
	buf.Write(trailer[:])

	schema, decls, records, err := ReadWithDeclarations(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v1 stream rejected: %v", err)
	}
	if schema.Name != "v1" || len(records) != 1 || len(decls) != 0 {
		t.Errorf("v1 decode: schema %q, %d records, %d decls", schema.Name, len(records), len(decls))
	}
}

func TestDescriptorBuildAllGroupsByScope(t *testing.T) {
	descs := sampleDescriptors(t)
	byScope, err := constraint.BuildAll(descs)
	if err != nil {
		t.Fatal(err)
	}
	if len(byScope[constraint.PerRelation]) != 4 || len(byScope[constraint.PerPartition]) != 2 {
		t.Errorf("groups: %d per-relation, %d per-partition",
			len(byScope[constraint.PerRelation]), len(byScope[constraint.PerPartition]))
	}
}

// surType aliases the surrogate type for test brevity.
type surType = surrogate.Surrogate

func TestLoadWithPerPartitionDeclarations(t *testing.T) {
	// A per-partition contiguous interval relation: after reload, each
	// life-line's checker must be warmed with that partition's history.
	r := relation.New(relation.Schema{
		Name: "rota", ValidTime: element.IntervalStamp, Granularity: chronon.Second,
	}, tx.NewLogicalClock(0, 10))
	en := constraint.Attach(r, constraint.PerPartition,
		constraint.InterInterval{Spec: core.ContiguousSpec()})
	ann := r.NewObject()
	bob := r.NewObject()
	mk := func(os surType, vs, ve int64) {
		if _, err := r.Insert(relation.Insertion{
			Object: os, VT: element.SpanOf(chronon.Chronon(vs), chronon.Chronon(ve)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	mk(ann, 0, 10)
	mk(bob, 100, 110)
	mk(ann, 10, 20)
	mk(bob, 110, 120)

	descs, _ := constraint.DescribeEnforcer(en)
	path := filepath.Join(t.TempDir(), "rota.tsbl")
	if err := SaveWithDeclarations(path, r, descs); err != nil {
		t.Fatal(err)
	}
	restored, _, err := LoadWithDeclarations(path, tx.NewLogicalClock(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	// Ann's life-line continues contiguously...
	if _, err := restored.Insert(relation.Insertion{
		Object: ann, VT: element.SpanOf(20, 30),
	}); err != nil {
		t.Fatalf("contiguous continuation rejected: %v", err)
	}
	// ...but a gap in Bob's is rejected against the replayed history.
	if _, err := restored.Insert(relation.Insertion{
		Object: bob, VT: element.SpanOf(200, 210),
	}); err == nil {
		t.Fatal("gap after reload accepted: per-partition state not warmed")
	}
}
