// Package backlog persists a temporal relation as its backlog: the
// append-only journal of insertion and logical-deletion operations, each
// stamped with its transaction time. This is the physical representation
// of [JMRS90] that §2 of the paper cites ("a backlog relation of
// insertion, modification, and deletion operations (tuples) with single
// transaction time-stamps"); replaying the journal reconstructs every
// historical state.
//
// The on-disk format is a self-describing binary stream:
//
//	header:  magic "TSBL", format version (u16), schema (length-prefixed)
//	records: length-prefixed bodies, each followed by a CRC-32C of the body
//	trailer: record count (u64) + CRC-32C of the header magic+count
//
// Every record is individually checksummed, so truncation and corruption
// are detected at load time rather than silently replayed.
package backlog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/chronon"
	"repro/internal/constraint"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/surrogate"
	"repro/internal/tx"
)

const (
	magic = "TSBL"
	// Format versions: 1 = schema + records; 2 adds a declarations block
	// (the constraint catalog) between the schema and the records; 3 adds
	// a state block (the applied write-ahead-log LSN) after the
	// declarations, which makes WAL replay after a snapshot idempotent;
	// 4 adds a physical-design block (live organization, advice source,
	// adopted inferred classes, migration count) after the state block, so
	// a respecialized relation reboots into the organization it migrated
	// to even after the WAL frames that chose it are truncated; 5 adds an
	// integrity block (Merkle leaf sequence and last signed root) after
	// the physical block, so proofs keep working across restarts and WAL
	// truncation. Streams older than the current version remain readable.
	formatVersion = 5
	// maxBody bounds a single record body; a record holds one element, so
	// anything larger indicates corruption.
	maxBody = 1 << 24
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a failed checksum, bad framing, or a truncated
// stream.
var ErrCorrupt = errors.New("backlog: corrupt or truncated stream")

// Write serializes the relation's schema and backlog to w, with no
// declaration catalog.
func Write(w io.Writer, r *relation.Relation) error {
	return WriteWithDeclarations(w, r, nil)
}

// WriteWithDeclarations serializes the relation's schema, its declared
// specializations (the constraint catalog), and its backlog to w.
func WriteWithDeclarations(w io.Writer, r *relation.Relation, decls []constraint.Descriptor) error {
	return WriteWithState(w, r, decls, 0)
}

// WriteWithState is WriteWithDeclarations plus the relation's applied
// write-ahead-log LSN: every WAL record at or below walLSN is reflected in
// the stream, so boot-time replay can skip them.
func WriteWithState(w io.Writer, r *relation.Relation, decls []constraint.Descriptor, walLSN uint64) error {
	return WriteWithPhysical(w, r, decls, walLSN, Physical{})
}

// Physical is the journaled physical-design state of a relation: which
// organization it lives in, what licensed that choice, and which inferred
// classes a respecialization adopted. The catalog re-derives the live store
// from this plus the declarations at load, so the block is tiny — it
// records decisions, not data.
type Physical struct {
	// Org is the live organization as a storage.Kind ordinal.
	Org uint8
	// Source is the advice-source token ("declared", "inferred", "default").
	Source string
	// Adopted are the observed classes (core.Class ordinals) the last
	// respecialization committed to; empty when the org follows from
	// declarations alone.
	Adopted []uint8
	// Migrations counts completed store migrations over the relation's
	// lifetime.
	Migrations uint64
}

func encodePhysical(p Physical) []byte {
	var e enc
	e.u8(p.Org)
	e.str(p.Source)
	e.u16(uint16(len(p.Adopted)))
	for _, c := range p.Adopted {
		e.u8(c)
	}
	e.u64(p.Migrations)
	return e.b
}

func decodePhysical(b []byte) (Physical, error) {
	d := dec{b: b}
	var p Physical
	p.Org = d.u8()
	p.Source = d.str()
	n := int(d.u16())
	for i := 0; i < n && d.err == nil; i++ {
		p.Adopted = append(p.Adopted, d.u8())
	}
	p.Migrations = d.u64()
	if d.err != nil {
		return Physical{}, d.err
	}
	if len(d.b) != 0 {
		return Physical{}, fmt.Errorf("%w: trailing physical bytes", ErrCorrupt)
	}
	return p, nil
}

// WriteWithPhysical is WriteWithState plus the relation's physical-design
// block.
func WriteWithPhysical(w io.Writer, r *relation.Relation, decls []constraint.Descriptor, walLSN uint64, phys Physical) error {
	return WriteWithIntegrity(w, r, decls, walLSN, phys, Integrity{})
}

// WriteWithIntegrity is WriteWithPhysical plus the relation's integrity
// block (Merkle leaves and last signed root).
func WriteWithIntegrity(w io.Writer, r *relation.Relation, decls []constraint.Descriptor, walLSN uint64, phys Physical, ig Integrity) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(formatVersion)); err != nil {
		return err
	}
	if err := writeBlock(bw, encodeSchema(r.Schema())); err != nil {
		return err
	}
	if err := writeBlock(bw, encodeDeclarations(decls)); err != nil {
		return err
	}
	state := binary.LittleEndian.AppendUint64(nil, walLSN)
	if err := writeBlock(bw, state); err != nil {
		return err
	}
	if err := writeBlock(bw, encodePhysical(phys)); err != nil {
		return err
	}
	if err := writeIntegrity(bw, ig); err != nil {
		return err
	}
	records := r.Backlog()
	for _, rec := range records {
		if err := writeBlock(bw, encodeRecord(rec)); err != nil {
			return err
		}
	}
	var trailer [12]byte
	binary.LittleEndian.PutUint64(trailer[:8], uint64(len(records)))
	binary.LittleEndian.PutUint32(trailer[8:], crc32.Checksum(trailer[:8], castagnoli))
	if _, err := bw.Write(trailer[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// Read deserializes a schema and backlog from rd, discarding any
// declaration catalog.
func Read(rd io.Reader) (relation.Schema, []relation.LogRecord, error) {
	schema, _, records, err := ReadWithDeclarations(rd)
	return schema, records, err
}

// ReadWithDeclarations deserializes a schema, declaration catalog, and
// backlog from rd. Version-1 streams yield an empty catalog.
func ReadWithDeclarations(rd io.Reader) (relation.Schema, []constraint.Descriptor, []relation.LogRecord, error) {
	schema, decls, records, _, err := ReadWithState(rd)
	return schema, decls, records, err
}

// ReadWithState is ReadWithDeclarations plus the applied write-ahead-log
// LSN. Streams older than version 3 yield zero (no WAL coverage claimed).
func ReadWithState(rd io.Reader) (relation.Schema, []constraint.Descriptor, []relation.LogRecord, uint64, error) {
	schema, decls, records, walLSN, _, err := ReadWithPhysical(rd)
	return schema, decls, records, walLSN, err
}

// ReadWithPhysical is ReadWithState plus the physical-design block.
// Streams older than version 4 yield the zero Physical (heap organization,
// no adopted classes) — the catalog then re-advises from declarations as it
// always did.
func ReadWithPhysical(rd io.Reader) (relation.Schema, []constraint.Descriptor, []relation.LogRecord, uint64, Physical, error) {
	schema, decls, records, walLSN, phys, _, err := ReadWithIntegrity(rd)
	return schema, decls, records, walLSN, phys, err
}

// ReadWithIntegrity is ReadWithPhysical plus the integrity block.
// Streams older than version 5 yield the zero Integrity (not tracked) —
// the catalog then starts a fresh tree from the next commit.
func ReadWithIntegrity(rd io.Reader) (relation.Schema, []constraint.Descriptor, []relation.LogRecord, uint64, Physical, Integrity, error) {
	fail := func(err error) (relation.Schema, []constraint.Descriptor, []relation.LogRecord, uint64, Physical, Integrity, error) {
		return relation.Schema{}, nil, nil, 0, Physical{}, Integrity{}, err
	}
	br := bufio.NewReader(rd)
	head := make([]byte, len(magic)+2)
	if _, err := io.ReadFull(br, head); err != nil {
		return fail(fmt.Errorf("%w: missing header", ErrCorrupt))
	}
	if string(head[:len(magic)]) != magic {
		return fail(fmt.Errorf("%w: bad magic", ErrCorrupt))
	}
	version := binary.LittleEndian.Uint16(head[len(magic):])
	if version < 1 || version > formatVersion {
		return fail(fmt.Errorf("backlog: unsupported format version %d", version))
	}
	schemaBody, err := readBlock(br)
	if err != nil {
		return fail(err)
	}
	schema, err := decodeSchema(schemaBody)
	if err != nil {
		return fail(err)
	}
	var decls []constraint.Descriptor
	if version >= 2 {
		declBody, err := readBlock(br)
		if err != nil {
			return fail(err)
		}
		decls, err = decodeDeclarations(declBody)
		if err != nil {
			return fail(err)
		}
	}
	var walLSN uint64
	if version >= 3 {
		stateBody, err := readBlock(br)
		if err != nil {
			return fail(err)
		}
		if len(stateBody) != 8 {
			return fail(fmt.Errorf("%w: bad state block", ErrCorrupt))
		}
		walLSN = binary.LittleEndian.Uint64(stateBody)
	}
	var phys Physical
	if version >= 4 {
		physBody, err := readBlock(br)
		if err != nil {
			return fail(err)
		}
		phys, err = decodePhysical(physBody)
		if err != nil {
			return fail(err)
		}
	}
	var ig Integrity
	if version >= 5 {
		ig, err = readIntegrity(br)
		if err != nil {
			return fail(err)
		}
	}
	var records []relation.LogRecord
	for {
		// The trailer is exactly the last 12 bytes of the stream, so the
		// next block is the trailer iff fewer than 13 bytes remain.
		peek, err := br.Peek(13)
		if err != nil {
			if len(peek) != 12 {
				return fail(fmt.Errorf("%w: truncated stream", ErrCorrupt))
			}
			count := binary.LittleEndian.Uint64(peek[:8])
			sum := binary.LittleEndian.Uint32(peek[8:])
			if crc32.Checksum(peek[:8], castagnoli) != sum {
				return fail(fmt.Errorf("%w: trailer checksum mismatch", ErrCorrupt))
			}
			if count != uint64(len(records)) {
				return fail(fmt.Errorf("%w: trailer records %d, read %d", ErrCorrupt, count, len(records)))
			}
			return schema, decls, records, walLSN, phys, ig, nil
		}
		body, err := readBlock(br)
		if err != nil {
			return fail(err)
		}
		rec, err := decodeRecord(body, schema)
		if err != nil {
			return fail(err)
		}
		records = append(records, rec)
	}
}

// Save writes the relation to a file, atomically via a temp-and-rename.
func Save(path string, r *relation.Relation) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Write(f, r); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a file written by Save and replays it into a fresh relation
// using the given transaction clock.
func Load(path string, clock tx.Clock) (*relation.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	schema, records, err := Read(f)
	if err != nil {
		return nil, err
	}
	return relation.Replay(schema, clock, records)
}

// writeBlock writes a length-prefixed, checksummed body.
func writeBlock(w io.Writer, body []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(body, castagnoli))
	_, err := w.Write(sum[:])
	return err
}

// readBlock reads one length-prefixed, checksummed body.
func readBlock(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxBody {
		return nil, fmt.Errorf("%w: oversized block (%d bytes)", ErrCorrupt, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(sum[:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return body, nil
}

// --- schema encoding ---

type enc struct{ b []byte }

func (e *enc) u8(v uint8)    { e.b = append(e.b, v) }
func (e *enc) u16(v uint16)  { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string) {
	e.u16(uint16(len(s)))
	e.b = append(e.b, s...)
}

type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: short record", ErrCorrupt)
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u16() uint16 {
	if d.err != nil || len(d.b) < 2 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b)
	d.b = d.b[2:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) str() string {
	n := int(d.u16())
	if d.err != nil || len(d.b) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func encodeSchema(s relation.Schema) []byte {
	var e enc
	e.str(s.Name)
	e.u8(uint8(s.ValidTime))
	e.i64(int64(s.Granularity))
	cols := func(cs []relation.Column) {
		e.u16(uint16(len(cs)))
		for _, c := range cs {
			e.str(c.Name)
			e.u8(uint8(c.Type))
		}
	}
	cols(s.Invariant)
	cols(s.Varying)
	e.u16(uint16(len(s.UserTimes)))
	for _, n := range s.UserTimes {
		e.str(n)
	}
	return e.b
}

func decodeSchema(b []byte) (relation.Schema, error) {
	d := dec{b: b}
	var s relation.Schema
	s.Name = d.str()
	s.ValidTime = element.TimestampKind(d.u8())
	s.Granularity = chronon.Granularity(d.i64())
	cols := func() []relation.Column {
		n := int(d.u16())
		out := make([]relation.Column, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			out = append(out, relation.Column{
				Name: d.str(),
				Type: element.ValueKind(d.u8()),
			})
		}
		return out
	}
	s.Invariant = cols()
	s.Varying = cols()
	n := int(d.u16())
	for i := 0; i < n && d.err == nil; i++ {
		s.UserTimes = append(s.UserTimes, d.str())
	}
	if d.err != nil {
		return relation.Schema{}, d.err
	}
	if len(d.b) != 0 {
		return relation.Schema{}, fmt.Errorf("%w: trailing schema bytes", ErrCorrupt)
	}
	if err := s.Validate(); err != nil {
		return relation.Schema{}, fmt.Errorf("backlog: invalid persisted schema: %w", err)
	}
	return s, nil
}

// --- record encoding ---

func encodeRecord(rec relation.LogRecord) []byte {
	var e enc
	e.u8(uint8(rec.Op))
	e.i64(int64(rec.TT))
	if rec.Op == relation.OpDelete {
		e.u64(uint64(rec.Elem.ES))
		return e.b
	}
	el := rec.Elem
	e.u64(uint64(el.ES))
	e.u64(uint64(el.OS))
	e.u8(uint8(el.VT.Kind()))
	e.i64(int64(el.VT.Start()))
	e.i64(int64(el.VT.End()))
	vals := func(vs []element.Value) {
		e.u16(uint16(len(vs)))
		for _, v := range vs {
			encodeValue(&e, v)
		}
	}
	vals(el.Invariant)
	vals(el.Varying)
	e.u16(uint16(len(el.UserTimes)))
	for _, t := range el.UserTimes {
		e.i64(int64(t))
	}
	return e.b
}

func decodeRecord(b []byte, schema relation.Schema) (relation.LogRecord, error) {
	d := dec{b: b}
	op := relation.Op(d.u8())
	tt := chronon.Chronon(d.i64())
	if op == relation.OpDelete {
		es := surrogate.Surrogate(d.u64())
		if d.err != nil {
			return relation.LogRecord{}, d.err
		}
		if len(d.b) != 0 {
			return relation.LogRecord{}, fmt.Errorf("%w: trailing record bytes", ErrCorrupt)
		}
		return relation.LogRecord{Op: op, TT: tt, Elem: &element.Element{ES: es}}, nil
	}
	if op != relation.OpInsert {
		return relation.LogRecord{}, fmt.Errorf("%w: unknown op %d", ErrCorrupt, op)
	}
	el := &element.Element{}
	el.ES = surrogate.Surrogate(d.u64())
	el.OS = surrogate.Surrogate(d.u64())
	kind := element.TimestampKind(d.u8())
	start := chronon.Chronon(d.i64())
	end := chronon.Chronon(d.i64())
	vals := func() []element.Value {
		n := int(d.u16())
		out := make([]element.Value, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			out = append(out, decodeValue(&d))
		}
		return out
	}
	el.Invariant = vals()
	el.Varying = vals()
	n := int(d.u16())
	for i := 0; i < n && d.err == nil; i++ {
		el.UserTimes = append(el.UserTimes, chronon.Chronon(d.i64()))
	}
	if d.err != nil {
		return relation.LogRecord{}, d.err
	}
	if len(d.b) != 0 {
		return relation.LogRecord{}, fmt.Errorf("%w: trailing record bytes", ErrCorrupt)
	}
	switch kind {
	case element.EventStamp:
		el.VT = element.EventAt(start)
	case element.IntervalStamp:
		if end <= start {
			return relation.LogRecord{}, fmt.Errorf("%w: empty valid interval", ErrCorrupt)
		}
		el.VT = element.SpanOf(start, end)
	default:
		return relation.LogRecord{}, fmt.Errorf("%w: unknown stamp kind %d", ErrCorrupt, kind)
	}
	el.TTStart = tt
	el.TTEnd = chronon.Forever
	return relation.LogRecord{Op: op, TT: tt, Elem: el}, nil
}

func encodeValue(e *enc, v element.Value) {
	e.u8(uint8(v.Kind()))
	switch v.Kind() {
	case element.KindNull:
	case element.KindString:
		s, _ := v.Str()
		e.str(s)
	case element.KindInt:
		i, _ := v.IntVal()
		e.i64(i)
	case element.KindFloat:
		f, _ := v.FloatVal()
		e.f64(f)
	case element.KindBool:
		b, _ := v.BoolVal()
		if b {
			e.u8(1)
		} else {
			e.u8(0)
		}
	case element.KindTime:
		t, _ := v.TimeVal()
		e.i64(int64(t))
	}
}

func decodeValue(d *dec) element.Value {
	switch element.ValueKind(d.u8()) {
	case element.KindNull:
		return element.Null()
	case element.KindString:
		return element.String_(d.str())
	case element.KindInt:
		return element.Int(d.i64())
	case element.KindFloat:
		return element.Float(d.f64())
	case element.KindBool:
		return element.Bool(d.u8() != 0)
	case element.KindTime:
		return element.Time(chronon.Chronon(d.i64()))
	}
	d.fail()
	return element.Null()
}
