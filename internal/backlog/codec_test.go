package backlog

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/surrogate"
	"repro/internal/tx"
	"repro/internal/workload"
)

// buildRelation makes a relation with a little of everything: inserts,
// a deletion, a modification, all value kinds, and user-defined times.
func buildRelation(t *testing.T) *relation.Relation {
	t.Helper()
	r := relation.New(relation.Schema{
		Name:        "mix",
		ValidTime:   element.EventStamp,
		Granularity: chronon.Second,
		Invariant: []relation.Column{
			{Name: "key", Type: element.KindString},
			{Name: "race", Type: element.KindInt},
		},
		Varying: []relation.Column{
			{Name: "salary", Type: element.KindFloat},
			{Name: "active", Type: element.KindBool},
			{Name: "reviewed", Type: element.KindTime},
		},
		UserTimes: []string{"entered_by_clerk_at"},
	}, tx.NewLogicalClock(0, 10))
	ins := func(vt int64, key string, salary float64) *element.Element {
		e, err := r.Insert(relation.Insertion{
			VT: element.EventAt(chronon.Chronon(vt)),
			Invariant: []element.Value{
				element.String_(key), element.Int(7),
			},
			Varying: []element.Value{
				element.Float(salary), element.Bool(true), element.Time(chronon.Chronon(vt + 5)),
			},
			UserTimes: []chronon.Chronon{chronon.Chronon(vt + 1)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a := ins(1, "ann", 100)
	ins(2, "bob", 200)
	c := ins(3, "cod", 300)
	if err := r.Delete(a.ES); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Modify(c.ES, element.EventAt(4), []element.Value{
		element.Float(350), element.Bool(false), element.Null(),
	}); err != nil {
		t.Fatal(err)
	}
	return r
}

func sameRelations(t *testing.T, a, b *relation.Relation) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("Len %d vs %d", a.Len(), b.Len())
	}
	av, bv := a.Versions(), b.Versions()
	for i := range av {
		x, y := av[i], bv[i]
		if x.ES != y.ES || x.OS != y.OS || x.TTStart != y.TTStart || x.TTEnd != y.TTEnd {
			t.Fatalf("version %d stamps differ: %v vs %v", i, x, y)
		}
		if x.VT != y.VT {
			t.Fatalf("version %d VT differs: %v vs %v", i, x.VT, y.VT)
		}
		if len(x.Invariant) != len(y.Invariant) || len(x.Varying) != len(y.Varying) {
			t.Fatalf("version %d arity differs", i)
		}
		for j := range x.Invariant {
			if !x.Invariant[j].Equal(y.Invariant[j]) {
				t.Fatalf("version %d invariant %d differs", i, j)
			}
		}
		for j := range x.Varying {
			if !x.Varying[j].Equal(y.Varying[j]) {
				t.Fatalf("version %d varying %d differs", i, j)
			}
		}
		for j := range x.UserTimes {
			if x.UserTimes[j] != y.UserTimes[j] {
				t.Fatalf("version %d user time %d differs", i, j)
			}
		}
	}
	if len(a.Backlog()) != len(b.Backlog()) {
		t.Fatalf("backlog length differs")
	}
}

func TestRoundTrip(t *testing.T) {
	r := buildRelation(t)
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	schema, records, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if schema.Name != "mix" || len(schema.Invariant) != 2 || len(schema.Varying) != 3 || len(schema.UserTimes) != 1 {
		t.Fatalf("schema mangled: %+v", schema)
	}
	restored, err := relation.Replay(schema, tx.NewLogicalClock(0, 10), records)
	if err != nil {
		t.Fatal(err)
	}
	sameRelations(t, r, restored)

	// Historical states are identical too.
	for tt := int64(0); tt <= 70; tt += 10 {
		a := r.Rollback(chronon.Chronon(tt))
		b := restored.Rollback(chronon.Chronon(tt))
		if len(a) != len(b) {
			t.Fatalf("rollback(%d): %d vs %d elements", tt, len(a), len(b))
		}
	}
}

func TestRoundTripEmptyRelation(t *testing.T) {
	r := relation.New(relation.Schema{
		Name: "empty", ValidTime: element.EventStamp, Granularity: chronon.Second,
	}, tx.NewLogicalClock(0, 1))
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	schema, records, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 || schema.Name != "empty" {
		t.Fatalf("empty round trip: %d records", len(records))
	}
}

func TestRoundTripIntervalRelation(t *testing.T) {
	r, err := workload.Assignments(workload.Config{Seed: 9, N: 10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	schema, records, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := relation.Replay(schema, tx.NewLogicalClock(0, 1), records)
	if err != nil {
		t.Fatal(err)
	}
	sameRelations(t, r, restored)
}

func TestReplayContinuesCleanly(t *testing.T) {
	r := buildRelation(t)
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	schema, records, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	clock := tx.NewLogicalClock(0, 10)
	restored, err := relation.Replay(schema, clock, records)
	if err != nil {
		t.Fatal(err)
	}
	// New inserts must not collide with replayed surrogates or go back in
	// transaction time.
	maxTT := records[len(records)-1].TT
	e, err := restored.Insert(relation.Insertion{
		VT: element.EventAt(1),
		Invariant: []element.Value{
			element.String_("dee"), element.Int(1),
		},
		Varying: []element.Value{
			element.Float(1), element.Bool(true), element.Time(0),
		},
		UserTimes: []chronon.Chronon{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.TTStart <= maxTT {
		t.Errorf("new tt %v not after replayed max %v", e.TTStart, maxTT)
	}
	for _, old := range restored.Versions()[:restored.Len()-1] {
		if old.ES == e.ES {
			t.Fatalf("surrogate collision with %v", old)
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	r := buildRelation(t)
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	// Flipping any single byte must be detected (checksums cover bodies,
	// framing catches the rest).
	for pos := 0; pos < len(pristine); pos++ {
		mutated := append([]byte(nil), pristine...)
		mutated[pos] ^= 0x40
		_, records, err := Read(bytes.NewReader(mutated))
		if err == nil {
			// A flip confined to framing could still parse; it must then
			// fail replay or produce a different history, never silently
			// match.
			schema2, _, _ := Read(bytes.NewReader(pristine))
			if _, rerr := relation.Replay(schema2, tx.NewLogicalClock(0, 10), records); rerr == nil {
				t.Fatalf("byte flip at %d went completely undetected", pos)
			}
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	r := buildRelation(t)
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 7 {
		if _, _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d undetected", cut)
		}
	}
	if _, _, err := Read(bytes.NewReader(full[:len(full)-1])); err == nil {
		t.Fatal("missing final byte undetected")
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, _, err := Read(bytes.NewReader([]byte("NOPE\x01\x00"))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: %v", err)
	}
	if _, _, err := Read(bytes.NewReader([]byte("TSBL\xff\x00"))); err == nil {
		t.Error("future version accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rel.tsbl")
	r := buildRelation(t)
	if err := Save(path, r); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(path, tx.NewLogicalClock(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	sameRelations(t, r, restored)
	// No temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind")
	}
	if _, err := Load(filepath.Join(dir, "missing.tsbl"), tx.NewLogicalClock(0, 10)); err == nil {
		t.Error("loading missing file succeeded")
	}
}

func TestReplayValidation(t *testing.T) {
	schema := relation.Schema{Name: "x", ValidTime: element.EventStamp, Granularity: chronon.Second}
	mk := func(es, os uint64, tt int64) relation.LogRecord {
		return relation.LogRecord{Op: relation.OpInsert, TT: chronon.Chronon(tt), Elem: &element.Element{
			ES: surrogate.Surrogate(es), OS: surrogate.Surrogate(os), VT: element.EventAt(0),
		}}
	}
	cases := []struct {
		name string
		recs []relation.LogRecord
	}{
		{"tt regression", []relation.LogRecord{mk(1, 1, 10), mk(2, 1, 5)}},
		{"duplicate es", []relation.LogRecord{mk(1, 1, 10), mk(1, 1, 20)}},
		{"missing surrogate", []relation.LogRecord{mk(0, 1, 10)}},
		{"delete unknown", []relation.LogRecord{{Op: relation.OpDelete, TT: 10, Elem: &element.Element{ES: 9}}}},
		{"double delete", []relation.LogRecord{
			mk(1, 1, 10),
			{Op: relation.OpDelete, TT: 20, Elem: &element.Element{ES: 1}},
			{Op: relation.OpDelete, TT: 30, Elem: &element.Element{ES: 1}},
		}},
		{"nil element", []relation.LogRecord{{Op: relation.OpInsert, TT: 10}}},
		{"bad op", []relation.LogRecord{{Op: relation.Op(9), TT: 10, Elem: &element.Element{ES: 1, OS: 1}}}},
	}
	for _, c := range cases {
		if _, err := relation.Replay(schema, tx.NewLogicalClock(0, 1), c.recs); err == nil {
			t.Errorf("%s: replay accepted", c.name)
		}
	}
	// A valid history replays.
	good := []relation.LogRecord{
		mk(1, 1, 10), mk(2, 2, 20),
		{Op: relation.OpDelete, TT: 30, Elem: &element.Element{ES: 1}},
	}
	r, err := relation.Replay(schema, tx.NewLogicalClock(0, 1), good)
	if err != nil {
		t.Fatalf("valid replay failed: %v", err)
	}
	if len(r.Current()) != 1 {
		t.Errorf("current = %d", len(r.Current()))
	}
}
