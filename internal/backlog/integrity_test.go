package backlog

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/integrity"
	"repro/internal/relation"
	"repro/internal/tx"
)

func integRelation(t *testing.T, n int) *relation.Relation {
	t.Helper()
	schema := relation.Schema{
		Name: "ig", ValidTime: element.EventStamp, Granularity: chronon.Second,
		Invariant: []relation.Column{{Name: "id", Type: element.KindInt}},
	}
	r := relation.New(schema, tx.NewSystemClock())
	for i := 0; i < n; i++ {
		if _, err := r.Insert(relation.Insertion{
			Invariant: []element.Value{element.Int(int64(i))}, VT: element.EventAt(chronon.Chronon(i + 1)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func sampleIntegrity(t *testing.T, nLeaves int) Integrity {
	t.Helper()
	tr := integrity.NewTree()
	for i := 0; i < nLeaves; i++ {
		tr.Append(integrity.LeafHash([]byte{byte(i), byte(i >> 8)}))
	}
	signer, err := integrity.LoadOrCreateSigner(filepath.Join(t.TempDir(), "key"))
	if err != nil {
		t.Fatal(err)
	}
	sr := signer.Sign("ig", tr.Size(), tr.Root())
	return Integrity{Tracked: true, Leaves: tr.Leaves(), Root: &sr}
}

func TestIntegrityBlockRoundTrip(t *testing.T) {
	r := integRelation(t, 3)
	ig := sampleIntegrity(t, 5)
	path := filepath.Join(t.TempDir(), "ig.tsbl")
	if err := SaveWithIntegrity(path, r, nil, 8, Physical{Org: 1, Source: "declared"}, ig); err != nil {
		t.Fatal(err)
	}
	r2, _, walLSN, phys, got, err := LoadWithIntegrity(path, tx.NewSystemClock())
	if err != nil {
		t.Fatal(err)
	}
	if walLSN != 8 || phys.Org != 1 || r2.Len() != 3 {
		t.Fatalf("walLSN=%d phys=%+v count=%d", walLSN, phys, r2.Len())
	}
	if !got.Tracked || len(got.Leaves) != 5 || got.Root == nil {
		t.Fatalf("integrity round-trip: %+v", got)
	}
	for i := range ig.Leaves {
		if got.Leaves[i] != ig.Leaves[i] {
			t.Fatalf("leaf %d differs", i)
		}
	}
	if got.Root.Rel != "ig" || got.Root.Size != 5 || got.Root.Root != ig.Root.Root {
		t.Fatalf("root differs: %+v", got.Root)
	}
	if !integrity.VerifyRoot(ig.Root.Key, *got.Root) {
		t.Fatal("persisted signature no longer verifies")
	}
	// The rebuilt tree agrees with the original.
	if integrity.NewTreeFromLeaves(got.Leaves).Root() != integrity.NewTreeFromLeaves(ig.Leaves).Root() {
		t.Fatal("rebuilt tree root differs")
	}
}

func TestIntegrityBlockUntracked(t *testing.T) {
	r := integRelation(t, 1)
	var buf bytes.Buffer
	if err := WriteWithIntegrity(&buf, r, nil, 0, Physical{}, Integrity{}); err != nil {
		t.Fatal(err)
	}
	_, _, _, _, _, ig, err := ReadWithIntegrity(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ig.Tracked || ig.Leaves != nil || ig.Root != nil {
		t.Fatalf("zero integrity round-trip: %+v", ig)
	}
}

// TestSnapshotShardCorruptionMatrix is the snapshot leg of the
// corruption matrix: flipping one bit of every byte of a serialized
// shard must make the load fail (zero false negatives), and the clean
// shard must keep loading (zero false positives).
func TestSnapshotShardCorruptionMatrix(t *testing.T) {
	r := integRelation(t, 4)
	ig := sampleIntegrity(t, 6)
	var buf bytes.Buffer
	if err := WriteWithIntegrity(&buf, r, nil, 4, Physical{Org: 2, Source: "inferred"}, ig); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	if _, _, _, _, _, _, err := ReadWithIntegrity(bytes.NewReader(clean)); err != nil {
		t.Fatalf("false positive on clean shard: %v", err)
	}
	for off := 0; off < len(clean); off++ {
		for bit := 0; bit < 8; bit++ {
			bad := append([]byte(nil), clean...)
			bad[off] ^= 1 << bit
			if _, _, _, _, _, _, err := ReadWithIntegrity(bytes.NewReader(bad)); err == nil {
				t.Fatalf("bit %d of byte %d flipped undetected", bit, off)
			}
		}
	}
	// Truncations must fail too.
	for _, cut := range []int{1, len(clean) / 2, len(clean) - 1} {
		if _, _, _, _, _, _, err := ReadWithIntegrity(bytes.NewReader(clean[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes undetected", cut)
		}
	}
}
