package backlog

import (
	"repro/internal/constraint"
	"repro/internal/relation"
)

// The write-ahead log reuses the backlog codec for its record payloads,
// so a WAL entry and a snapshot record are byte-identical encodings of
// the same relation.LogRecord. These wrappers export exactly that codec.

// EncodeRecord serializes one backlog record (the WAL payload format).
func EncodeRecord(rec relation.LogRecord) []byte { return encodeRecord(rec) }

// DecodeRecord deserializes one backlog record.
func DecodeRecord(b []byte) (relation.LogRecord, error) {
	return decodeRecord(b, relation.Schema{})
}

// EncodeSchema serializes a relation schema (the WAL create payload).
func EncodeSchema(s relation.Schema) []byte { return encodeSchema(s) }

// DecodeSchema deserializes and validates a relation schema.
func DecodeSchema(b []byte) (relation.Schema, error) { return decodeSchema(b) }

// EncodeDeclarations serializes a constraint catalog (the WAL declare
// payload).
func EncodeDeclarations(decls []constraint.Descriptor) []byte {
	return encodeDeclarations(decls)
}

// DecodeDeclarations deserializes and validates a constraint catalog.
func DecodeDeclarations(b []byte) ([]constraint.Descriptor, error) {
	return decodeDeclarations(b)
}
