package backlog

import (
	"fmt"
	"os"

	"repro/internal/chronon"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tx"
)

// encodeDeclarations serializes the constraint catalog.
func encodeDeclarations(decls []constraint.Descriptor) []byte {
	var e enc
	e.u16(uint16(len(decls)))
	for _, d := range decls {
		e.u8(uint8(d.Kind))
		e.u8(uint8(d.Class))
		e.u8(uint8(d.Scope))
		e.u8(uint8(d.Basis))
		e.u8(uint8(d.Endpoint))
		e.i64(int64(d.Granularity))
		e.u16(uint16(len(d.Bounds)))
		for _, b := range d.Bounds {
			e.i64(b.Seconds)
			e.i64(b.Months)
		}
	}
	return e.b
}

// decodeDeclarations deserializes the constraint catalog and verifies each
// descriptor reconstructs (so corrupt catalogs fail at load, not at first
// transaction).
func decodeDeclarations(b []byte) ([]constraint.Descriptor, error) {
	d := dec{b: b}
	n := int(d.u16())
	out := make([]constraint.Descriptor, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		desc := constraint.Descriptor{
			Kind:     constraint.DescriptorKind(d.u8()),
			Class:    core.Class(d.u8()),
			Scope:    constraint.Scope(d.u8()),
			Basis:    core.TTBasis(d.u8()),
			Endpoint: core.VTEndpoint(d.u8()),
		}
		desc.Granularity = chronon.Granularity(d.i64())
		nb := int(d.u16())
		for j := 0; j < nb && d.err == nil; j++ {
			desc.Bounds = append(desc.Bounds, chronon.Duration{
				Seconds: d.i64(),
				Months:  d.i64(),
			})
		}
		out = append(out, desc)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("%w: trailing declaration bytes", ErrCorrupt)
	}
	for _, desc := range out {
		if _, err := desc.Build(); err != nil {
			return nil, fmt.Errorf("backlog: invalid persisted declaration: %w", err)
		}
	}
	return out, nil
}

// SaveWithDeclarations writes the relation and its constraint catalog to a
// file atomically.
func SaveWithDeclarations(path string, r *relation.Relation, decls []constraint.Descriptor) error {
	return SaveWithState(path, r, decls, 0)
}

// SaveWithState is SaveWithDeclarations plus the relation's applied
// write-ahead-log LSN. The write is atomic (temp file + rename) and
// fsynced before the rename, so a snapshot claiming WAL coverage is never
// less durable than the log records it lets the catalog skip.
func SaveWithState(path string, r *relation.Relation, decls []constraint.Descriptor, walLSN uint64) error {
	return SaveWithPhysical(path, r, decls, walLSN, Physical{})
}

// SaveWithPhysical is SaveWithState plus the relation's physical-design
// block.
func SaveWithPhysical(path string, r *relation.Relation, decls []constraint.Descriptor, walLSN uint64, phys Physical) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteWithPhysical(f, r, decls, walLSN, phys); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadWithDeclarations reads a file, replays the relation, and re-attaches
// the persisted constraint catalog as enforcers (one per scope). New
// transactions are validated against the restored declarations exactly as
// they were against the originals.
func LoadWithDeclarations(path string, clock tx.Clock) (*relation.Relation, []constraint.Descriptor, error) {
	r, decls, _, err := LoadWithState(path, clock)
	return r, decls, err
}

// LoadWithState is LoadWithDeclarations plus the applied write-ahead-log
// LSN the snapshot recorded (zero for pre-WAL streams).
func LoadWithState(path string, clock tx.Clock) (*relation.Relation, []constraint.Descriptor, uint64, error) {
	r, decls, walLSN, _, err := LoadWithPhysical(path, clock)
	return r, decls, walLSN, err
}

// LoadWithPhysical is LoadWithState plus the physical-design block (zero
// for pre-v4 streams).
func LoadWithPhysical(path string, clock tx.Clock) (*relation.Relation, []constraint.Descriptor, uint64, Physical, error) {
	fail := func(err error) (*relation.Relation, []constraint.Descriptor, uint64, Physical, error) {
		return nil, nil, 0, Physical{}, err
	}
	f, err := os.Open(path)
	if err != nil {
		return fail(err)
	}
	defer f.Close()
	schema, decls, records, walLSN, phys, err := ReadWithPhysical(f)
	if err != nil {
		return fail(err)
	}
	r, err := relation.Replay(schema, clock, records)
	if err != nil {
		return fail(err)
	}
	byScope, err := constraint.BuildAll(decls)
	if err != nil {
		return fail(err)
	}
	for scope, cs := range byScope {
		en := constraint.NewEnforcer(scope, cs...)
		// Warm the incremental checkers with the replayed history so the
		// next transaction is validated against the full state.
		for _, rec := range r.Backlog() {
			en.Applied(r, rec.Op, rec.Elem, rec.TT)
		}
		r.AddGuard(en)
	}
	return r, decls, walLSN, phys, nil
}
