package backlog

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"repro/internal/constraint"
	"repro/internal/integrity"
	"repro/internal/relation"
	"repro/internal/tx"
)

// The integrity block persists a relation's Merkle state with its
// snapshot: the full leaf sequence (32 bytes per committed WAL frame)
// and the last signed epoch root. It is written at the same lock point
// as the walLSN state block, so the persisted tree size always equals
// the history the snapshot claims — replayed WAL records past walLSN
// append their leaves exactly once.
//
// Layout: one header block ("ITGY" magic, tracked flag, leaf count,
// optional signed root), then the leaves in chunked blocks so a long
// history never exceeds the per-block size bound.

const (
	itgyMagic = "ITGY"
	// leavesPerChunk keeps each leaf block (32 bytes/leaf) around 4 MiB,
	// comfortably under maxBody.
	leavesPerChunk = 131072
	// maxLeaves bounds a persisted tree; far above any realistic history,
	// far below an allocation attack.
	maxLeaves = 1 << 28
)

// Integrity is the journaled integrity state of a relation.
type Integrity struct {
	// Tracked reports whether a Merkle tree was being maintained. False
	// distinguishes "integrity disabled" from "tree of size zero".
	Tracked bool
	// Leaves is the full leaf-hash sequence of the relation's tree.
	Leaves []integrity.Hash
	// Root is the last sealed signed root, nil when none was sealed yet
	// (or the node is an unsigning follower and never sealed one).
	Root *integrity.SignedRoot
}

func encodeIntegrityHeader(ig Integrity) []byte {
	var e enc
	e.b = append(e.b, itgyMagic...)
	if ig.Tracked {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.u64(uint64(len(ig.Leaves)))
	if ig.Root == nil {
		e.u8(0)
		return e.b
	}
	e.u8(1)
	e.str(ig.Root.Rel)
	e.u64(ig.Root.Size)
	e.b = append(e.b, ig.Root.Root[:]...)
	e.u16(uint16(len(ig.Root.Sig)))
	e.b = append(e.b, ig.Root.Sig...)
	e.u16(uint16(len(ig.Root.Key)))
	e.b = append(e.b, ig.Root.Key...)
	return e.b
}

func decodeIntegrityHeader(b []byte) (ig Integrity, leafCount uint64, err error) {
	if len(b) < len(itgyMagic) || string(b[:len(itgyMagic)]) != itgyMagic {
		return Integrity{}, 0, fmt.Errorf("%w: integrity block lacks its magic", ErrCorrupt)
	}
	d := dec{b: b[len(itgyMagic):]}
	ig.Tracked = d.u8() != 0
	leafCount = d.u64()
	hasRoot := d.u8() != 0
	if hasRoot {
		var sr integrity.SignedRoot
		sr.Rel = d.str()
		sr.Size = d.u64()
		if d.err == nil && len(d.b) >= integrity.HashSize {
			copy(sr.Root[:], d.b[:integrity.HashSize])
			d.b = d.b[integrity.HashSize:]
		} else {
			d.fail()
		}
		if n := int(d.u16()); d.err == nil && len(d.b) >= n {
			sr.Sig = append([]byte(nil), d.b[:n]...)
			d.b = d.b[n:]
		} else {
			d.fail()
		}
		if n := int(d.u16()); d.err == nil && len(d.b) >= n {
			sr.Key = append([]byte(nil), d.b[:n]...)
			d.b = d.b[n:]
		} else {
			d.fail()
		}
		ig.Root = &sr
	}
	if d.err != nil {
		return Integrity{}, 0, d.err
	}
	if len(d.b) != 0 {
		return Integrity{}, 0, fmt.Errorf("%w: trailing integrity bytes", ErrCorrupt)
	}
	if leafCount > maxLeaves {
		return Integrity{}, 0, fmt.Errorf("%w: integrity block claims %d leaves", ErrCorrupt, leafCount)
	}
	return ig, leafCount, nil
}

// writeIntegrity emits the header block and the chunked leaf blocks.
func writeIntegrity(w io.Writer, ig Integrity) error {
	if err := writeBlock(w, encodeIntegrityHeader(ig)); err != nil {
		return err
	}
	for off := 0; off < len(ig.Leaves); off += leavesPerChunk {
		end := off + leavesPerChunk
		if end > len(ig.Leaves) {
			end = len(ig.Leaves)
		}
		chunk := make([]byte, 0, (end-off)*integrity.HashSize)
		for _, l := range ig.Leaves[off:end] {
			chunk = append(chunk, l[:]...)
		}
		if err := writeBlock(w, chunk); err != nil {
			return err
		}
	}
	return nil
}

// readIntegrity reads the header block and the chunked leaf blocks.
func readIntegrity(r *bufio.Reader) (Integrity, error) {
	body, err := readBlock(r)
	if err != nil {
		return Integrity{}, err
	}
	ig, leafCount, err := decodeIntegrityHeader(body)
	if err != nil {
		return Integrity{}, err
	}
	if leafCount > 0 {
		ig.Leaves = make([]integrity.Hash, 0, leafCount)
	}
	for uint64(len(ig.Leaves)) < leafCount {
		chunk, err := readBlock(r)
		if err != nil {
			return Integrity{}, err
		}
		if len(chunk)%integrity.HashSize != 0 || len(chunk) == 0 {
			return Integrity{}, fmt.Errorf("%w: ragged leaf chunk", ErrCorrupt)
		}
		for off := 0; off < len(chunk); off += integrity.HashSize {
			if uint64(len(ig.Leaves)) == leafCount {
				return Integrity{}, fmt.Errorf("%w: leaf chunks overrun their count", ErrCorrupt)
			}
			var h integrity.Hash
			copy(h[:], chunk[off:])
			ig.Leaves = append(ig.Leaves, h)
		}
	}
	return ig, nil
}

// SaveWithIntegrity is SaveWithPhysical plus the relation's integrity
// block, with the same atomic temp-fsync-rename discipline.
func SaveWithIntegrity(path string, r *relation.Relation, decls []constraint.Descriptor, walLSN uint64, phys Physical, ig Integrity) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteWithIntegrity(f, r, decls, walLSN, phys, ig); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadWithIntegrity is LoadWithPhysical plus the integrity block (zero
// for pre-v5 streams).
func LoadWithIntegrity(path string, clock tx.Clock) (*relation.Relation, []constraint.Descriptor, uint64, Physical, Integrity, error) {
	fail := func(err error) (*relation.Relation, []constraint.Descriptor, uint64, Physical, Integrity, error) {
		return nil, nil, 0, Physical{}, Integrity{}, err
	}
	f, err := os.Open(path)
	if err != nil {
		return fail(err)
	}
	defer f.Close()
	schema, decls, records, walLSN, phys, ig, err := ReadWithIntegrity(f)
	if err != nil {
		return fail(err)
	}
	r, err := relation.Replay(schema, clock, records)
	if err != nil {
		return fail(err)
	}
	byScope, err := constraint.BuildAll(decls)
	if err != nil {
		return fail(err)
	}
	for scope, cs := range byScope {
		en := constraint.NewEnforcer(scope, cs...)
		for _, rec := range r.Backlog() {
			en.Applied(r, rec.Op, rec.Elem, rec.TT)
		}
		r.AddGuard(en)
	}
	return r, decls, walLSN, phys, ig, nil
}
