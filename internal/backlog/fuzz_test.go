package backlog

import (
	"bytes"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/tx"
)

func eventAt(c int64) element.Timestamp { return element.EventAt(chronon.Chronon(c)) }

// FuzzRead feeds arbitrary bytes to the backlog decoder: it must never
// panic, and anything it accepts must replay cleanly or fail with a
// validation error — never corrupt the process.
func FuzzRead(f *testing.F) {
	// Seed with a genuine file and mutations of it.
	r := relation.New(relation.Schema{
		Name: "seed", ValidTime: 0, Granularity: 1,
	}, tx.NewLogicalClock(0, 10))
	for i := 0; i < 3; i++ {
		if _, err := r.Insert(relation.Insertion{VT: eventAt(int64(i))}); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("TSBL"))
	f.Add(valid[:len(valid)/2])
	mutated := append([]byte(nil), valid...)
	if len(mutated) > 10 {
		mutated[10] ^= 0xff
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		schema, records, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must replay without panicking; validation errors
		// are fine.
		_, _ = relation.Replay(schema, tx.NewLogicalClock(0, 10), records)
	})
}
