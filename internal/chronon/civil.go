package chronon

import "fmt"

// Civil is a broken-down calendar date-time on the proleptic Gregorian
// calendar, used for calendric duration arithmetic (e.g. "one month", which
// covers 28 to 31 days depending on the date it is added to, §3.1) and for
// human-readable formatting. There are no time zones: the time line is a
// single uniform sequence of seconds.
type Civil struct {
	Year   int // e.g. 1992
	Month  int // 1..12
	Day    int // 1..31
	Hour   int // 0..23
	Minute int // 0..59
	Second int // 0..59
}

// daysFromCivil converts a Gregorian calendar date to a count of days since
// 1970-01-01. The algorithm shifts the year to start in March so leap days
// fall at the end of the internal year, then counts whole 400-year eras.
func daysFromCivil(y, m, d int) int64 {
	if m <= 2 {
		y--
	}
	var era int64
	yy := int64(y)
	if yy >= 0 {
		era = yy / 400
	} else {
		era = (yy - 399) / 400
	}
	yoe := yy - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = int64(m) - 3
	} else {
		mp = int64(m) + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1     // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468       // shift epoch to 1970-01-01
}

// civilFromDays converts a count of days since 1970-01-01 back to a
// Gregorian calendar date.
func civilFromDays(z int64) (y, m, d int) {
	z += 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100) // [0, 365]
	mp := (5*doy + 2) / 153                  // [0, 11]
	d = int(doy - (153*mp+2)/5 + 1)          // [1, 31]
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	if m <= 2 {
		yy++
	}
	return int(yy), m, d
}

// IsLeapYear reports whether y is a leap year on the proleptic Gregorian
// calendar.
func IsLeapYear(y int) bool {
	return y%4 == 0 && (y%100 != 0 || y%400 == 0)
}

var daysInMonthTable = [13]int{0, 31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}

// DaysInMonth returns the number of days in the given month of the given
// year (29 for February in leap years).
func DaysInMonth(y, m int) int {
	if m == 2 && IsLeapYear(y) {
		return 29
	}
	if m < 1 || m > 12 {
		return 0
	}
	return daysInMonthTable[m]
}

// Valid reports whether cv denotes an actual calendar date-time.
func (cv Civil) Valid() bool {
	if cv.Month < 1 || cv.Month > 12 {
		return false
	}
	if cv.Day < 1 || cv.Day > DaysInMonth(cv.Year, cv.Month) {
		return false
	}
	if cv.Hour < 0 || cv.Hour > 23 || cv.Minute < 0 || cv.Minute > 59 || cv.Second < 0 || cv.Second > 59 {
		return false
	}
	return true
}

// Chronon converts the civil date-time to a point on the time line.
func (cv Civil) Chronon() Chronon {
	days := daysFromCivil(cv.Year, cv.Month, cv.Day)
	return Chronon(days*86400 + int64(cv.Hour)*3600 + int64(cv.Minute)*60 + int64(cv.Second))
}

// Civil converts a chronon to its broken-down calendar form. The
// distinguished values MinChronon and MaxChronon have no calendar form and
// decode to whatever date their raw second count implies; callers should
// test for them first.
func (c Chronon) Civil() Civil {
	secs := int64(c)
	days := secs / 86400
	rem := secs % 86400
	if rem < 0 {
		rem += 86400
		days--
	}
	y, m, d := civilFromDays(days)
	return Civil{
		Year:   y,
		Month:  m,
		Day:    d,
		Hour:   int(rem / 3600),
		Minute: int(rem % 3600 / 60),
		Second: int(rem % 60),
	}
}

// String formats the civil time as "YYYY-MM-DD HH:MM:SS" (with a leading
// minus sign for years before year 0).
func (cv Civil) String() string {
	return fmt.Sprintf("%04d-%02d-%02d %02d:%02d:%02d",
		cv.Year, cv.Month, cv.Day, cv.Hour, cv.Minute, cv.Second)
}

// Date builds the chronon for the given calendar date at midnight.
func Date(y, m, d int) Chronon {
	return Civil{Year: y, Month: m, Day: d}.Chronon()
}

// DateTime builds the chronon for the given calendar date and time of day.
func DateTime(y, mo, d, h, mi, s int) Chronon {
	return Civil{Year: y, Month: mo, Day: d, Hour: h, Minute: mi, Second: s}.Chronon()
}

// AddMonths advances the civil date-time by n calendar months (n may be
// negative), clamping the day of month to the length of the target month:
// January 31 plus one month is February 28 (or 29 in a leap year). This is
// the calendric-specific duration arithmetic of §3.1.
func (cv Civil) AddMonths(n int) Civil {
	total := cv.Year*12 + (cv.Month - 1) + n
	y := total / 12
	m := total%12 + 1
	if total < 0 && total%12 != 0 {
		y = (total - 11) / 12
		m = total - y*12 + 1
	}
	d := cv.Day
	if max := DaysInMonth(y, m); d > max {
		d = max
	}
	return Civil{Year: y, Month: m, Day: d, Hour: cv.Hour, Minute: cv.Minute, Second: cv.Second}
}

// ParseCivil parses "YYYY-MM-DD" or "YYYY-MM-DD HH:MM:SS" (a 'T' separator
// is also accepted).
func ParseCivil(s string) (Civil, error) {
	var cv Civil
	var sep byte
	switch {
	case len(s) == 10:
		if _, err := fmt.Sscanf(s, "%d-%d-%d", &cv.Year, &cv.Month, &cv.Day); err != nil {
			return Civil{}, fmt.Errorf("chronon: invalid date %q", s)
		}
	case len(s) == 19:
		sep = s[10]
		if sep != ' ' && sep != 'T' {
			return Civil{}, fmt.Errorf("chronon: invalid date-time %q", s)
		}
		if _, err := fmt.Sscanf(s[:10], "%d-%d-%d", &cv.Year, &cv.Month, &cv.Day); err != nil {
			return Civil{}, fmt.Errorf("chronon: invalid date-time %q", s)
		}
		if _, err := fmt.Sscanf(s[11:], "%d:%d:%d", &cv.Hour, &cv.Minute, &cv.Second); err != nil {
			return Civil{}, fmt.Errorf("chronon: invalid date-time %q", s)
		}
	default:
		return Civil{}, fmt.Errorf("chronon: invalid date-time %q", s)
	}
	if !cv.Valid() {
		return Civil{}, fmt.Errorf("chronon: date-time %q out of range", s)
	}
	return cv, nil
}
