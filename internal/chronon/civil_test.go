package chronon

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCivilKnownDates(t *testing.T) {
	cases := []struct {
		cv   Civil
		want Chronon
	}{
		{Civil{Year: 1970, Month: 1, Day: 1}, 0},
		{Civil{Year: 1970, Month: 1, Day: 2}, 86400},
		{Civil{Year: 1969, Month: 12, Day: 31}, -86400},
		{Civil{Year: 2000, Month: 1, Day: 1}, 946684800},
		{Civil{Year: 1992, Month: 2, Day: 3}, 697075200},
		{Civil{Year: 2026, Month: 7, Day: 6}, 1783296000},
		{Civil{Year: 1970, Month: 1, Day: 1, Hour: 1, Minute: 2, Second: 3}, 3723},
	}
	for _, c := range cases {
		if got := c.cv.Chronon(); got != c.want {
			t.Errorf("%v.Chronon() = %d, want %d", c.cv, got, c.want)
		}
		back := c.want.Civil()
		if back != c.cv {
			t.Errorf("%d.Civil() = %v, want %v", c.want, back, c.cv)
		}
	}
}

func TestCivilRoundTrip(t *testing.T) {
	f := func(raw int64) bool {
		// Stay within +/- ~100k years so the civil form is meaningful.
		c := Chronon(raw % (3_000_000_000_000))
		return c.Civil().Chronon() == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCivilOrderPreserved(t *testing.T) {
	// Converting chronon -> civil -> chronon must preserve order: spot-check
	// adjacent seconds across day/month/year boundaries.
	boundaries := []Chronon{
		Date(1970, 1, 1), Date(1972, 3, 1), Date(2000, 3, 1),
		Date(1999, 12, 31).Add(86399), Date(1900, 2, 28).Add(86399),
	}
	for _, b := range boundaries {
		for d := int64(-2); d <= 2; d++ {
			c := b.Add(d)
			if c.Civil().Chronon() != c {
				t.Errorf("round trip failed at %d (%v)", c, c.Civil())
			}
		}
	}
}

func TestIsLeapYear(t *testing.T) {
	cases := map[int]bool{
		1992: true, 1900: false, 2000: true, 2023: false, 2024: true, 1700: false, 1600: true,
	}
	for y, want := range cases {
		if got := IsLeapYear(y); got != want {
			t.Errorf("IsLeapYear(%d) = %v, want %v", y, got, want)
		}
	}
}

func TestDaysInMonth(t *testing.T) {
	if got := DaysInMonth(1992, 2); got != 29 {
		t.Errorf("Feb 1992 has %d days, want 29", got)
	}
	if got := DaysInMonth(1991, 2); got != 28 {
		t.Errorf("Feb 1991 has %d days, want 28", got)
	}
	if got := DaysInMonth(1991, 1); got != 31 {
		t.Errorf("Jan has %d days, want 31", got)
	}
	if got := DaysInMonth(1991, 4); got != 30 {
		t.Errorf("Apr has %d days, want 30", got)
	}
	if got := DaysInMonth(1991, 13); got != 0 {
		t.Errorf("month 13 has %d days, want 0", got)
	}
}

func TestCivilValid(t *testing.T) {
	good := []Civil{
		{Year: 1992, Month: 2, Day: 29},
		{Year: 1970, Month: 1, Day: 1},
		{Year: 2000, Month: 12, Day: 31, Hour: 23, Minute: 59, Second: 59},
	}
	for _, cv := range good {
		if !cv.Valid() {
			t.Errorf("%v should be valid", cv)
		}
	}
	bad := []Civil{
		{Year: 1991, Month: 2, Day: 29},
		{Year: 1991, Month: 0, Day: 1},
		{Year: 1991, Month: 13, Day: 1},
		{Year: 1991, Month: 1, Day: 0},
		{Year: 1991, Month: 1, Day: 32},
		{Year: 1991, Month: 1, Day: 1, Hour: 24},
		{Year: 1991, Month: 1, Day: 1, Minute: 60},
		{Year: 1991, Month: 1, Day: 1, Second: 60},
	}
	for _, cv := range bad {
		if cv.Valid() {
			t.Errorf("%v should be invalid", cv)
		}
	}
}

func TestAddMonthsClamping(t *testing.T) {
	cases := []struct {
		from Civil
		n    int
		want Civil
	}{
		{Civil{Year: 1992, Month: 1, Day: 31}, 1, Civil{Year: 1992, Month: 2, Day: 29}},
		{Civil{Year: 1991, Month: 1, Day: 31}, 1, Civil{Year: 1991, Month: 2, Day: 28}},
		{Civil{Year: 1991, Month: 12, Day: 15}, 1, Civil{Year: 1992, Month: 1, Day: 15}},
		{Civil{Year: 1991, Month: 1, Day: 15}, -1, Civil{Year: 1990, Month: 12, Day: 15}},
		{Civil{Year: 1991, Month: 3, Day: 31}, -1, Civil{Year: 1991, Month: 2, Day: 28}},
		{Civil{Year: 1991, Month: 6, Day: 10}, 12, Civil{Year: 1992, Month: 6, Day: 10}},
		{Civil{Year: 1991, Month: 6, Day: 10}, -18, Civil{Year: 1989, Month: 12, Day: 10}},
		{Civil{Year: 1991, Month: 6, Day: 10}, 0, Civil{Year: 1991, Month: 6, Day: 10}},
	}
	for _, c := range cases {
		if got := c.from.AddMonths(c.n); got != c.want {
			t.Errorf("%v.AddMonths(%d) = %v, want %v", c.from, c.n, got, c.want)
		}
	}
}

func TestAddMonthsPreservesTimeOfDay(t *testing.T) {
	cv := Civil{Year: 1991, Month: 5, Day: 7, Hour: 13, Minute: 45, Second: 9}
	got := cv.AddMonths(3)
	if got.Hour != 13 || got.Minute != 45 || got.Second != 9 {
		t.Errorf("AddMonths changed time of day: %v", got)
	}
}

func TestAddMonthsMonotoneOverMonths(t *testing.T) {
	// Adding more months never moves the result earlier.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		cv := Civil{
			Year:  1900 + rng.Intn(300),
			Month: 1 + rng.Intn(12),
			Day:   1 + rng.Intn(28),
		}
		n := rng.Intn(50)
		a := cv.AddMonths(n).Chronon()
		b := cv.AddMonths(n + 1).Chronon()
		if b <= a {
			t.Fatalf("AddMonths not monotone at %v + %d", cv, n)
		}
	}
}

func TestDateHelpers(t *testing.T) {
	if Date(1970, 1, 2) != 86400 {
		t.Error("Date(1970,1,2) wrong")
	}
	if DateTime(1970, 1, 1, 0, 0, 5) != 5 {
		t.Error("DateTime wrong")
	}
}

func TestParseCivil(t *testing.T) {
	cases := []struct {
		in   string
		want Civil
	}{
		{"1992-02-29", Civil{Year: 1992, Month: 2, Day: 29}},
		{"1970-01-01 00:00:00", Civil{Year: 1970, Month: 1, Day: 1}},
		{"2026-07-06T12:30:45", Civil{Year: 2026, Month: 7, Day: 6, Hour: 12, Minute: 30, Second: 45}},
	}
	for _, c := range cases {
		got, err := ParseCivil(c.in)
		if err != nil {
			t.Errorf("ParseCivil(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseCivil(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "1991-02-29", "1991-13-01", "1991-01-01x00:00:00", "1991-1-1", "1991-01-01 25:00:00"} {
		if _, err := ParseCivil(bad); err == nil {
			t.Errorf("ParseCivil(%q) succeeded, want error", bad)
		}
	}
}

func TestCivilString(t *testing.T) {
	cv := Civil{Year: 1992, Month: 2, Day: 3, Hour: 4, Minute: 5, Second: 6}
	if got := cv.String(); got != "1992-02-03 04:05:06" {
		t.Errorf("String = %q", got)
	}
}
