package chronon

import "testing"

// FuzzParseDuration checks that the duration parser never panics and that
// whatever it accepts round-trips through String.
func FuzzParseDuration(f *testing.F) {
	for _, seed := range []string{
		"30s", "1mo2d", "-1m30s", "1mo-86400s", "2y", "0s", "", "-",
		"9999999999999999999s", "1h30m", "5x", "1d-1mo", "mo", "--3s",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseDuration(s)
		if err != nil {
			return
		}
		again, err := ParseDuration(d.String())
		if err != nil {
			t.Fatalf("rendering of parsed %q does not re-parse: %q: %v", s, d.String(), err)
		}
		if again != d {
			t.Fatalf("round trip drift: %q -> %+v -> %q -> %+v", s, d, d.String(), again)
		}
	})
}

// FuzzParseCivil checks the date-time parser never panics and accepted
// values are valid calendar dates that round-trip through the chronon
// conversion.
func FuzzParseCivil(f *testing.F) {
	for _, seed := range []string{
		"1992-02-29", "1970-01-01 00:00:00", "2026-07-06T12:30:45",
		"0000-01-01", "9999-12-31 23:59:59", "1991-02-29", "x", "1991-1-1",
		"1991-01-01 24:00:00", "-991-01-01",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		cv, err := ParseCivil(s)
		if err != nil {
			return
		}
		if !cv.Valid() {
			t.Fatalf("ParseCivil(%q) accepted invalid %+v", s, cv)
		}
		back := cv.Chronon().Civil()
		if back != cv {
			t.Fatalf("calendar round trip drift: %+v vs %+v", cv, back)
		}
	})
}

// FuzzParseGranularity checks the granularity parser never panics and only
// produces valid granularities.
func FuzzParseGranularity(f *testing.F) {
	for _, seed := range []string{"second", "15s", "day", "", "0s", "-3s", "week"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		g, err := ParseGranularity(s)
		if err != nil {
			return
		}
		if !g.Valid() {
			t.Fatalf("ParseGranularity(%q) = %d invalid", s, g)
		}
	})
}
