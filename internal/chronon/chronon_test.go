package chronon

import (
	"testing"
	"testing/quick"
)

func TestChrononCompare(t *testing.T) {
	cases := []struct {
		a, b Chronon
		want int
	}{
		{0, 0, 0},
		{1, 2, -1},
		{2, 1, 1},
		{MinChronon, MaxChronon, -1},
		{MaxChronon, MinChronon, 1},
		{Forever, MaxChronon, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.a.Before(c.b); got != (c.want < 0) {
			t.Errorf("Before(%d, %d) = %v, want %v", c.a, c.b, got, c.want < 0)
		}
		if got := c.a.After(c.b); got != (c.want > 0) {
			t.Errorf("After(%d, %d) = %v, want %v", c.a, c.b, got, c.want > 0)
		}
	}
}

func TestChrononAddSaturates(t *testing.T) {
	if got := MaxChronon.Add(1); got != MaxChronon {
		t.Errorf("MaxChronon.Add(1) = %d, want saturation", got)
	}
	if got := MinChronon.Add(-1); got != MinChronon {
		t.Errorf("MinChronon.Add(-1) = %d, want saturation", got)
	}
	if got := Chronon(5).Add(1 << 62); got != MaxChronon {
		t.Errorf("overflow add = %d, want MaxChronon", got)
	}
	if got := Chronon(-5).Add(-(1 << 62)); got != MinChronon {
		t.Errorf("underflow add = %d, want MinChronon", got)
	}
	if got := Chronon(10).Add(-3); got != 7 {
		t.Errorf("10.Add(-3) = %d, want 7", got)
	}
}

func TestChrononSub(t *testing.T) {
	if got := Chronon(10).Sub(3); got != 7 {
		t.Errorf("Sub = %d, want 7", got)
	}
	if got := Chronon(3).Sub(10); got != -7 {
		t.Errorf("Sub = %d, want -7", got)
	}
}

func TestMinMax(t *testing.T) {
	if got := Min(3, 5); got != 3 {
		t.Errorf("Min = %d", got)
	}
	if got := Min(5, 3); got != 3 {
		t.Errorf("Min = %d", got)
	}
	if got := Max(3, 5); got != 5 {
		t.Errorf("Max = %d", got)
	}
	if got := Max(5, 3); got != 5 {
		t.Errorf("Max = %d", got)
	}
}

func TestGranularityTruncate(t *testing.T) {
	cases := []struct {
		g    Granularity
		c    Chronon
		want Chronon
	}{
		{Second, 12345, 12345},
		{Minute, 125, 120},
		{Minute, 120, 120},
		{Minute, -1, -60},
		{Minute, -60, -60},
		{Minute, -61, -120},
		{Hour, 7199, 3600},
		{Day, 86399, 0},
		{Day, 86400, 86400},
	}
	for _, c := range cases {
		if got := c.g.Truncate(c.c); got != c.want {
			t.Errorf("%v.Truncate(%d) = %d, want %d", c.g, c.c, got, c.want)
		}
	}
}

func TestGranularityTruncateDistinguished(t *testing.T) {
	for _, c := range []Chronon{MinChronon, MaxChronon} {
		if got := Hour.Truncate(c); got != c {
			t.Errorf("Truncate(%v) = %v, want unchanged", c, got)
		}
		if got := Hour.Ceil(c); got != c {
			t.Errorf("Ceil(%v) = %v, want unchanged", c, got)
		}
	}
}

func TestGranularityCeil(t *testing.T) {
	if got := Minute.Ceil(125); got != 180 {
		t.Errorf("Ceil(125) = %d, want 180", got)
	}
	if got := Minute.Ceil(120); got != 120 {
		t.Errorf("Ceil(120) = %d, want 120", got)
	}
	if got := Minute.Ceil(-61); got != -60 {
		t.Errorf("Ceil(-61) = %d, want -60", got)
	}
}

func TestGranularitySameTick(t *testing.T) {
	if !Minute.SameTick(120, 179) {
		t.Error("120 and 179 should share a minute tick")
	}
	if Minute.SameTick(119, 120) {
		t.Error("119 and 120 should not share a minute tick")
	}
	if !Second.SameTick(5, 5) {
		t.Error("equal chronons share every tick")
	}
}

func TestGranularityTruncateIdempotent(t *testing.T) {
	f := func(c int64, graw uint8) bool {
		g := Granularity(int64(graw)%3600 + 1)
		cc := Chronon(c % (1 << 40))
		t1 := g.Truncate(cc)
		return g.Truncate(t1) == t1 && t1 <= cc && cc.Sub(t1) < int64(g)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseGranularity(t *testing.T) {
	cases := []struct {
		in   string
		want Granularity
	}{
		{"second", Second}, {"s", Second}, {"minute", Minute},
		{"hour", Hour}, {"day", Day}, {"week", Week}, {"15s", 15},
		{" Day ", Day},
	}
	for _, c := range cases {
		got, err := ParseGranularity(c.in)
		if err != nil {
			t.Errorf("ParseGranularity(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseGranularity(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "zero", "-5s", "0s"} {
		if _, err := ParseGranularity(bad); err == nil {
			t.Errorf("ParseGranularity(%q) succeeded, want error", bad)
		}
	}
}

func TestGranularityString(t *testing.T) {
	if Minute.String() != "minute" {
		t.Errorf("Minute.String() = %q", Minute.String())
	}
	if Granularity(15).String() != "15s" {
		t.Errorf("15s granularity prints %q", Granularity(15).String())
	}
}

func TestChrononString(t *testing.T) {
	if MaxChronon.String() != "forever" {
		t.Errorf("MaxChronon.String() = %q", MaxChronon.String())
	}
	if MinChronon.String() != "beginning" {
		t.Errorf("MinChronon.String() = %q", MinChronon.String())
	}
	if got := Epoch.String(); got != "1970-01-01 00:00:00" {
		t.Errorf("Epoch.String() = %q", got)
	}
}
