package chronon

import (
	"fmt"
	"strconv"
	"strings"
)

// Duration is a span of time used as a bound (Δt) in the bounded, delayed,
// and early specializations of §3.1 and as the time unit of the regularity
// specializations of §3.2/§3.3. A duration is either fixed in length
// (a number of seconds) or calendric-specific (a number of months, which
// covers a varying number of days depending on the anchor date), or a sum of
// both, e.g. "1 month and 2 days".
//
// The zero Duration is the empty span (Δt = 0), which the paper permits for
// the ≥-bounded specializations (Δt ≥ 0).
type Duration struct {
	Seconds int64 // fixed component
	Months  int64 // calendric component
}

// Convenience constructors for common durations.
func Seconds(n int64) Duration { return Duration{Seconds: n} }
func Minutes(n int64) Duration { return Duration{Seconds: n * 60} }
func Hours(n int64) Duration   { return Duration{Seconds: n * 3600} }
func Days(n int64) Duration    { return Duration{Seconds: n * 86400} }
func Weeks(n int64) Duration   { return Duration{Seconds: n * 7 * 86400} }
func Months(n int64) Duration  { return Duration{Months: n} }
func Years(n int64) Duration   { return Duration{Months: 12 * n} }

// IsZero reports whether d is the empty span.
func (d Duration) IsZero() bool { return d.Seconds == 0 && d.Months == 0 }

// IsCalendric reports whether d has a calendar-dependent component (so its
// length in seconds varies with the anchor chronon).
func (d Duration) IsCalendric() bool { return d.Months != 0 }

// IsFixed reports whether d has a fixed length in seconds.
func (d Duration) IsFixed() bool { return d.Months == 0 }

// Negative reports whether d is a strictly negative span when anchored
// anywhere (both components non-positive and at least one negative).
func (d Duration) Negative() bool {
	return (d.Seconds < 0 || d.Months < 0) && d.Seconds <= 0 && d.Months <= 0
}

// Neg returns the negated duration.
func (d Duration) Neg() Duration { return Duration{Seconds: -d.Seconds, Months: -d.Months} }

// Plus returns the component-wise sum of d and e.
func (d Duration) Plus(e Duration) Duration {
	return Duration{Seconds: d.Seconds + e.Seconds, Months: d.Months + e.Months}
}

// AddTo returns the chronon d after c: calendric months are applied first
// via civil-calendar arithmetic (with day-of-month clamping), then the fixed
// seconds. Distinguished chronons are absorbing.
func (d Duration) AddTo(c Chronon) Chronon {
	if c == MinChronon || c == MaxChronon {
		return c
	}
	if d.Months != 0 {
		c = c.Civil().AddMonths(int(d.Months)).Chronon()
	}
	return c.Add(d.Seconds)
}

// SubFrom returns the chronon d before c. Note that for calendric durations
// SubFrom is not in general the inverse of AddTo (adding one month to
// January 31 gives February 28; subtracting one month from February 28 gives
// January 28) — exactly the calendar behaviour the paper flags for
// calendric-specific bounds.
func (d Duration) SubFrom(c Chronon) Chronon { return d.Neg().AddTo(c) }

// FixedSeconds returns the length of the duration in seconds and whether the
// duration is fixed. Calendric durations return ok=false because their
// length depends on the anchor.
func (d Duration) FixedSeconds() (secs int64, ok bool) {
	if d.Months != 0 {
		return 0, false
	}
	return d.Seconds, true
}

// Compare orders two fixed durations. It panics if either is calendric,
// since calendric durations are not totally ordered without an anchor.
func (d Duration) Compare(e Duration) int {
	if d.Months != 0 || e.Months != 0 {
		panic("chronon: Compare on calendric duration")
	}
	switch {
	case d.Seconds < e.Seconds:
		return -1
	case d.Seconds > e.Seconds:
		return 1
	}
	return 0
}

// String renders the duration compactly, e.g. "30s", "2d", "1mo2d", "1mo",
// "0s". A uniformly negative duration prints with a single leading minus
// ("-1m30s"); a mixed-sign duration prints its negative component with its
// own sign ("1mo-86400s"). Every rendering parses back with ParseDuration.
func (d Duration) String() string {
	if d.IsZero() {
		return "0s"
	}
	if d.Seconds <= 0 && d.Months <= 0 {
		return "-" + d.Neg().String()
	}
	var b strings.Builder
	writeMonths := func() {
		switch {
		case d.Months == 0:
		case d.Months%12 == 0:
			fmt.Fprintf(&b, "%dy", d.Months/12)
		default:
			fmt.Fprintf(&b, "%dmo", d.Months)
		}
	}
	writeSecs := func() {
		s := d.Seconds
		if s == 0 {
			return
		}
		if s < 0 {
			// A negative seconds component in a mixed-sign duration prints
			// as a single signed term so it parses back unambiguously.
			fmt.Fprintf(&b, "-%ds", -s)
			return
		}
		write := func(n int64, unit string) {
			if n != 0 {
				fmt.Fprintf(&b, "%d%s", n, unit)
			}
		}
		write(s/86400, "d")
		s %= 86400
		write(s/3600, "h")
		s %= 3600
		write(s/60, "m")
		write(s%60, "s")
	}
	if d.Months < 0 {
		writeSecs()
		writeMonths()
	} else {
		writeMonths()
		writeSecs()
	}
	return b.String()
}

// ParseDuration parses a compact duration such as "30s", "5m", "2h", "3d",
// "1w", "1mo", "2y", or a concatenation like "1mo2d". A leading '-' negates
// the whole duration.
func ParseDuration(s string) (Duration, error) {
	orig := s
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	if s == "" {
		return Duration{}, fmt.Errorf("chronon: empty duration")
	}
	var d Duration
	for len(s) > 0 {
		sign := int64(1)
		if s[0] == '-' {
			sign = -1
			s = s[1:]
			if s == "" {
				return Duration{}, fmt.Errorf("chronon: invalid duration %q", orig)
			}
		}
		i := 0
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
		if i == 0 {
			return Duration{}, fmt.Errorf("chronon: invalid duration %q", orig)
		}
		n, err := strconv.ParseInt(s[:i], 10, 64)
		if err != nil {
			return Duration{}, fmt.Errorf("chronon: invalid duration %q: %v", orig, err)
		}
		n *= sign
		s = s[i:]
		j := 0
		for j < len(s) && (s[j] < '0' || s[j] > '9') && s[j] != '-' {
			j++
		}
		unit := s[:j]
		s = s[j:]
		switch unit {
		case "s", "sec", "second", "seconds":
			d.Seconds += n
		case "m", "min", "minute", "minutes":
			d.Seconds += n * 60
		case "h", "hr", "hour", "hours":
			d.Seconds += n * 3600
		case "d", "day", "days":
			d.Seconds += n * 86400
		case "w", "week", "weeks":
			d.Seconds += n * 7 * 86400
		case "mo", "month", "months":
			d.Months += n
		case "y", "yr", "year", "years":
			d.Months += 12 * n
		default:
			return Duration{}, fmt.Errorf("chronon: unknown duration unit %q in %q", unit, orig)
		}
	}
	if neg {
		d = d.Neg()
	}
	return d, nil
}

// GCD returns the greatest common divisor of two non-negative second counts,
// with GCD(0, n) = n. It underlies the paper's claim (§3.2) that a relation
// which is transaction-time event regular with unit Δt₁ and valid-time event
// regular with unit Δt₂ is temporal event regular with unit gcd(Δt₁, Δt₂):
// e.g. Δt₁ = 28 s and Δt₂ = 6 s give a temporal unit of 2 s.
func GCD(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GCDDuration returns the greatest common divisor of two fixed durations.
// It returns ok=false if either duration is calendric, since calendric
// units have no fixed divisor structure.
func GCDDuration(a, b Duration) (Duration, bool) {
	as, aok := a.FixedSeconds()
	bs, bok := b.FixedSeconds()
	if !aok || !bok {
		return Duration{}, false
	}
	return Seconds(GCD(as, bs)), true
}
