package chronon

import (
	"testing"
	"testing/quick"
)

func TestDurationConstructors(t *testing.T) {
	cases := []struct {
		d    Duration
		want Duration
	}{
		{Seconds(30), Duration{Seconds: 30}},
		{Minutes(2), Duration{Seconds: 120}},
		{Hours(1), Duration{Seconds: 3600}},
		{Days(1), Duration{Seconds: 86400}},
		{Weeks(1), Duration{Seconds: 604800}},
		{Months(3), Duration{Months: 3}},
		{Years(2), Duration{Months: 24}},
	}
	for _, c := range cases {
		if c.d != c.want {
			t.Errorf("got %+v, want %+v", c.d, c.want)
		}
	}
}

func TestDurationPredicates(t *testing.T) {
	if !(Duration{}).IsZero() {
		t.Error("zero duration should be zero")
	}
	if Seconds(1).IsZero() {
		t.Error("1s should not be zero")
	}
	if !Months(1).IsCalendric() || Months(1).IsFixed() {
		t.Error("1mo should be calendric, not fixed")
	}
	if Seconds(5).IsCalendric() || !Seconds(5).IsFixed() {
		t.Error("5s should be fixed")
	}
	if !Seconds(-1).Negative() {
		t.Error("-1s should be negative")
	}
	if Seconds(1).Negative() || (Duration{}).Negative() {
		t.Error("non-negative durations misreported")
	}
	if (Duration{Seconds: -1, Months: 1}).Negative() {
		t.Error("mixed-sign duration is not definitely negative")
	}
}

func TestDurationAddTo(t *testing.T) {
	base := Date(1992, 1, 31)
	if got := Months(1).AddTo(base); got != Date(1992, 2, 29) {
		t.Errorf("Jan 31 1992 + 1mo = %v, want Feb 29", got.Civil())
	}
	if got := Seconds(30).AddTo(100); got != 130 {
		t.Errorf("100 + 30s = %d", got)
	}
	mixed := Duration{Months: 1, Seconds: 86400}
	if got := mixed.AddTo(Date(1991, 1, 31)); got != Date(1991, 3, 1) {
		t.Errorf("Jan 31 1991 + 1mo1d = %v, want Mar 1", got.Civil())
	}
}

func TestDurationAddToDistinguished(t *testing.T) {
	if Months(5).AddTo(MaxChronon) != MaxChronon {
		t.Error("forever should absorb duration addition")
	}
	if Seconds(-5).AddTo(MinChronon) != MinChronon {
		t.Error("beginning should absorb duration addition")
	}
}

func TestDurationSubFromAsymmetry(t *testing.T) {
	// The calendar makes SubFrom a non-inverse of AddTo.
	feb28 := Date(1991, 2, 28)
	if got := Months(1).AddTo(Date(1991, 1, 31)); got != feb28 {
		t.Fatalf("Jan 31 + 1mo = %v", got.Civil())
	}
	if got := Months(1).SubFrom(feb28); got != Date(1991, 1, 28) {
		t.Errorf("Feb 28 - 1mo = %v, want Jan 28", got.Civil())
	}
}

func TestDurationPlusNeg(t *testing.T) {
	d := Seconds(10).Plus(Months(2))
	if d.Seconds != 10 || d.Months != 2 {
		t.Errorf("Plus = %+v", d)
	}
	n := d.Neg()
	if n.Seconds != -10 || n.Months != -2 {
		t.Errorf("Neg = %+v", n)
	}
}

func TestDurationFixedSeconds(t *testing.T) {
	if s, ok := Seconds(45).FixedSeconds(); !ok || s != 45 {
		t.Errorf("FixedSeconds = %d, %v", s, ok)
	}
	if _, ok := Months(1).FixedSeconds(); ok {
		t.Error("calendric duration reported fixed")
	}
}

func TestDurationCompare(t *testing.T) {
	if Seconds(1).Compare(Seconds(2)) != -1 {
		t.Error("1s < 2s")
	}
	if Seconds(2).Compare(Seconds(1)) != 1 {
		t.Error("2s > 1s")
	}
	if Seconds(2).Compare(Seconds(2)) != 0 {
		t.Error("2s == 2s")
	}
	defer func() {
		if recover() == nil {
			t.Error("Compare on calendric duration should panic")
		}
	}()
	Months(1).Compare(Seconds(1))
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{Duration{}, "0s"},
		{Seconds(30), "30s"},
		{Seconds(90), "1m30s"},
		{Hours(25), "1d1h"},
		{Months(1), "1mo"},
		{Years(2), "2y"},
		{Duration{Months: 1, Seconds: 86400}, "1mo1d"},
		{Seconds(-90), "-1m30s"},
		{Duration{Months: 1, Seconds: -86400}, "1mo-86400s"},
		{Duration{Months: -1, Seconds: 86400}, "1d-1mo"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want Duration
	}{
		{"30s", Seconds(30)},
		{"5m", Minutes(5)},
		{"2h", Hours(2)},
		{"3d", Days(3)},
		{"1w", Weeks(1)},
		{"1mo", Months(1)},
		{"2y", Years(2)},
		{"1mo2d", Duration{Months: 1, Seconds: 2 * 86400}},
		{"-30s", Seconds(-30)},
		{"1mo-86400s", Duration{Months: 1, Seconds: -86400}},
		{"1d-1mo", Duration{Months: -1, Seconds: 86400}},
		{"-1mo", Months(-1)},
		{"1h30m", Seconds(5400)},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if err != nil {
			t.Errorf("ParseDuration(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseDuration(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "-", "s", "5x", "5", "mo5"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q) succeeded, want error", bad)
		}
	}
}

func TestParseDurationRoundTrip(t *testing.T) {
	f := func(secs int32, months int8) bool {
		d := Duration{Seconds: int64(secs), Months: int64(months)}
		parsed, err := ParseDuration(d.String())
		return err == nil && parsed == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{28, 6, 2}, // the paper's §3.2 example: Δt₁=28s, Δt₂=6s ⇒ 2s
		{6, 28, 2},
		{0, 5, 5},
		{5, 0, 5},
		{0, 0, 0},
		{-28, 6, 2},
		{7, 13, 1},
		{12, 18, 6},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGCDProperties(t *testing.T) {
	f := func(a, b int32) bool {
		g := GCD(int64(a), int64(b))
		if a == 0 && b == 0 {
			return g == 0
		}
		if g <= 0 {
			return false
		}
		return int64(a)%g == 0 && int64(b)%g == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGCDDuration(t *testing.T) {
	if d, ok := GCDDuration(Seconds(28), Seconds(6)); !ok || d != Seconds(2) {
		t.Errorf("GCDDuration = %v, %v", d, ok)
	}
	if _, ok := GCDDuration(Months(1), Seconds(6)); ok {
		t.Error("calendric GCD should fail")
	}
	if _, ok := GCDDuration(Seconds(6), Months(1)); ok {
		t.Error("calendric GCD should fail")
	}
}
