// Package chronon implements the totally ordered time domain underlying
// both valid time and transaction time in a temporal relation.
//
// The paper (Jensen & Snodgrass, "Temporal Specialization", ICDE 1992, §3)
// assumes that valid and transaction time-stamps are drawn from the same
// totally ordered domain so that they can be compared. This package provides
// that domain: a Chronon is an indivisible tick on a discrete time line,
// measured in seconds from the epoch 1970-01-01T00:00:00 on the proleptic
// Gregorian calendar. Coarser granularities (minute, hour, day, ...) are
// obtained by truncation, mirroring the paper's per-relation time-stamp
// granularity (§2).
//
// Durations may be fixed in length (e.g. 30 seconds) or calendric-specific
// (e.g. one month, which covers 28-31 days depending on the anchor date), as
// required by the bounded, delayed, and early specializations of §3.1.
package chronon

import (
	"fmt"
	"strconv"
	"strings"
)

// Chronon is a point on the discrete time line: a count of seconds since the
// epoch 1970-01-01T00:00:00 (proleptic Gregorian, no time zones or leap
// seconds). Chronons are comparable with the ordinary integer ordering, which
// is exactly the total order the paper requires of the shared time domain.
type Chronon int64

// Distinguished chronons. MinChronon and MaxChronon bound the representable
// time line; MaxChronon doubles as the "until changed" marker for the
// transaction-time end of elements that are still current (the existence
// interval [tt⊢, tt⊣) of a live element has tt⊣ = Forever).
const (
	MinChronon Chronon = -1 << 62
	MaxChronon Chronon = 1<<62 - 1

	// Forever is the transaction-time end of an element that has not been
	// logically deleted.
	Forever = MaxChronon

	// Epoch is the origin of the time line, 1970-01-01T00:00:00.
	Epoch Chronon = 0
)

// Before reports whether c precedes d.
func (c Chronon) Before(d Chronon) bool { return c < d }

// After reports whether c follows d.
func (c Chronon) After(d Chronon) bool { return c > d }

// Compare returns -1, 0, or +1 according to whether c is before, equal to,
// or after d.
func (c Chronon) Compare(d Chronon) int {
	switch {
	case c < d:
		return -1
	case c > d:
		return 1
	}
	return 0
}

// Add returns the chronon s seconds after c, saturating at the domain
// bounds rather than wrapping around.
func (c Chronon) Add(s int64) Chronon {
	r := int64(c) + s
	switch {
	case s > 0 && r < int64(c):
		return MaxChronon
	case s < 0 && r > int64(c):
		return MinChronon
	case r > int64(MaxChronon):
		return MaxChronon
	case r < int64(MinChronon):
		return MinChronon
	}
	return Chronon(r)
}

// Sub returns the number of seconds from d to c (c - d).
func (c Chronon) Sub(d Chronon) int64 { return int64(c) - int64(d) }

// String renders the chronon as a calendar date-time, except for the
// distinguished values which print symbolically.
func (c Chronon) String() string {
	switch c {
	case MaxChronon:
		return "forever"
	case MinChronon:
		return "beginning"
	}
	return c.Civil().String()
}

// Min returns the earlier of c and d.
func Min(c, d Chronon) Chronon {
	if c < d {
		return c
	}
	return d
}

// Max returns the later of c and d.
func Max(c, d Chronon) Chronon {
	if c > d {
		return c
	}
	return d
}

// Granularity is the tick length, in seconds, at which a relation quantizes
// its time-stamps. The paper allows each relation an individual valid
// time-stamp granularity (§2); the degenerate specialization (§3.1) is
// defined "within the selected granularity".
//
// Only fixed-length granularities are representable; calendric units such as
// months are durations (see Duration), not granularities, because a
// granularity must tile the time line evenly.
type Granularity int64

// Named granularities.
const (
	Second Granularity = 1
	Minute Granularity = 60
	Hour   Granularity = 3600
	Day    Granularity = 86400
	Week   Granularity = 7 * 86400
)

// Valid reports whether g is a usable granularity (a positive tick length).
func (g Granularity) Valid() bool { return g > 0 }

// Truncate rounds c down to the start of its tick at granularity g.
// Truncation floors toward -infinity so that pre-epoch chronons quantize
// consistently with post-epoch ones. Distinguished chronons pass through
// unchanged.
func (g Granularity) Truncate(c Chronon) Chronon {
	if !g.Valid() || c == MinChronon || c == MaxChronon {
		return c
	}
	n := int64(c)
	m := n % int64(g)
	if m < 0 {
		m += int64(g)
	}
	return Chronon(n - m)
}

// Ceil rounds c up to the next tick boundary at granularity g (c itself if
// already on a boundary).
func (g Granularity) Ceil(c Chronon) Chronon {
	t := g.Truncate(c)
	if t == c || c == MinChronon || c == MaxChronon {
		return c
	}
	return t.Add(int64(g))
}

// SameTick reports whether c and d fall in the same tick at granularity g.
// This is the equality the degenerate specialization uses: transaction and
// valid time are "identical (within the selected granularity)".
func (g Granularity) SameTick(c, d Chronon) bool {
	return g.Truncate(c) == g.Truncate(d)
}

// String names the granularity.
func (g Granularity) String() string {
	switch g {
	case Second:
		return "second"
	case Minute:
		return "minute"
	case Hour:
		return "hour"
	case Day:
		return "day"
	case Week:
		return "week"
	}
	return fmt.Sprintf("%ds", int64(g))
}

// ParseGranularity parses a granularity name ("second", "minute", "hour",
// "day", "week") or a literal tick length such as "15s".
func ParseGranularity(s string) (Granularity, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "second", "sec", "s":
		return Second, nil
	case "minute", "min":
		return Minute, nil
	case "hour", "hr", "h":
		return Hour, nil
	case "day", "d":
		return Day, nil
	case "week", "w":
		return Week, nil
	}
	t := strings.TrimSuffix(strings.TrimSpace(s), "s")
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("chronon: invalid granularity %q", s)
	}
	return Granularity(n), nil
}
