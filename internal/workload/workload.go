// Package workload generates deterministic synthetic workloads for the
// motivating applications of the paper — process monitoring, direct-deposit
// payroll, accounting, order entry, employee assignments, and archaeology —
// plus parameterized generators covering every isolated-event region of
// Figure 1. The paper has no published traces (it has no evaluation at
// all), so these seeded generators are the substitution: each produces
// exactly the joint (tt, vt) distribution its specialization describes,
// which is all the definitions depend on.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/chronon"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/surrogate"
	"repro/internal/tx"
)

// Config parameterizes a generator.
type Config struct {
	Seed  int64           // PRNG seed; equal seeds give equal workloads
	N     int             // number of insert transactions
	Start chronon.Chronon // clock origin (first tt is Start + Step)
	Step  int64           // seconds between transactions (> 0)
}

func (c Config) normalize() Config {
	if c.N <= 0 {
		c.N = 1000
	}
	if c.Step <= 0 {
		c.Step = 60
	}
	return c
}

func (c Config) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

// EventStamps generates n stamps lying inside the Figure 1 region of the
// given isolated-event class, with representative bounds: Δt = 30s for the
// inner bound and Δt₂ = 300s for the outer. Transaction times advance by
// Step per element. It panics on non-event classes, which is a programming
// error.
func EventStamps(class core.Class, cfg Config) []core.Stamp {
	cfg = cfg.normalize()
	rng := cfg.rng()
	out := make([]core.Stamp, 0, cfg.N)
	const inner, outer = 30, 300
	for i := 0; i < cfg.N; i++ {
		tt := cfg.Start.Add(int64(i+1) * cfg.Step)
		var off int64
		switch class {
		case core.General:
			off = rng.Int63n(2*outer+1) - outer
		case core.Retroactive:
			off = -rng.Int63n(outer + 1)
		case core.DelayedRetroactive:
			off = -inner - rng.Int63n(outer-inner+1)
		case core.Predictive:
			off = rng.Int63n(outer + 1)
		case core.EarlyPredictive:
			off = inner + rng.Int63n(outer-inner+1)
		case core.RetroactivelyBounded:
			off = rng.Int63n(inner+outer+1) - inner
		case core.StronglyRetroactivelyBounded:
			off = -rng.Int63n(inner + 1)
		case core.DelayedStronglyRetroactivelyBounded:
			off = -inner - rng.Int63n(outer-inner+1)
		case core.PredictivelyBounded:
			off = inner - rng.Int63n(inner+outer+1)
		case core.StronglyPredictivelyBounded:
			off = rng.Int63n(inner + 1)
		case core.EarlyStronglyPredictivelyBounded:
			off = inner + rng.Int63n(outer-inner+1)
		case core.StronglyBounded:
			off = rng.Int63n(2*inner+1) - inner
		case core.Degenerate:
			off = 0
		default:
			panic(fmt.Sprintf("workload: %v is not an isolated-event class", class))
		}
		out = append(out, core.Stamp{TT: tt, VT: tt.Add(off)})
	}
	return out
}

// Bounds returns the representative bounds EventStamps generates within,
// for building the matching EventSpec.
func Bounds() (inner, outer chronon.Duration) {
	return chronon.Seconds(30), chronon.Seconds(300)
}

func eventSchema(name string) relation.Schema {
	return relation.Schema{
		Name:        name,
		ValidTime:   element.EventStamp,
		Granularity: chronon.Second,
		Invariant:   []relation.Column{{Name: "id", Type: element.KindString}},
		Varying:     []relation.Column{{Name: "value", Type: element.KindFloat}},
	}
}

// Monitoring builds the chemical-plant relation of §1 and §3.1:
// temperatures sampled periodically and stored after a transmission delay
// that always exceeds 30 seconds (delayed retroactive) but never 300
// (delayed strongly retroactively bounded), with enforcement attached.
func Monitoring(cfg Config) (*relation.Relation, error) {
	cfg = cfg.normalize()
	if cfg.Step <= 301 {
		cfg.Step = 360 // keep samples sequential despite the delay spread
	}
	rng := cfg.rng()
	r := relation.New(eventSchema("plant_temps"), tx.NewLogicalClock(cfg.Start, cfg.Step))
	spec, err := core.DelayedStronglyRetroactivelyBoundedSpec(chronon.Seconds(30), chronon.Seconds(300))
	if err != nil {
		return nil, err
	}
	constraint.Attach(r, constraint.PerRelation,
		constraint.Event{Spec: spec},
		constraint.InterEvent{Spec: core.SequentialEventsSpec()},
	)
	sensor := r.NewObject()
	next := cfg.Start
	for i := 0; i < cfg.N; i++ {
		next = next.Add(cfg.Step)
		delay := 31 + rng.Int63n(269)
		if _, err := r.Insert(relation.Insertion{
			Object:    sensor,
			VT:        element.EventAt(next.Add(-delay)),
			Invariant: []element.Value{element.String_("reactor-1")},
			Varying:   []element.Value{element.Float(20 + rng.Float64()*10)},
		}); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Payroll builds the direct-deposit relation of §3.1: checks recorded at
// least three days and at most one week before they become valid (early
// strongly predictively bounded).
func Payroll(cfg Config) (*relation.Relation, error) {
	cfg = cfg.normalize()
	rng := cfg.rng()
	day := int64(86400)
	r := relation.New(eventSchema("payroll"), tx.NewLogicalClock(cfg.Start, cfg.Step))
	spec, err := core.EarlyStronglyPredictivelyBoundedSpec(chronon.Days(3), chronon.Days(7))
	if err != nil {
		return nil, err
	}
	constraint.Attach(r, constraint.PerRelation, constraint.Event{Spec: spec})
	emp := r.NewObject()
	next := cfg.Start
	for i := 0; i < cfg.N; i++ {
		next = next.Add(cfg.Step)
		lead := 3*day + rng.Int63n(4*day+1)
		if _, err := r.Insert(relation.Insertion{
			Object:    emp,
			VT:        element.EventAt(next.Add(lead)),
			Invariant: []element.Value{element.String_(fmt.Sprintf("acct-%d", i%100))},
			Varying:   []element.Value{element.Float(1000 + rng.Float64()*4000)},
		}); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Accounting builds the §3.1 accounting relation: only the current month's
// transactions, with corrections to the recent past entered as compensating
// entries and near-future entries allowed (strongly bounded).
func Accounting(cfg Config) (*relation.Relation, error) {
	cfg = cfg.normalize()
	rng := cfg.rng()
	day := int64(86400)
	r := relation.New(eventSchema("ledger"), tx.NewLogicalClock(cfg.Start, cfg.Step))
	spec, err := core.StronglyBoundedSpec(chronon.Days(31), chronon.Days(31))
	if err != nil {
		return nil, err
	}
	constraint.Attach(r, constraint.PerRelation, constraint.Event{Spec: spec})
	book := r.NewObject()
	next := cfg.Start
	for i := 0; i < cfg.N; i++ {
		next = next.Add(cfg.Step)
		off := rng.Int63n(2*31*day+1) - 31*day
		if _, err := r.Insert(relation.Insertion{
			Object:    book,
			VT:        element.EventAt(next.Add(off)),
			Invariant: []element.Value{element.String_(fmt.Sprintf("entry-%d", i))},
			Varying:   []element.Value{element.Float(rng.Float64()*1e4 - 5e3)},
		}); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Orders builds the §3.1 order relation: filled past orders alongside
// pending orders constrained by company policy to at most 30 days in the
// future (predictively bounded).
func Orders(cfg Config) (*relation.Relation, error) {
	cfg = cfg.normalize()
	rng := cfg.rng()
	day := int64(86400)
	r := relation.New(eventSchema("orders"), tx.NewLogicalClock(cfg.Start, cfg.Step))
	spec, err := core.PredictivelyBoundedSpec(chronon.Days(30))
	if err != nil {
		return nil, err
	}
	constraint.Attach(r, constraint.PerRelation, constraint.Event{Spec: spec})
	next := cfg.Start
	for i := 0; i < cfg.N; i++ {
		next = next.Add(cfg.Step)
		// Two-thirds past orders, one-third pending.
		var off int64
		if rng.Intn(3) < 2 {
			off = -rng.Int63n(90 * day)
		} else {
			off = rng.Int63n(30*day + 1)
		}
		if _, err := r.Insert(relation.Insertion{
			VT:        element.EventAt(next.Add(off)),
			Invariant: []element.Value{element.String_(fmt.Sprintf("order-%d", i))},
			Varying:   []element.Value{element.Float(rng.Float64() * 1e3)},
		}); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func intervalSchema(name string) relation.Schema {
	return relation.Schema{
		Name:        name,
		ValidTime:   element.IntervalStamp,
		Granularity: chronon.Second,
		Invariant:   []relation.Column{{Name: "emp", Type: element.KindString}},
		Varying:     []relation.Column{{Name: "project", Type: element.KindString}},
	}
}

// Assignments builds the §3.4 weekly-assignments relation: per employee,
// contiguous week-long assignments recorded during the weekend before each
// week commences — per-surrogate contiguous, per-surrogate sequential, and
// strict valid time interval regular. Employees is the number of parallel
// life-lines; N is the number of weeks per employee.
func Assignments(cfg Config, employees int) (*relation.Relation, error) {
	cfg = cfg.normalize()
	if employees <= 0 {
		employees = 3
	}
	rng := cfg.rng()
	week := int64(7 * 86400)
	r := relation.New(intervalSchema("assignments"), tx.NewLogicalClock(cfg.Start, 1))
	vtReg, err := core.StrictVTIntervalRegularSpec(chronon.Weeks(1))
	if err != nil {
		return nil, err
	}
	constraint.Attach(r, constraint.PerPartition,
		constraint.InterInterval{Spec: core.ContiguousSpec()},
	)
	constraint.Attach(r, constraint.PerRelation,
		constraint.IntervalRegular{Spec: vtReg},
	)
	projects := []string{"apollo", "borealis", "cascade", "dune"}
	names := []string{"ann", "bob", "cod", "dee", "eva", "fay", "gus", "hal"}
	type worker struct {
		os   surrogate.Surrogate
		name string
	}
	workers := make([]worker, employees)
	for i := range workers {
		workers[i] = worker{os: r.NewObject(), name: names[i%len(names)]}
	}
	// Week w runs [base + w·week, base + (w+1)·week); assignments for week
	// w are recorded during the preceding weekend, interleaved across
	// employees.
	base := cfg.Start.Add(week)
	for w := 0; w < cfg.N; w++ {
		for _, wk := range workers {
			if _, err := r.Insert(relation.Insertion{
				Object:    wk.os,
				VT:        element.SpanOf(base.Add(int64(w)*week), base.Add(int64(w+1)*week)),
				Invariant: []element.Value{element.String_(wk.name)},
				Varying:   []element.Value{element.String_(projects[rng.Intn(len(projects))])},
			}); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

// Archaeology builds the §3.2 excavation relation: as digging proceeds,
// later transactions record information about progressively earlier
// periods (globally non-increasing).
func Archaeology(cfg Config) (*relation.Relation, error) {
	cfg = cfg.normalize()
	rng := cfg.rng()
	year := int64(365 * 86400)
	r := relation.New(eventSchema("strata"), tx.NewLogicalClock(cfg.Start, cfg.Step))
	constraint.Attach(r, constraint.PerRelation,
		constraint.InterEvent{Spec: core.NonIncreasingEventsSpec()})
	site := r.NewObject()
	// Start a thousand years back and dig further into the past.
	vt := cfg.Start.Add(-1000 * year)
	for i := 0; i < cfg.N; i++ {
		vt = vt.Add(-rng.Int63n(50*year) - 1)
		if _, err := r.Insert(relation.Insertion{
			Object:    site,
			VT:        element.EventAt(vt),
			Invariant: []element.Value{element.String_(fmt.Sprintf("stratum-%d", i))},
			Varying:   []element.Value{element.Float(float64(rng.Intn(100)))},
		}); err != nil {
			return nil, err
		}
	}
	return r, nil
}
