package workload

import (
	"testing"

	"repro/internal/chronon"
	"repro/internal/core"
)

func TestEventStampsSatisfyTheirClass(t *testing.T) {
	inner, outer := Bounds()
	specs := map[core.Class]core.EventSpec{
		core.General:     core.GeneralSpec(),
		core.Retroactive: core.RetroactiveSpec(),
		core.Predictive:  core.PredictiveSpec(),
	}
	must := func(s core.EventSpec, err error) core.EventSpec {
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	specs[core.DelayedRetroactive] = must(core.DelayedRetroactiveSpec(inner))
	specs[core.EarlyPredictive] = must(core.EarlyPredictiveSpec(inner))
	specs[core.RetroactivelyBounded] = must(core.RetroactivelyBoundedSpec(inner))
	specs[core.StronglyRetroactivelyBounded] = must(core.StronglyRetroactivelyBoundedSpec(inner))
	specs[core.DelayedStronglyRetroactivelyBounded] = must(core.DelayedStronglyRetroactivelyBoundedSpec(inner, outer))
	specs[core.PredictivelyBounded] = must(core.PredictivelyBoundedSpec(inner))
	specs[core.StronglyPredictivelyBounded] = must(core.StronglyPredictivelyBoundedSpec(inner))
	specs[core.EarlyStronglyPredictivelyBounded] = must(core.EarlyStronglyPredictivelyBoundedSpec(inner, outer))
	specs[core.StronglyBounded] = must(core.StronglyBoundedSpec(inner, inner))
	specs[core.Degenerate] = must(core.DegenerateSpec(chronon.Second))

	for cls, spec := range specs {
		stamps := EventStamps(cls, Config{Seed: 7, N: 500})
		if len(stamps) != 500 {
			t.Fatalf("%v: %d stamps", cls, len(stamps))
		}
		if err := spec.CheckAll(stamps); err != nil {
			t.Errorf("%v stamps violate their own spec: %v", cls, err)
		}
	}
}

func TestEventStampsDeterministic(t *testing.T) {
	a := EventStamps(core.Retroactive, Config{Seed: 42, N: 50})
	b := EventStamps(core.Retroactive, Config{Seed: 42, N: 50})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded generator not deterministic at %d", i)
		}
	}
	c := EventStamps(core.Retroactive, Config{Seed: 43, N: 50})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical workloads")
	}
}

func TestEventStampsPanicsOnWrongClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-event class should panic")
		}
	}()
	EventStamps(core.GloballySequentialEvents, Config{N: 1})
}

func TestMonitoringWorkload(t *testing.T) {
	r, err := Monitoring(Config{Seed: 1, N: 200})
	if err != nil {
		t.Fatalf("Monitoring: %v", err)
	}
	if r.Len() != 200 {
		t.Fatalf("Len = %d", r.Len())
	}
	rep := core.Classify(r.Versions(), core.TTInsertion, chronon.Second)
	for _, want := range []core.Class{core.Retroactive, core.DelayedRetroactive,
		core.DelayedStronglyRetroactivelyBounded, core.GloballySequentialEvents} {
		if !rep.Has(want) {
			t.Errorf("monitoring relation not %v", want)
		}
	}
}

func TestPayrollWorkload(t *testing.T) {
	r, err := Payroll(Config{Seed: 2, N: 200})
	if err != nil {
		t.Fatalf("Payroll: %v", err)
	}
	rep := core.Classify(r.Versions(), core.TTInsertion, chronon.Second)
	for _, want := range []core.Class{core.Predictive, core.EarlyPredictive,
		core.EarlyStronglyPredictivelyBounded} {
		if !rep.Has(want) {
			t.Errorf("payroll relation not %v", want)
		}
	}
	if rep.Has(core.Retroactive) {
		t.Error("payroll misclassified retroactive")
	}
}

func TestAccountingWorkload(t *testing.T) {
	r, err := Accounting(Config{Seed: 3, N: 300})
	if err != nil {
		t.Fatalf("Accounting: %v", err)
	}
	rep := core.Classify(r.Versions(), core.TTInsertion, chronon.Second)
	if !rep.Has(core.StronglyBounded) {
		t.Error("ledger not strongly bounded")
	}
	// The mix spans both sides of tt, so neither one-sided class holds.
	if rep.Has(core.Retroactive) || rep.Has(core.Predictive) {
		t.Error("ledger misclassified one-sided")
	}
}

func TestOrdersWorkload(t *testing.T) {
	r, err := Orders(Config{Seed: 4, N: 300})
	if err != nil {
		t.Fatalf("Orders: %v", err)
	}
	rep := core.Classify(r.Versions(), core.TTInsertion, chronon.Second)
	if !rep.Has(core.PredictivelyBounded) {
		t.Error("orders not predictively bounded")
	}
}

func TestAssignmentsWorkload(t *testing.T) {
	r, err := Assignments(Config{Seed: 5, N: 20}, 4)
	if err != nil {
		t.Fatalf("Assignments: %v", err)
	}
	if r.Len() != 80 {
		t.Fatalf("Len = %d, want 80", r.Len())
	}
	if got := len(r.Objects()); got != 4 {
		t.Fatalf("%d life-lines, want 4", got)
	}
	rep := core.ClassifyPerPartition(r.Partitions(), core.TTInsertion, chronon.Second)
	for _, want := range []core.Class{core.GloballyContiguous, core.GloballyNonDecreasingIntervals} {
		if !rep.Has(want) {
			t.Errorf("assignments not per-partition %v: %v", want, rep.Findings)
		}
	}
	full := core.Classify(r.Versions(), core.TTInsertion, chronon.Second)
	if !full.Has(core.StrictVTIntervalRegular) {
		t.Error("assignments not strict vt interval regular")
	}
}

func TestArchaeologyWorkload(t *testing.T) {
	r, err := Archaeology(Config{Seed: 6, N: 150})
	if err != nil {
		t.Fatalf("Archaeology: %v", err)
	}
	rep := core.Classify(r.Versions(), core.TTInsertion, chronon.Second)
	if !rep.Has(core.GloballyNonIncreasingEvents) {
		t.Error("strata not non-increasing")
	}
	if rep.Has(core.GloballyNonDecreasingEvents) {
		t.Error("strata misclassified non-decreasing")
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	a, err := Monitoring(Config{Seed: 11, N: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Monitoring(Config{Seed: 11, N: 50})
	if err != nil {
		t.Fatal(err)
	}
	av, bv := a.Versions(), b.Versions()
	for i := range av {
		if av[i].TTStart != bv[i].TTStart || av[i].VT != bv[i].VT {
			t.Fatalf("monitoring workload not deterministic at %d", i)
		}
	}
}

func TestConfigNormalization(t *testing.T) {
	stamps := EventStamps(core.General, Config{})
	if len(stamps) != 1000 {
		t.Errorf("default N = %d, want 1000", len(stamps))
	}
}
