package tsql

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/interval"
	"repro/internal/plan"
	"repro/internal/relation"
)

// Result is an evaluated query: column names and rows of values.
type Result struct {
	Columns []string
	Rows    [][]element.Value
}

// Pseudo-columns exposing the system time-stamps and surrogates.
var pseudoColumns = []string{"es", "os", "tt_start", "tt_end", "vt", "vt_start", "vt_end"}

// Eval runs the query against the relation. The caller resolves the
// relation by name (the query's Rel field) before calling.
func Eval(q *Query, r *relation.Relation) (*Result, error) {
	return EvalOn(q, r.Schema(), r.Versions())
}

// EvalOn runs the query over an explicit version list — either a
// relation's full backlog or the candidate set a planned access path
// produced. Every clause is (re-)applied, so a caller may pass a superset
// of the answer; the predicates are idempotent.
func EvalOn(q *Query, schema relation.Schema, versions []*element.Element) (*Result, error) {
	return EvalOnCtx(context.Background(), q, schema, versions)
}

// cancelCheckEvery is how many versions the evaluation loop examines
// between context checks; see EvalOnCtx.
const cancelCheckEvery = 1024

// EvalOnCtx is EvalOn with cooperative cancellation: the version loop
// re-checks ctx every cancelCheckEvery elements, so a caller that has
// timed out or hung up stops consuming CPU mid-scan instead of computing
// a result no one will read.
func EvalOnCtx(ctx context.Context, q *Query, schema relation.Schema, versions []*element.Element) (*Result, error) {
	if q.Group != nil {
		return EvalAggregate(ctx, q, schema, versions)
	}
	cols := q.Columns
	if len(cols) == 0 {
		// SELECT *: surrogates, stamps, then attributes in schema order.
		cols = []string{"es", "os", "tt_start", "tt_end"}
		if schema.ValidTime == element.EventStamp {
			cols = append(cols, "vt")
		} else {
			cols = append(cols, "vt_start", "vt_end")
		}
		for _, c := range schema.Invariant {
			cols = append(cols, c.Name)
		}
		for _, c := range schema.Varying {
			cols = append(cols, c.Name)
		}
		for _, n := range schema.UserTimes {
			cols = append(cols, n)
		}
	}
	getters := make([]func(*element.Element) element.Value, len(cols))
	for i, name := range cols {
		g, err := columnGetter(schema, name)
		if err != nil {
			return nil, err
		}
		getters[i] = g
	}
	preds := make([]func(*element.Element) (bool, error), len(q.Where))
	for i, p := range q.Where {
		f, err := predicate(schema, p)
		if err != nil {
			return nil, err
		}
		preds[i] = f
	}

	var orderKey func(*element.Element) element.Value
	if q.OrderBy != "" {
		g, err := columnGetter(schema, q.OrderBy)
		if err != nil {
			return nil, err
		}
		orderKey = g
	}

	res := &Result{Columns: cols}
	var keys []element.Value
	for i, e := range versions {
		if i%cancelCheckEvery == cancelCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Transaction-time selection: AS OF tt, else the current state.
		if q.HasAsOf {
			if !e.PresentAt(q.AsOf) {
				continue
			}
		} else if !e.Current() {
			continue
		}
		// Valid-time selection.
		if q.When != nil {
			ok, err := matchWhen(q.When, e)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		// Attribute selection.
		keep := true
		for _, p := range preds {
			ok, err := p(e)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		row := make([]element.Value, len(getters))
		for i, g := range getters {
			row[i] = g(e)
		}
		res.Rows = append(res.Rows, row)
		if orderKey != nil {
			keys = append(keys, orderKey(e))
		}
	}
	if orderKey != nil {
		// Sort rows and their keys together; keys are computed from the
		// source elements, so ORDER BY works for non-projected columns too.
		idx := make([]int, len(res.Rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			if q.OrderDesc {
				return valueLess(keys[idx[b]], keys[idx[a]])
			}
			return valueLess(keys[idx[a]], keys[idx[b]])
		})
		sorted := make([][]element.Value, len(res.Rows))
		for i, j := range idx {
			sorted[i] = res.Rows[j]
		}
		res.Rows = sorted
	}
	if q.HasLimit && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

// valueLess orders two values of one column: nulls first, then the natural
// order of the shared kind.
func valueLess(a, b element.Value) bool {
	switch {
	case a.IsNull():
		return !b.IsNull()
	case b.IsNull():
		return false
	}
	return a.Compare(b) < 0
}

func matchWhen(w *WhenClause, e *element.Element) (bool, error) {
	switch w.Kind {
	case WhenValidAt:
		return e.ValidAt(w.At), nil
	case WhenValidDuring:
		if c, ok := e.VT.Event(); ok {
			return w.Window.Contains(c), nil
		}
		iv, _ := e.VT.Interval()
		return iv.Overlaps(w.Window), nil
	case WhenAllen:
		iv, ok := e.VT.Interval()
		if !ok {
			return false, fmt.Errorf("tsql: Allen WHEN clause on an event-stamped relation")
		}
		return interval.Relate(iv, w.Window) == w.Rel, nil
	}
	return false, fmt.Errorf("tsql: unknown WHEN kind %d", w.Kind)
}

// columnGetter resolves a column name to an accessor.
func columnGetter(schema relation.Schema, name string) (func(*element.Element) element.Value, error) {
	switch strings.ToLower(name) {
	case "es":
		return func(e *element.Element) element.Value { return element.Int(int64(e.ES)) }, nil
	case "os":
		return func(e *element.Element) element.Value { return element.Int(int64(e.OS)) }, nil
	case "tt_start":
		return func(e *element.Element) element.Value { return element.Time(e.TTStart) }, nil
	case "tt_end":
		return func(e *element.Element) element.Value { return element.Time(e.TTEnd) }, nil
	case "vt", "vt_start":
		return func(e *element.Element) element.Value { return element.Time(e.VT.Start()) }, nil
	case "vt_end":
		return func(e *element.Element) element.Value { return element.Time(e.VT.End()) }, nil
	}
	for i, c := range schema.Invariant {
		if c.Name == name {
			i := i
			return func(e *element.Element) element.Value { return e.Invariant[i] }, nil
		}
	}
	for i, c := range schema.Varying {
		if c.Name == name {
			i := i
			return func(e *element.Element) element.Value { return e.Varying[i] }, nil
		}
	}
	for i, n := range schema.UserTimes {
		if n == name {
			i := i
			return func(e *element.Element) element.Value { return element.Time(e.UserTimes[i]) }, nil
		}
	}
	return nil, fmt.Errorf("tsql: relation %s has no column %q (pseudo-columns: %s)",
		schema.Name, name, strings.Join(pseudoColumns, ", "))
}

// predicate compiles one WHERE conjunct.
func predicate(schema relation.Schema, p Pred) (func(*element.Element) (bool, error), error) {
	get, err := columnGetter(schema, p.Col)
	if err != nil {
		return nil, err
	}
	return func(e *element.Element) (bool, error) {
		v := get(e)
		cmp, ok, err := compare(v, p.Lit)
		if err != nil {
			return false, err
		}
		if !ok { // null never matches
			return false, nil
		}
		switch p.Op {
		case "==":
			return cmp == 0, nil
		case "!=":
			return cmp != 0, nil
		case "<":
			return cmp < 0, nil
		case "<=":
			return cmp <= 0, nil
		case ">":
			return cmp > 0, nil
		case ">=":
			return cmp >= 0, nil
		}
		return false, fmt.Errorf("tsql: unknown operator %q", p.Op)
	}, nil
}

// compare orders a stored value against a literal. ok=false for null
// values (three-valued logic collapsed to "no match").
func compare(v element.Value, lit Literal) (cmp int, ok bool, err error) {
	if v.IsNull() {
		return 0, false, nil
	}
	switch lit.Kind {
	case LitNumber:
		switch v.Kind() {
		case element.KindInt:
			i, _ := v.IntVal()
			if lit.IsInt {
				return cmp64(i, lit.Int), true, nil
			}
			return cmpFloat(float64(i), lit.Number), true, nil
		case element.KindFloat:
			f, _ := v.FloatVal()
			return cmpFloat(f, lit.Number), true, nil
		case element.KindTime:
			t, _ := v.TimeVal()
			if lit.IsInt {
				return cmp64(int64(t), lit.Int), true, nil
			}
		}
		return 0, false, fmt.Errorf("tsql: cannot compare %v to a number", v.Kind())
	case LitString:
		switch v.Kind() {
		case element.KindString:
			s, _ := v.Str()
			return strings.Compare(s, lit.Str), true, nil
		case element.KindTime:
			// Allow comparing time columns to 'YYYY-MM-DD' literals.
			cv, cerr := chronon.ParseCivil(lit.Str)
			if cerr != nil {
				return 0, false, fmt.Errorf("tsql: %v", cerr)
			}
			t, _ := v.TimeVal()
			return cmp64(int64(t), int64(cv.Chronon())), true, nil
		}
		return 0, false, fmt.Errorf("tsql: cannot compare %v to a string", v.Kind())
	case LitBool:
		if v.Kind() != element.KindBool {
			return 0, false, fmt.Errorf("tsql: cannot compare %v to a bool", v.Kind())
		}
		b, _ := v.BoolVal()
		x, y := 0, 0
		if b {
			x = 1
		}
		if lit.Bool {
			y = 1
		}
		return cmp64(int64(x), int64(y)), true, nil
	}
	return 0, false, fmt.Errorf("tsql: unknown literal kind")
}

func cmp64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Run parses and evaluates a query in one step, resolving the relation
// through the lookup function. An EXPLAIN statement returns the rendered
// plan as a one-column result instead of executing. Standalone relations
// carry no advisor-chosen store, so the plan is built for a heap of the
// relation's size — evaluation here is always a scan of the backlog.
func Run(src string, lookup func(name string) (*relation.Relation, bool)) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	r, ok := lookup(q.Rel)
	if !ok {
		return nil, fmt.Errorf("tsql: no relation %q", q.Rel)
	}
	if q.Explain {
		qq := *q
		if qq.Group != nil && qq.Pick == plan.PickAuto {
			// Standalone evaluation always runs the row reference engine
			// (there is no batch-capable store here); pin the plan to it
			// so EXPLAIN shows what actually runs.
			qq.Pick = plan.PickRow
		}
		node := Compile(&qq, plan.Access{Org: plan.OrgHeap, N: r.Len()})
		return ExplainResult(node), nil
	}
	return Eval(q, r)
}

// ExplainResult renders a compiled plan as a one-column result, so every
// surface that formats query results can show EXPLAIN output unchanged.
func ExplainResult(node *plan.Node) *Result {
	res := &Result{Columns: []string{"plan"}}
	for _, line := range strings.Split(node.Render(), "\n") {
		res.Rows = append(res.Rows, []element.Value{element.String_(line)})
	}
	return res
}

// Format renders a result as an aligned text table.
func (res *Result) Format() string {
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for ri, row := range res.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range res.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(%d row(s))\n", len(res.Rows))
	return b.String()
}
