package tsql

import (
	"strings"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/tx"
	"repro/internal/vec"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseAggregate(t *testing.T) {
	q := mustParse(t, "select count(*), sum(salary) from emp group by window(100)")
	if len(q.Aggs) != 2 || q.Aggs[0].Func != "count" || q.Aggs[0].Col != "" ||
		q.Aggs[1].Func != "sum" || q.Aggs[1].Col != "salary" {
		t.Fatalf("aggs = %+v", q.Aggs)
	}
	if q.Group == nil || q.Group.Width != 100 || q.Group.Kind != vec.Tumbling {
		t.Fatalf("group = %+v", q.Group)
	}
	if q.Pick != plan.PickAuto {
		t.Fatalf("pick = %v, want auto", q.Pick)
	}

	q = mustParse(t, "select max(temp) from temps group by window(60, rolling 3) using columnar")
	if q.Group.Kind != vec.Rolling || q.Group.K != 3 {
		t.Fatalf("group = %+v", q.Group)
	}
	if q.Pick != plan.PickColumnar {
		t.Fatalf("pick = %v, want columnar", q.Pick)
	}

	q = mustParse(t, "select min(v) from m group by window(10, cumulative) using row limit 5")
	if q.Group.Kind != vec.Cumulative || q.Pick != plan.PickRow || !q.HasLimit || q.Limit != 5 {
		t.Fatalf("q = %+v group = %+v", q, q.Group)
	}

	// Aggregates compose with the temporal clauses.
	q = mustParse(t, "select count(*) from emp as of 25 when valid during [0, 1000) group by window(100)")
	if !q.HasAsOf || q.When == nil || q.Group == nil {
		t.Fatalf("temporal clauses lost: %+v", q)
	}
}

func TestParseAggregateErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"select count(*) from emp", "group by window"},
		{"select name from emp group by window(10)", "aggregate"},
		{"select name, count(*) from emp group by window(10)", "mix"},
		{"select count(*) from emp group by window(10) order by name", "order by"},
		{"select avg(x) from emp group by window(10)", "unknown aggregate"},
		{"select sum(*) from emp group by window(10)", "sum(*)"},
		{"select count(*) from emp group by window(0)", "width"},
		{"select count(*) from emp group by window(10, rolling 0)", "rolling"},
		{"select count(*) from emp group by window(10, sliding)", "tumbling"},
		{"select * from emp using columnar", "using"},
		{"select count(*) from emp group by window(10) using fast", "ROW or COLUMNAR"},
		{"select count(*) from emp group by window(10) group by window(20)", "duplicate"},
		{"select count(*) from emp group by window(10) using row using row", "duplicate"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(c.want)) {
			t.Errorf("Parse(%q) = %v, want error containing %q", c.src, err, c.want)
		}
	}
}

func TestAggregateFingerprint(t *testing.T) {
	fp := func(src string) string {
		return mustParse(t, src).Fingerprint()
	}
	base := fp("select count(*) from emp group by window(100)")
	if base != fp("select count(*) from emp group by window(100)") {
		t.Fatal("identical statements fingerprint differently")
	}
	distinct := []string{
		"select count(*) from emp group by window(200)",
		"select count(*) from emp group by window(100, cumulative)",
		"select count(*) from emp group by window(100, rolling 2)",
		"select count(*) from emp group by window(100) using row",
		"select sum(salary) from emp group by window(100)",
		"select count(*) from emp as of 5 group by window(100)",
		"select count(*) from emp when valid during [0, 50) group by window(100)",
		"select count(*) from emp where salary > 1 group by window(100)",
		"select count(*) from emp group by window(100) limit 3",
		"select count(*) from other group by window(100)",
	}
	seen := map[string]string{base: "base"}
	for _, src := range distinct {
		f := fp(src)
		if prev, dup := seen[f]; dup {
			t.Errorf("%q fingerprints identically to %q", src, prev)
		}
		seen[f] = src
	}
}

func TestCompileAggregatePlanShape(t *testing.T) {
	a := plan.Access{
		Org: plan.OrgVTLog, N: 10000, Sealed: 9984, Runs: 39,
		HasVTExtent: true, VTMin: 0, VTMax: 100000,
	}
	findKind := func(n *plan.Node, k plan.NodeKind) bool {
		for ; n != nil; n = n.Input {
			if n.Kind == k {
				return true
			}
		}
		return false
	}

	q := mustParse(t, "select count(*) from emp group by window(100) using columnar")
	n := Compile(q, a)
	if n.Leaf().Kind != plan.ColumnarScan {
		t.Fatalf("leaf = %v, want columnar-scan", n.Leaf().Kind)
	}
	if !findKind(n, plan.WindowAggregate) {
		t.Fatal("no window-aggregate operator in the plan")
	}
	if r := n.Render(); !strings.Contains(r, "columnar-scan") || !strings.Contains(r, "window-aggregate") {
		t.Fatalf("rendering misses the batch operators:\n%s", r)
	}

	q = mustParse(t, "select count(*) from emp group by window(100) using row")
	if n := Compile(q, a); n.Leaf().Kind == plan.ColumnarScan {
		t.Fatal("USING ROW still picked the columnar leaf")
	}

	// A mostly-sealed scan-shaped query should win for columnar on cost.
	q = mustParse(t, "select count(*) from emp group by window(100)")
	if n := Compile(q, a); n.Leaf().Kind != plan.ColumnarScan {
		t.Fatalf("auto pick chose %v over columnar on a fully sealed log", n.Leaf().Kind)
	}
	// An unsealed heap must not.
	if n := Compile(q, plan.Access{Org: plan.OrgHeap, N: 100}); n.Leaf().Kind == plan.ColumnarScan {
		t.Fatal("auto pick chose columnar with nothing sealed")
	}
}

// aggFixture builds a relation with deterministic contents for end-to-end
// aggregate evaluation.
func aggFixture(t testing.TB) *relation.Relation {
	t.Helper()
	r := relation.New(relation.Schema{
		Name: "emp", ValidTime: element.EventStamp, Granularity: chronon.Second,
		Invariant: []relation.Column{{Name: "name", Type: element.KindString}},
		Varying:   []relation.Column{{Name: "salary", Type: element.KindInt}},
	}, tx.NewLogicalClock(0, 10))
	for i := 0; i < 40; i++ {
		if _, err := r.Insert(relation.Insertion{
			VT:        element.EventAt(chronon.Chronon(i * 5)),
			Invariant: []element.Value{element.String_("e")},
			Varying:   []element.Value{element.Int(int64(i))},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestEvalAggregateEndToEnd(t *testing.T) {
	r := aggFixture(t)
	q := mustParse(t, "select count(*), sum(salary), min(salary), max(salary) from emp group by window(50)")
	res, err := Eval(q, r)
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"win_start", "win_end", "count", "sum_salary", "min_salary", "max_salary"}
	if len(res.Columns) != len(wantCols) {
		t.Fatalf("columns = %v, want %v", res.Columns, wantCols)
	}
	for i, c := range wantCols {
		if res.Columns[i] != c {
			t.Fatalf("columns = %v, want %v", res.Columns, wantCols)
		}
	}
	// vt = 5i for i in [0, 40): windows of width 50 hold 10 events each.
	if len(res.Rows) != 4 {
		t.Fatalf("%d windows, want 4", len(res.Rows))
	}
	// Window [50, 100) holds i = 10..19: count 10, sum 145, min 10, max 19.
	row := res.Rows[1]
	if n, _ := row[2].IntVal(); n != 10 {
		t.Fatalf("count = %v", row[2])
	}
	if s, _ := row[3].IntVal(); s != 145 {
		t.Fatalf("sum = %v", row[3])
	}
	if lo, _ := row[4].IntVal(); lo != 10 {
		t.Fatalf("min = %v", row[4])
	}
	if hi, _ := row[5].IntVal(); hi != 19 {
		t.Fatalf("max = %v", row[5])
	}

	// WHERE and WHEN narrow the fold.
	q = mustParse(t, "select count(*) from emp when valid during [0, 100) where salary >= 5 group by window(50)")
	res, err = Eval(q, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d windows, want 2", len(res.Rows))
	}
	if n, _ := res.Rows[0][2].IntVal(); n != 5 { // i = 5..9
		t.Fatalf("filtered count = %v, want 5", res.Rows[0][2])
	}

	// LIMIT truncates emitted windows, not input rows.
	q = mustParse(t, "select count(*) from emp group by window(50) limit 2")
	res, err = Eval(q, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("limit ignored: %d rows", len(res.Rows))
	}
}

func TestExplainAggregateShowsEngine(t *testing.T) {
	r := aggFixture(t)
	res, err := Run("explain select count(*) from emp group by window(50)",
		func(string) (*relation.Relation, bool) { return r, true })
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format()
	if !strings.Contains(out, "window-aggregate") {
		t.Fatalf("EXPLAIN misses the aggregate operator:\n%s", out)
	}
	// Standalone evaluation always runs the row engine; EXPLAIN must not
	// claim a columnar scan it would not execute.
	if strings.Contains(out, "columnar-scan") {
		t.Fatalf("standalone EXPLAIN shows columnar scan:\n%s", out)
	}
}
