// Package tsql implements a small temporal query language over temporal
// relations, in the spirit of the temporal query languages the paper cites
// (TQuel [Sno87], LEGOL 2.0 [JMS79]). A query addresses all three of the
// paper's query kinds in one form:
//
//	SELECT *|col[, col...] FROM rel
//	    [AS OF tt]                      -- rollback: the state stored at tt
//	    [WHEN VALID AT vt               -- historical: facts true at vt
//	     | WHEN VALID DURING [a, b)     -- facts true sometime in [a, b)
//	     | WHEN <allen-relation> [a, b)]-- valid interval relates to window
//	    [WHERE col op literal [AND ...]]
//	    [ORDER BY col [ASC|DESC]] [LIMIT n]
//
// Omitting AS OF queries the current state; omitting WHEN places no
// valid-time restriction — so a bare SELECT is the paper's "current
// query", WHEN alone is a historical query, AS OF alone is a rollback
// query, and their combination is the bitemporal query.
//
// Temporal aggregation replaces the select list with aggregate calls and
// groups by fixed valid-time windows:
//
//	SELECT COUNT(*)|COUNT(col)|SUM(col)|MIN(col)|MAX(col)[, ...] FROM rel
//	    [AS OF tt] [WHEN ...] [WHERE ...]
//	    GROUP BY WINDOW(width[, TUMBLING | ROLLING n | CUMULATIVE])
//	    [USING ROW|COLUMNAR] [LIMIT n]
//
// Each output row is one window [win_start, win_end) with one value per
// aggregate; USING forces the row or columnar engine (the planner
// chooses by cost otherwise).
//
// Times are integer chronons or 'YYYY-MM-DD[ HH:MM:SS]' strings; the
// pseudo-columns es, os, tt_start, tt_end, vt_start, vt_end expose the
// system time-stamps.
package tsql

import (
	"fmt"
	"strings"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokStar
	tokLBracket
	tokLParen
	tokRParen
	tokOp // comparison operator
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes a query string.
type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("tsql: at offset %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\n') {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case c == '[':
		l.pos++
		return token{kind: tokLBracket, text: "[", pos: start}, nil
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '=' || c == '!' || c == '<' || c == '>':
		op := string(c)
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			op += "="
			l.pos++
		}
		switch op {
		case "=", "==", "!=", "<", "<=", ">", ">=":
			return token{kind: tokOp, text: op, pos: start}, nil
		}
		return token{}, l.errf(start, "bad operator %q", op)
	case c == '\'':
		l.pos++
		end := strings.IndexByte(l.src[l.pos:], '\'')
		if end < 0 {
			return token{}, l.errf(start, "unterminated string")
		}
		text := l.src[l.pos : l.pos+end]
		l.pos += end + 1
		return token{kind: tokString, text: text, pos: start}, nil
	case c == '-' || (c >= '0' && c <= '9'):
		l.pos++
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case isIdentByte(c):
		for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	}
	return token{}, l.errf(start, "unexpected character %q", string(c))
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-'
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
