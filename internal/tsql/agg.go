package tsql

// Temporal aggregation: lowering the GROUP BY WINDOW form onto the vec
// execution layer. BuildAggSpec compiles the statement's clauses into
// one vec.Spec — the valid/transaction-time selection as a vectorizable
// filter, Allen WHEN clauses and WHERE conjuncts as a residual row
// predicate, the aggregate list as typed calls with column getters —
// and both engines (row reference and columnar batch) execute that same
// Spec, which is what makes their answers comparable bit for bit.
//
// Semantics follow snapshot reduction over valid time: an element
// contributes to every window its valid extent [vt⊢, vt⊣) overlaps
// (events as the single chronon [vt, vt+1)), clamped to the WHEN window
// when one is given. Allen WHEN clauses select whole elements (their
// full extent contributes), matching their row-query meaning.

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/vec"
)

// BuildAggSpec compiles an aggregate statement against a schema.
func BuildAggSpec(q *Query, schema relation.Schema) (*vec.Spec, error) {
	if q.Group == nil {
		return nil, fmt.Errorf("tsql: not an aggregate query")
	}
	spec := &vec.Spec{Width: q.Group.Width, WKind: q.Group.Kind, K: q.Group.K}
	if q.HasAsOf {
		spec.Filter.AsOf = true
		spec.Filter.TT = int64(q.AsOf)
	}
	var residuals []func(*element.Element) (bool, error)
	if q.When != nil {
		switch q.When.Kind {
		case WhenValidAt:
			spec.Filter.HasVT = true
			spec.Filter.VTLo = int64(q.When.At)
			spec.Filter.VTHi = int64(q.When.At) + 1
		case WhenValidDuring:
			spec.Filter.HasVT = true
			spec.Filter.VTLo = int64(q.When.Window.Start)
			spec.Filter.VTHi = int64(q.When.Window.End)
		case WhenAllen:
			w := q.When
			residuals = append(residuals, func(e *element.Element) (bool, error) {
				return matchWhen(w, e)
			})
		}
	}
	for _, p := range q.Where {
		f, err := predicate(schema, p)
		if err != nil {
			return nil, err
		}
		residuals = append(residuals, f)
	}
	if len(residuals) == 1 {
		spec.Residual = residuals[0]
	} else if len(residuals) > 1 {
		spec.Residual = func(e *element.Element) (bool, error) {
			for _, f := range residuals {
				ok, err := f(e)
				if err != nil || !ok {
					return false, err
				}
			}
			return true, nil
		}
	}
	for _, a := range q.Aggs {
		call := vec.AggCall{Col: a.Col}
		switch a.Func {
		case "count":
			call.Kind = vec.AggCount
		case "sum":
			call.Kind = vec.AggSum
		case "min":
			call.Kind = vec.AggMin
		case "max":
			call.Kind = vec.AggMax
		default:
			return nil, fmt.Errorf("tsql: unknown aggregate %q", a.Func)
		}
		if a.Col != "" {
			g, err := columnGetter(schema, a.Col)
			if err != nil {
				return nil, err
			}
			call.Get = g
		}
		spec.Aggs = append(spec.Aggs, call)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// AggColumns names an aggregate result's columns: the window bounds,
// then one column per call (count, or func_col).
func AggColumns(q *Query) []string {
	cols := make([]string, 0, 2+len(q.Aggs))
	cols = append(cols, "win_start", "win_end")
	for _, a := range q.Aggs {
		if a.Col == "" {
			cols = append(cols, a.Func)
		} else {
			cols = append(cols, a.Func+"_"+a.Col)
		}
	}
	return cols
}

// AggToResult shapes an engine's window list into the tabular Result,
// applying LIMIT to the emitted windows.
func AggToResult(q *Query, r *vec.AggResult) *Result {
	res := &Result{Columns: AggColumns(q)}
	n := len(r.Start)
	if q.HasLimit && q.Limit < n {
		n = q.Limit
	}
	for i := 0; i < n; i++ {
		row := make([]element.Value, 0, 2+len(r.Vals[i]))
		row = append(row,
			element.Time(chronon.Chronon(r.Start[i])),
			element.Time(chronon.Chronon(r.End[i])))
		row = append(row, r.Vals[i]...)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// EvalAggregate is the standalone aggregate evaluation: the row
// reference engine over a materialized version list (the shell's local
// mode and EvalOn both land here).
func EvalAggregate(ctx context.Context, q *Query, schema relation.Schema, versions []*element.Element) (*Result, error) {
	spec, err := BuildAggSpec(q, schema)
	if err != nil {
		return nil, err
	}
	agg, err := vec.RowAggregate(ctx, spec, versions)
	if err != nil {
		return nil, err
	}
	return AggToResult(q, agg), nil
}

// aggNote describes the aggregate list and window geometry for the
// window-aggregate plan node.
func aggNote(q *Query) string {
	parts := make([]string, len(q.Aggs))
	for i, a := range q.Aggs {
		col := a.Col
		if col == "" {
			col = "*"
		}
		parts[i] = fmt.Sprintf("%s(%s)", a.Func, col)
	}
	note := fmt.Sprintf("%s window %d %v", strings.Join(parts, ", "), q.Group.Width, q.Group.Kind)
	if q.Group.Kind == vec.Rolling {
		note += fmt.Sprintf(" %d", q.Group.K)
	}
	return note
}

// Fingerprint canonicalizes the parsed statement for the query-result
// cache: two texts that parse to the same Query share one cache entry,
// and every semantically distinct clause (including the USING hint,
// which changes the plan the entry records) lands in the key.
func (q *Query) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rel=%s", q.Rel)
	for _, c := range q.Columns {
		fmt.Fprintf(&b, ";col=%s", c)
	}
	for _, a := range q.Aggs {
		fmt.Fprintf(&b, ";agg=%s(%s)", a.Func, a.Col)
	}
	if q.Group != nil {
		fmt.Fprintf(&b, ";win=%d,%v,%d", q.Group.Width, q.Group.Kind, q.Group.K)
	}
	fmt.Fprintf(&b, ";pick=%v", q.Pick)
	if q.HasAsOf {
		fmt.Fprintf(&b, ";asof=%d", int64(q.AsOf))
	}
	if w := q.When; w != nil {
		fmt.Fprintf(&b, ";when=%d,%d,%d,%d,%v",
			w.Kind, int64(w.At), int64(w.Window.Start), int64(w.Window.End), w.Rel)
	}
	for _, p := range q.Where {
		fmt.Fprintf(&b, ";where=%s %s %d,%v,%d,%v,%q,%v",
			p.Col, p.Op, p.Lit.Kind, p.Lit.Number, p.Lit.Int, p.Lit.IsInt, p.Lit.Str, p.Lit.Bool)
	}
	if q.OrderBy != "" {
		fmt.Fprintf(&b, ";order=%s,%v", q.OrderBy, q.OrderDesc)
	}
	if q.HasLimit {
		fmt.Fprintf(&b, ";limit=%d", q.Limit)
	}
	return b.String()
}
