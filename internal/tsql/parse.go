package tsql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/chronon"
	"repro/internal/interval"
	"repro/internal/plan"
	"repro/internal/vec"
)

// Query is a parsed temporal query.
type Query struct {
	// Explain marks an EXPLAIN SELECT: compile and render the plan
	// instead of executing it.
	Explain bool

	Columns []string // empty means *
	Rel     string

	// Aggs and Group carry the temporal-aggregation form: aggregate
	// calls in place of the select list, grouped by fixed valid-time
	// windows. Pick is the USING engine hint.
	Aggs  []AggCall
	Group *GroupWindow
	Pick  plan.EnginePick

	HasAsOf bool
	AsOf    chronon.Chronon

	When *WhenClause

	Where []Pred

	OrderBy   string // column name; empty for no ordering
	OrderDesc bool
	HasLimit  bool
	Limit     int
}

// AggCall is one aggregate call in the select list: count/sum/min/max
// over a column, or count over *.
type AggCall struct {
	Func string // count, sum, min, max (lower-cased)
	Col  string // empty for COUNT(*)
}

// GroupWindow is the GROUP BY WINDOW clause: fixed valid-time windows of
// Width chronons in one of the vec window modes; K is the rolling extent
// in windows.
type GroupWindow struct {
	Width int64
	Kind  vec.WindowKind
	K     int64
}

// WhenKind discriminates valid-time clauses.
type WhenKind uint8

const (
	// WhenValidAt restricts to facts valid at an instant.
	WhenValidAt WhenKind = iota
	// WhenValidDuring restricts to facts valid sometime in a window.
	WhenValidDuring
	// WhenAllen restricts interval facts whose valid interval relates to
	// the window by a specific Allen relation.
	WhenAllen
)

// WhenClause is the valid-time restriction of a query.
type WhenClause struct {
	Kind   WhenKind
	At     chronon.Chronon   // WhenValidAt
	Window interval.Interval // WhenValidDuring, WhenAllen
	Rel    interval.Relation // WhenAllen
}

// Pred is one WHERE conjunct: column op literal.
type Pred struct {
	Col string
	Op  string // ==, !=, <, <=, >, >=
	Lit Literal
}

// LiteralKind discriminates WHERE literals.
type LiteralKind uint8

const (
	// LitNumber is an integer or float literal.
	LitNumber LiteralKind = iota
	// LitString is a quoted string (or date-time, resolved at evaluation).
	LitString
	// LitBool is true or false.
	LitBool
)

// Literal is a WHERE comparison value.
type Literal struct {
	Kind   LiteralKind
	Number float64
	Int    int64
	IsInt  bool
	Str    string
	Bool   bool
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) take() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("tsql: at offset %d: %s", t.pos, fmt.Sprintf(format, args...))
}

// keyword consumes an identifier token matching word (case-insensitive).
func (p *parser) keyword(word string) error {
	t := p.take()
	if t.kind != tokIdent || !strings.EqualFold(t.text, word) {
		return p.errf(t, "expected %q, got %q", word, t.text)
	}
	return nil
}

func (p *parser) peekKeyword(word string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, word)
}

// Parse parses a query string.
func Parse(src string) (*Query, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &Query{}
	if p.peekKeyword("explain") {
		p.take()
		q.Explain = true
	}
	if err := p.keyword("select"); err != nil {
		return nil, err
	}
	if p.peek().kind == tokStar {
		p.take()
	} else {
		for {
			t := p.take()
			if t.kind != tokIdent {
				return nil, p.errf(t, "expected column name, got %q", t.text)
			}
			if p.peek().kind == tokLParen {
				call, err := p.parseAggCall(t)
				if err != nil {
					return nil, err
				}
				q.Aggs = append(q.Aggs, call)
			} else {
				q.Columns = append(q.Columns, t.text)
			}
			if p.peek().kind != tokComma {
				break
			}
			p.take()
		}
	}
	if err := p.keyword("from"); err != nil {
		return nil, err
	}
	t := p.take()
	if t.kind != tokIdent {
		return nil, p.errf(t, "expected relation name, got %q", t.text)
	}
	q.Rel = t.text

	for {
		switch {
		case p.peekKeyword("as"):
			p.take()
			if err := p.keyword("of"); err != nil {
				return nil, err
			}
			c, err := p.parseTime()
			if err != nil {
				return nil, err
			}
			if q.HasAsOf {
				return nil, p.errf(p.peek(), "duplicate AS OF")
			}
			q.HasAsOf = true
			q.AsOf = c
		case p.peekKeyword("when"):
			p.take()
			if q.When != nil {
				return nil, p.errf(p.peek(), "duplicate WHEN")
			}
			w, err := p.parseWhen()
			if err != nil {
				return nil, err
			}
			q.When = w
		case p.peekKeyword("where"):
			p.take()
			for {
				pred, err := p.parsePred()
				if err != nil {
					return nil, err
				}
				q.Where = append(q.Where, pred)
				if !p.peekKeyword("and") {
					break
				}
				p.take()
			}
		case p.peekKeyword("order"):
			p.take()
			if err := p.keyword("by"); err != nil {
				return nil, err
			}
			col := p.take()
			if col.kind != tokIdent {
				return nil, p.errf(col, "expected column name, got %q", col.text)
			}
			if q.OrderBy != "" {
				return nil, p.errf(col, "duplicate ORDER BY")
			}
			q.OrderBy = col.text
			switch {
			case p.peekKeyword("desc"):
				p.take()
				q.OrderDesc = true
			case p.peekKeyword("asc"):
				p.take()
			}
		case p.peekKeyword("group"):
			p.take()
			if err := p.keyword("by"); err != nil {
				return nil, err
			}
			if err := p.keyword("window"); err != nil {
				return nil, err
			}
			if q.Group != nil {
				return nil, p.errf(p.peek(), "duplicate GROUP BY")
			}
			g, err := p.parseGroupWindow()
			if err != nil {
				return nil, err
			}
			q.Group = g
		case p.peekKeyword("using"):
			p.take()
			t := p.take()
			if q.Pick != plan.PickAuto {
				return nil, p.errf(t, "duplicate USING")
			}
			if t.kind == tokIdent {
				switch strings.ToLower(t.text) {
				case "row":
					q.Pick = plan.PickRow
				case "columnar":
					q.Pick = plan.PickColumnar
				}
			}
			if q.Pick == plan.PickAuto {
				return nil, p.errf(t, "expected ROW or COLUMNAR, got %q", t.text)
			}
		case p.peekKeyword("limit"):
			p.take()
			t := p.take()
			if t.kind != tokNumber {
				return nil, p.errf(t, "expected row count, got %q", t.text)
			}
			n, err := strconv.ParseInt(t.text, 10, 32)
			if err != nil || n < 0 {
				return nil, p.errf(t, "bad limit %q", t.text)
			}
			if q.HasLimit {
				return nil, p.errf(t, "duplicate LIMIT")
			}
			q.HasLimit = true
			q.Limit = int(n)
		default:
			t := p.take()
			if t.kind != tokEOF {
				return nil, p.errf(t, "unexpected %q", t.text)
			}
			if err := q.checkAggregateShape(); err != nil {
				return nil, err
			}
			return q, nil
		}
	}
}

// checkAggregateShape enforces the aggregate grammar's co-occurrence
// rules once the whole statement is in hand.
func (q *Query) checkAggregateShape() error {
	if q.Group == nil {
		if len(q.Aggs) > 0 {
			return fmt.Errorf("tsql: aggregates require GROUP BY WINDOW(...)")
		}
		if q.Pick != plan.PickAuto {
			return fmt.Errorf("tsql: USING %s requires GROUP BY WINDOW(...)", q.Pick)
		}
		return nil
	}
	if len(q.Aggs) == 0 {
		return fmt.Errorf("tsql: GROUP BY WINDOW requires an aggregate select list")
	}
	if len(q.Columns) > 0 {
		return fmt.Errorf("tsql: cannot mix plain columns with aggregates")
	}
	if q.OrderBy != "" {
		return fmt.Errorf("tsql: ORDER BY is not supported with GROUP BY WINDOW (windows are emitted in order)")
	}
	for _, a := range q.Aggs {
		if a.Col == "" && a.Func != "count" {
			return fmt.Errorf("tsql: %s requires a column", a.Func)
		}
	}
	return nil
}

// parseAggCall parses the remainder of "fn(col)" / "count(*)"; fn is the
// already-consumed function identifier.
func (p *parser) parseAggCall(fn token) (AggCall, error) {
	name := strings.ToLower(fn.text)
	switch name {
	case "count", "sum", "min", "max":
	default:
		return AggCall{}, p.errf(fn, "unknown aggregate %q", fn.text)
	}
	p.take() // '('
	call := AggCall{Func: name}
	t := p.take()
	switch {
	case t.kind == tokStar:
		if name != "count" {
			return AggCall{}, p.errf(t, "%s(*) is not defined; aggregate a column", name)
		}
	case t.kind == tokIdent:
		call.Col = t.text
	default:
		return AggCall{}, p.errf(t, "expected column or '*', got %q", t.text)
	}
	if t := p.take(); t.kind != tokRParen {
		return AggCall{}, p.errf(t, "expected ')', got %q", t.text)
	}
	return call, nil
}

// parseGroupWindow parses "(width[, TUMBLING | ROLLING n | CUMULATIVE])".
func (p *parser) parseGroupWindow() (*GroupWindow, error) {
	if t := p.take(); t.kind != tokLParen {
		return nil, p.errf(t, "expected '(', got %q", t.text)
	}
	t := p.take()
	if t.kind != tokNumber {
		return nil, p.errf(t, "expected window width, got %q", t.text)
	}
	w, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil || w < 1 || w > vec.MaxWidth {
		return nil, p.errf(t, "bad window width %q (want 1..%d)", t.text, vec.MaxWidth)
	}
	g := &GroupWindow{Width: w, Kind: vec.Tumbling}
	if p.peek().kind == tokComma {
		p.take()
		m := p.take()
		if m.kind != tokIdent {
			return nil, p.errf(m, "expected TUMBLING, ROLLING or CUMULATIVE, got %q", m.text)
		}
		switch strings.ToLower(m.text) {
		case "tumbling":
		case "cumulative":
			g.Kind = vec.Cumulative
		case "rolling":
			g.Kind = vec.Rolling
			kt := p.take()
			if kt.kind != tokNumber {
				return nil, p.errf(kt, "expected rolling extent, got %q", kt.text)
			}
			k, err := strconv.ParseInt(kt.text, 10, 64)
			if err != nil || k < 1 || k > vec.MaxRolling {
				return nil, p.errf(kt, "bad rolling extent %q (want 1..%d)", kt.text, vec.MaxRolling)
			}
			g.K = k
		default:
			return nil, p.errf(m, "expected TUMBLING, ROLLING or CUMULATIVE, got %q", m.text)
		}
	}
	if t := p.take(); t.kind != tokRParen {
		return nil, p.errf(t, "expected ')', got %q", t.text)
	}
	return g, nil
}

func (p *parser) parseWhen() (*WhenClause, error) {
	switch {
	case p.peekKeyword("valid"):
		p.take()
		switch {
		case p.peekKeyword("at"):
			p.take()
			c, err := p.parseTime()
			if err != nil {
				return nil, err
			}
			return &WhenClause{Kind: WhenValidAt, At: c}, nil
		case p.peekKeyword("during"):
			p.take()
			iv, err := p.parseWindow()
			if err != nil {
				return nil, err
			}
			return &WhenClause{Kind: WhenValidDuring, Window: iv}, nil
		}
		return nil, p.errf(p.peek(), "expected AT or DURING after VALID")
	default:
		t := p.take()
		if t.kind != tokIdent {
			return nil, p.errf(t, "expected VALID or an Allen relation, got %q", t.text)
		}
		rel, err := interval.ParseRelation(strings.ToLower(t.text))
		if err != nil {
			return nil, p.errf(t, "unknown Allen relation %q", t.text)
		}
		iv, err := p.parseWindow()
		if err != nil {
			return nil, err
		}
		return &WhenClause{Kind: WhenAllen, Rel: rel, Window: iv}, nil
	}
}

// parseWindow parses "[a, b)".
func (p *parser) parseWindow() (interval.Interval, error) {
	if t := p.take(); t.kind != tokLBracket {
		return interval.Interval{}, p.errf(t, "expected '[', got %q", t.text)
	}
	lo, err := p.parseTime()
	if err != nil {
		return interval.Interval{}, err
	}
	if t := p.take(); t.kind != tokComma {
		return interval.Interval{}, p.errf(t, "expected ',', got %q", t.text)
	}
	hi, err := p.parseTime()
	if err != nil {
		return interval.Interval{}, err
	}
	if t := p.take(); t.kind != tokRParen {
		return interval.Interval{}, p.errf(t, "expected ')', got %q", t.text)
	}
	if hi <= lo {
		return interval.Interval{}, fmt.Errorf("tsql: empty window [%v, %v)", lo, hi)
	}
	return interval.Make(lo, hi), nil
}

// parseTime accepts an integer chronon or a quoted civil date-time.
func (p *parser) parseTime() (chronon.Chronon, error) {
	t := p.take()
	switch t.kind {
	case tokNumber:
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return 0, p.errf(t, "bad chronon %q", t.text)
		}
		return chronon.Chronon(n), nil
	case tokString:
		cv, err := chronon.ParseCivil(t.text)
		if err != nil {
			return 0, p.errf(t, "%v", err)
		}
		return cv.Chronon(), nil
	}
	return 0, p.errf(t, "expected a time, got %q", t.text)
}

func (p *parser) parsePred() (Pred, error) {
	col := p.take()
	if col.kind != tokIdent {
		return Pred{}, p.errf(col, "expected column name, got %q", col.text)
	}
	op := p.take()
	if op.kind != tokOp {
		return Pred{}, p.errf(op, "expected comparison operator, got %q", op.text)
	}
	opText := op.text
	if opText == "=" {
		opText = "=="
	}
	lit := p.take()
	var l Literal
	switch lit.kind {
	case tokNumber:
		if n, err := strconv.ParseInt(lit.text, 10, 64); err == nil {
			l = Literal{Kind: LitNumber, Int: n, IsInt: true, Number: float64(n)}
		} else if f, err := strconv.ParseFloat(lit.text, 64); err == nil {
			l = Literal{Kind: LitNumber, Number: f}
		} else {
			return Pred{}, p.errf(lit, "bad number %q", lit.text)
		}
	case tokString:
		l = Literal{Kind: LitString, Str: lit.text}
	case tokIdent:
		switch strings.ToLower(lit.text) {
		case "true":
			l = Literal{Kind: LitBool, Bool: true}
		case "false":
			l = Literal{Kind: LitBool, Bool: false}
		default:
			return Pred{}, p.errf(lit, "expected literal, got %q", lit.text)
		}
	default:
		return Pred{}, p.errf(lit, "expected literal, got %q", lit.text)
	}
	return Pred{Col: col.text, Op: opText, Lit: l}, nil
}
