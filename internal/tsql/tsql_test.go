package tsql

import (
	"strings"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/interval"
	"repro/internal/relation"
	"repro/internal/tx"
)

// fixture builds an employee relation with history:
//
//	tt=10  insert ann  vt=100  salary 100  (es 1)
//	tt=20  insert bob  vt=200  salary 200  (es 2)
//	tt=30  modify ann: vt=300, salary 150  (deletes es 1, inserts es 3)
//	tt=40  delete bob                      (es 2 gone)
func fixture(t *testing.T) *relation.Relation {
	t.Helper()
	r := relation.New(relation.Schema{
		Name:        "emp",
		ValidTime:   element.EventStamp,
		Granularity: chronon.Second,
		Invariant:   []relation.Column{{Name: "name", Type: element.KindString}},
		Varying: []relation.Column{
			{Name: "salary", Type: element.KindFloat},
			{Name: "active", Type: element.KindBool},
		},
	}, tx.NewLogicalClock(0, 10))
	ann, err := r.Insert(relation.Insertion{
		VT:        element.EventAt(100),
		Invariant: []element.Value{element.String_("ann")},
		Varying:   []element.Value{element.Float(100), element.Bool(true)},
	})
	if err != nil {
		t.Fatal(err)
	}
	bob, err := r.Insert(relation.Insertion{
		VT:        element.EventAt(200),
		Invariant: []element.Value{element.String_("bob")},
		Varying:   []element.Value{element.Float(200), element.Bool(true)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Modify(ann.ES, element.EventAt(300),
		[]element.Value{element.Float(150), element.Bool(true)}); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(bob.ES); err != nil {
		t.Fatal(err)
	}
	return r
}

func run(t *testing.T, r *relation.Relation, src string) *Result {
	t.Helper()
	res, err := Run(src, func(string) (*relation.Relation, bool) { return r, true })
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return res
}

func names(res *Result, col int) []string {
	var out []string
	for _, row := range res.Rows {
		s, _ := row[col].Str()
		out = append(out, s)
	}
	return out
}

func TestSelectCurrent(t *testing.T) {
	r := fixture(t)
	res := run(t, r, "select name, salary from emp")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if got := names(res, 0); got[0] != "ann" {
		t.Errorf("name = %q", got[0])
	}
	if f, _ := res.Rows[0][1].FloatVal(); f != 150 {
		t.Errorf("salary = %v", f)
	}
}

func TestSelectStar(t *testing.T) {
	r := fixture(t)
	res := run(t, r, "select * from emp")
	wantCols := []string{"es", "os", "tt_start", "tt_end", "vt", "name", "salary", "active"}
	if len(res.Columns) != len(wantCols) {
		t.Fatalf("columns = %v", res.Columns)
	}
	for i, c := range wantCols {
		if res.Columns[i] != c {
			t.Errorf("column %d = %q, want %q", i, res.Columns[i], c)
		}
	}
}

func TestAsOfRollback(t *testing.T) {
	r := fixture(t)
	// At tt=25 both originals were stored.
	res := run(t, r, "select name, salary from emp as of 25")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	got := names(res, 0)
	if got[0] != "ann" || got[1] != "bob" {
		t.Errorf("names = %v", got)
	}
	if f, _ := res.Rows[0][1].FloatVal(); f != 100 {
		t.Errorf("ann's salary as of 25 = %v, want the pre-modification 100", f)
	}
	// At tt=5 nothing existed.
	if res := run(t, r, "select name from emp as of 5"); len(res.Rows) != 0 {
		t.Errorf("rows before any insert = %d", len(res.Rows))
	}
}

func TestWhenValidAt(t *testing.T) {
	r := fixture(t)
	if res := run(t, r, "select name from emp when valid at 300"); len(res.Rows) != 1 {
		t.Errorf("valid-at-300 rows = %d", len(res.Rows))
	}
	// 100 is the *old* version of ann; the current state has vt 300.
	if res := run(t, r, "select name from emp when valid at 100"); len(res.Rows) != 0 {
		t.Errorf("valid-at-100 rows = %d", len(res.Rows))
	}
	// ...but the bitemporal query sees it.
	res := run(t, r, "select name, salary from emp as of 15 when valid at 100")
	if len(res.Rows) != 1 {
		t.Fatalf("bitemporal rows = %d", len(res.Rows))
	}
	if f, _ := res.Rows[0][1].FloatVal(); f != 100 {
		t.Errorf("bitemporal salary = %v", f)
	}
}

func TestWhenValidDuring(t *testing.T) {
	r := fixture(t)
	res := run(t, r, "select name from emp as of 25 when valid during [150, 250)")
	if len(res.Rows) != 1 || names(res, 0)[0] != "bob" {
		t.Errorf("during rows = %v", names(res, 0))
	}
}

func TestWhere(t *testing.T) {
	r := fixture(t)
	cases := []struct {
		q    string
		want int
	}{
		{"select name from emp as of 25 where salary > 150", 1},
		{"select name from emp as of 25 where salary >= 100", 2},
		{"select name from emp as of 25 where name == 'ann'", 1},
		{"select name from emp as of 25 where name != 'ann'", 1},
		{"select name from emp as of 25 where name = 'ann' and salary < 150", 1},
		{"select name from emp as of 25 where active == true", 2},
		{"select name from emp as of 25 where active == false", 0},
		{"select name from emp as of 25 where tt_start == 10", 1},
	}
	for _, c := range cases {
		if res := run(t, r, c.q); len(res.Rows) != c.want {
			t.Errorf("%s: rows = %d, want %d", c.q, len(res.Rows), c.want)
		}
	}
}

func TestWhereDateLiteral(t *testing.T) {
	r := relation.New(relation.Schema{
		Name: "ev", ValidTime: element.EventStamp, Granularity: chronon.Second,
	}, tx.NewLogicalClock(chronon.Date(1992, 1, 1), 86400))
	if _, err := r.Insert(relation.Insertion{VT: element.EventAt(chronon.Date(1992, 3, 15))}); err != nil {
		t.Fatal(err)
	}
	res := run(t, r, "select es from ev where vt >= '1992-03-01'")
	if len(res.Rows) != 1 {
		t.Errorf("date-literal rows = %d", len(res.Rows))
	}
	res = run(t, r, "select es from ev where vt < '1992-03-01'")
	if len(res.Rows) != 0 {
		t.Errorf("date-literal rows = %d", len(res.Rows))
	}
}

func intervalFixture(t *testing.T) *relation.Relation {
	t.Helper()
	r := relation.New(relation.Schema{
		Name:        "shifts",
		ValidTime:   element.IntervalStamp,
		Granularity: chronon.Second,
		Invariant:   []relation.Column{{Name: "who", Type: element.KindString}},
	}, tx.NewLogicalClock(0, 10))
	mk := func(who string, a, b int64) {
		if _, err := r.Insert(relation.Insertion{
			VT:        element.SpanOf(chronon.Chronon(a), chronon.Chronon(b)),
			Invariant: []element.Value{element.String_(who)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	mk("ann", 0, 100)
	mk("bob", 100, 200)
	mk("cod", 150, 250)
	return r
}

func TestWhenAllen(t *testing.T) {
	r := intervalFixture(t)
	cases := []struct {
		q    string
		want []string
	}{
		{"select who from shifts when meets [100, 120)", []string{"ann"}},
		{"select who from shifts when equal [100, 200)", []string{"bob"}},
		{"select who from shifts when overlaps [200, 300)", []string{"cod"}},
		{"select who from shifts when before [300, 400)", []string{"ann", "bob", "cod"}},
		{"select who from shifts when met-by [-50, 0)", []string{"ann"}},
		{"select who from shifts when valid during [120, 160)", []string{"bob", "cod"}},
		{"select who from shifts when valid at 175", []string{"bob", "cod"}},
	}
	for _, c := range cases {
		res := run(t, r, c.q)
		got := names(res, 0)
		if len(got) != len(c.want) {
			t.Errorf("%s: got %v, want %v", c.q, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: got %v, want %v", c.q, got, c.want)
				break
			}
		}
	}
}

func TestAllenOnEventRelationFails(t *testing.T) {
	r := fixture(t)
	_, err := Run("select name from emp when meets [0, 10)",
		func(string) (*relation.Relation, bool) { return r, true })
	if err == nil {
		t.Error("Allen clause on event relation accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"selec name from emp",
		"select from emp",
		"select name emp",
		"select name from",
		"select name from emp as 5",
		"select name from emp as of",
		"select name from emp as of 5 as of 6",
		"select name from emp when",
		"select name from emp when valid",
		"select name from emp when valid at",
		"select name from emp when sideways [0, 5)",
		"select name from emp when valid during [5, 5)",
		"select name from emp when valid during [5, 4)",
		"select name from emp when valid during (5, 6)",
		"select name from emp where",
		"select name from emp where name",
		"select name from emp where name ~ 'x'",
		"select name from emp where name == ",
		"select name from emp where name == 'unterminated",
		"select name from emp trailing",
		"select name from emp where salary == 1 and",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded", q)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	r := fixture(t)
	lookup := func(string) (*relation.Relation, bool) { return r, true }
	for _, q := range []string{
		"select ghost from emp",
		"select name from emp where ghost == 1",
		"select name from emp where name == 1",
		"select name from emp where salary == 'x'",
		"select name from emp where active == 1",
	} {
		if _, err := Run(q, lookup); err == nil {
			t.Errorf("Run(%q) succeeded", q)
		}
	}
	if _, err := Run("select * from nope", func(string) (*relation.Relation, bool) { return nil, false }); err == nil {
		t.Error("missing relation accepted")
	}
}

func TestNullNeverMatches(t *testing.T) {
	r := relation.New(relation.Schema{
		Name: "n", ValidTime: element.EventStamp, Granularity: chronon.Second,
		Varying: []relation.Column{{Name: "x", Type: element.KindInt}},
	}, tx.NewLogicalClock(0, 10))
	if _, err := r.Insert(relation.Insertion{
		VT: element.EventAt(1), Varying: []element.Value{element.Null()},
	}); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"select x from n where x == 0",
		"select x from n where x != 0",
	} {
		if res := run(t, r, q); len(res.Rows) != 0 {
			t.Errorf("%s matched a null", q)
		}
	}
}

func TestFormat(t *testing.T) {
	r := fixture(t)
	res := run(t, r, "select name, salary from emp")
	out := res.Format()
	for _, want := range []string{"name", "salary", `"ann"`, "150", "(1 row(s))"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	r := fixture(t)
	res := run(t, r, "SELECT name FROM emp AS OF 25 WHERE salary > 150")
	if len(res.Rows) != 1 {
		t.Errorf("uppercase query rows = %d", len(res.Rows))
	}
}

func TestAllenWindowParse(t *testing.T) {
	q, err := Parse("select who from shifts when overlapped-by [10, 20)")
	if err != nil {
		t.Fatal(err)
	}
	if q.When == nil || q.When.Kind != WhenAllen || q.When.Rel != interval.OverlappedBy {
		t.Errorf("parsed WHEN = %+v", q.When)
	}
	if q.When.Window != interval.Of(10, 20) {
		t.Errorf("window = %v", q.When.Window)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	r := fixture(t)
	// As of 25 both ann (100) and bob (200) are present.
	res := run(t, r, "select name from emp as of 25 order by salary desc")
	if got := names(res, 0); len(got) != 2 || got[0] != "bob" || got[1] != "ann" {
		t.Errorf("desc order = %v", got)
	}
	res = run(t, r, "select name from emp as of 25 order by salary asc")
	if got := names(res, 0); got[0] != "ann" {
		t.Errorf("asc order = %v", got)
	}
	// Ordering by a non-projected column works.
	res = run(t, r, "select name from emp as of 25 order by vt desc")
	if got := names(res, 0); got[0] != "bob" {
		t.Errorf("order by vt = %v", got)
	}
	// LIMIT truncates.
	res = run(t, r, "select name from emp as of 25 order by salary desc limit 1")
	if got := names(res, 0); len(got) != 1 || got[0] != "bob" {
		t.Errorf("limit = %v", got)
	}
	if res := run(t, r, "select name from emp as of 25 limit 0"); len(res.Rows) != 0 {
		t.Errorf("limit 0 rows = %d", len(res.Rows))
	}
	// LIMIT larger than the result set is harmless.
	if res := run(t, r, "select name from emp as of 25 limit 99"); len(res.Rows) != 2 {
		t.Errorf("big limit rows = %d", len(res.Rows))
	}
}

func TestOrderByStringColumn(t *testing.T) {
	r := fixture(t)
	res := run(t, r, "select name from emp as of 25 order by name desc")
	if got := names(res, 0); got[0] != "bob" || got[1] != "ann" {
		t.Errorf("string order = %v", got)
	}
}

func TestOrderByLimitParseErrors(t *testing.T) {
	for _, q := range []string{
		"select name from emp order",
		"select name from emp order by",
		"select name from emp order by 5",
		"select name from emp order by a order by b",
		"select name from emp limit",
		"select name from emp limit x",
		"select name from emp limit -1",
		"select name from emp limit 1 limit 2",
		"select name from emp order by ghost", // eval-time error
	} {
		_, err := Run(q, func(string) (*relation.Relation, bool) { return fixture(t), true })
		if err == nil {
			t.Errorf("%q succeeded", q)
		}
	}
}
