package tsql

import (
	"fmt"

	"repro/internal/plan"
)

// PlanQuery maps the statement's temporal clauses onto the planner's
// query shapes. AS OF selects on both time dimensions at once, which no
// single-dimension organization serves; Allen WHEN clauses need whole
// intervals, so they evaluate as residual filters over the current state.
func PlanQuery(q *Query) plan.Query {
	switch {
	case q.HasAsOf:
		return plan.Query{Kind: plan.QAsOf, TT: int64(q.AsOf)}
	case q.When != nil && q.When.Kind == WhenValidAt:
		return plan.Query{Kind: plan.QTimeslice, VTLo: int64(q.When.At), VTHi: int64(q.When.At) + 1}
	case q.When != nil && q.When.Kind == WhenValidDuring:
		return plan.Query{Kind: plan.QVTRange, VTLo: int64(q.When.Window.Start), VTHi: int64(q.When.Window.End)}
	default:
		return plan.Query{Kind: plan.QCurrent}
	}
}

// Compile lowers a parsed statement onto an access path chosen by the
// shared planner for the given store capabilities, wrapping the residual
// WHEN/WHERE predicates and LIMIT as decorators. The same tree drives both
// EXPLAIN rendering and the catalog's execution, so what EXPLAIN shows is
// what runs.
func Compile(q *Query, a plan.Access) *plan.Node {
	if q.Group != nil {
		return compileAggregate(q, a)
	}
	n := plan.Build(a, PlanQuery(q))
	if q.HasAsOf && q.When != nil {
		n = plan.NewFilter(n, fmt.Sprintf("when %s", describeWhen(q.When)))
	} else if q.When != nil && q.When.Kind == WhenAllen {
		n = plan.NewFilter(n, fmt.Sprintf("when %s", describeWhen(q.When)))
	}
	if len(q.Where) > 0 {
		n = plan.NewFilter(n, fmt.Sprintf("%d where predicate(s)", len(q.Where)))
	}
	if q.HasLimit {
		n = plan.NewLimit(n, q.Limit)
	}
	return n
}

// compileAggregate lowers the GROUP BY WINDOW form: the planner's
// row-vs-columnar choice (or the USING hint) as the input, residual
// predicates as filter decorators, the window-aggregate operator on
// top, and LIMIT over the emitted windows.
func compileAggregate(q *Query, a plan.Access) *plan.Node {
	n := plan.BuildAggregate(a, PlanQuery(q), q.Pick)
	if q.When != nil && q.When.Kind == WhenAllen {
		n = plan.NewFilter(n, fmt.Sprintf("when %s", describeWhen(q.When)))
	}
	if len(q.Where) > 0 {
		n = plan.NewFilter(n, fmt.Sprintf("%d where predicate(s)", len(q.Where)))
	}
	n = plan.NewWindowAggregate(n, aggNote(q))
	if q.HasLimit {
		n = plan.NewLimit(n, q.Limit)
	}
	return n
}

func describeWhen(w *WhenClause) string {
	switch w.Kind {
	case WhenValidAt:
		return fmt.Sprintf("valid at %v", w.At)
	case WhenValidDuring:
		return fmt.Sprintf("valid during [%v, %v)", w.Window.Start, w.Window.End)
	default:
		return fmt.Sprintf("%v [%v, %v)", w.Rel, w.Window.Start, w.Window.End)
	}
}
