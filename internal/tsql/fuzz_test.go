package tsql

import (
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/tx"
)

// FuzzParse checks the query parser never panics and that parsed queries
// evaluate without panicking against a small fixture relation.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"select * from emp",
		"select name, salary from emp as of 25 when valid at 100 where salary > 150",
		"select who from shifts when meets [100, 120)",
		"select a from b where c == 'x' and d != 5",
		"select x from y when valid during ['1992-01-01', '1992-02-01')",
		"select",
		"select * from emp where a ==",
		"select * from emp when overlapped-by [5, 1)",
		"'",
		"select * from emp where v == -3.5",
	} {
		f.Add(seed)
	}
	r := relation.New(relation.Schema{
		Name: "emp", ValidTime: element.EventStamp, Granularity: chronon.Second,
		Invariant: []relation.Column{{Name: "name", Type: element.KindString}},
		Varying:   []relation.Column{{Name: "salary", Type: element.KindFloat}},
	}, tx.NewLogicalClock(0, 10))
	for i := 0; i < 5; i++ {
		if _, err := r.Insert(relation.Insertion{
			VT:        element.EventAt(chronon.Chronon(i * 10)),
			Invariant: []element.Value{element.String_("x")},
			Varying:   []element.Value{element.Float(float64(i))},
		}); err != nil {
			f.Fatal(err)
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		// Whatever parses must evaluate or fail cleanly — never panic.
		_, _ = Eval(q, r)
	})
}
