package tsql

import (
	"strings"
	"testing"

	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/tx"
	"repro/internal/vec"
)

// FuzzParse checks the query parser never panics and that parsed queries
// evaluate without panicking against a small fixture relation.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"select * from emp",
		"select name, salary from emp as of 25 when valid at 100 where salary > 150",
		"select who from shifts when meets [100, 120)",
		"select a from b where c == 'x' and d != 5",
		"select x from y when valid during ['1992-01-01', '1992-02-01')",
		"select",
		"select * from emp where a ==",
		"select * from emp when overlapped-by [5, 1)",
		"'",
		"select * from emp where v == -3.5",
	} {
		f.Add(seed)
	}
	r := relation.New(relation.Schema{
		Name: "emp", ValidTime: element.EventStamp, Granularity: chronon.Second,
		Invariant: []relation.Column{{Name: "name", Type: element.KindString}},
		Varying:   []relation.Column{{Name: "salary", Type: element.KindFloat}},
	}, tx.NewLogicalClock(0, 10))
	for i := 0; i < 5; i++ {
		if _, err := r.Insert(relation.Insertion{
			VT:        element.EventAt(chronon.Chronon(i * 10)),
			Invariant: []element.Value{element.String_("x")},
			Varying:   []element.Value{element.Float(float64(i))},
		}); err != nil {
			f.Fatal(err)
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		// Whatever parses must evaluate or fail cleanly — never panic.
		_, _ = Eval(q, r)
	})
}

// FuzzParseAggregate drives the aggregate grammar: parsing never panics,
// parsed statements honor the co-occurrence invariants checkAggregateShape
// promises, and whatever parses both compiles (across every store
// capability, including sealed columnar-capable ones) and evaluates
// against a fixture relation without panicking.
func FuzzParseAggregate(f *testing.F) {
	for _, seed := range []string{
		"select count(*) from emp group by window(100)",
		"select count(*), sum(salary) from emp group by window(50) using columnar",
		"select max(salary) from emp group by window(60, rolling 3) using row",
		"select min(salary) from emp group by window(10, cumulative) limit 4",
		"select count(salary) from emp as of 25 when valid during [0, 200) group by window(100)",
		"select sum(salary) from emp where salary > 2 group by window(25)",
		"select count(*) from emp group by window(99999999999999999999)",
		"select sum(*) from emp group by window(10)",
		"select count(*) from emp group by window(10, rolling)",
		"select name, count(*) from emp group by window(10)",
		"select count(*) from emp using turbo",
		"explain select count(*) from emp group by window(50)",
	} {
		f.Add(seed)
	}
	r := relation.New(relation.Schema{
		Name: "emp", ValidTime: element.EventStamp, Granularity: chronon.Second,
		Invariant: []relation.Column{{Name: "name", Type: element.KindString}},
		Varying:   []relation.Column{{Name: "salary", Type: element.KindInt}},
	}, tx.NewLogicalClock(0, 10))
	for i := 0; i < 8; i++ {
		if _, err := r.Insert(relation.Insertion{
			VT:        element.EventAt(chronon.Chronon(i * 10)),
			Invariant: []element.Value{element.String_("x")},
			Varying:   []element.Value{element.Int(int64(i))},
		}); err != nil {
			f.Fatal(err)
		}
	}
	accesses := []plan.Access{
		{Org: plan.OrgHeap, N: 100},
		{Org: plan.OrgVTLog, N: 1024, Sealed: 1024, Runs: 4, HasVTExtent: true, VTMin: 0, VTMax: 5000},
		{Org: plan.OrgVTLog, N: 1024, Sealed: 512, Runs: 2, HasVTExtent: true, VTMin: -100, VTMax: 100},
		{Org: plan.OrgTTLog, N: 1024, Sealed: 768, Runs: 3},
		{Org: plan.OrgVTLog, N: 0},
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		// The shape invariants the parser promises downstream layers.
		if q.Group == nil {
			if len(q.Aggs) > 0 || q.Pick != plan.PickAuto {
				t.Fatalf("parser let aggregate state through without GROUP BY: %+v", q)
			}
		} else {
			if len(q.Aggs) == 0 || len(q.Columns) > 0 || q.OrderBy != "" {
				t.Fatalf("parser violated aggregate co-occurrence rules: %+v", q)
			}
			if q.Group.Width < 1 || q.Group.Width > vec.MaxWidth {
				t.Fatalf("window width %d out of range", q.Group.Width)
			}
			if q.Group.Kind == vec.Rolling && (q.Group.K < 1 || q.Group.K > vec.MaxRolling) {
				t.Fatalf("rolling extent %d out of range", q.Group.K)
			}
			if q.Fingerprint() == "" {
				t.Fatal("empty fingerprint")
			}
		}
		for _, a := range accesses {
			node := Compile(q, a)
			if node == nil || node.Render() == "" {
				t.Fatalf("Compile(%q, %+v) produced no plan", src, a)
			}
		}
		// Whatever parses must evaluate or fail cleanly — never panic.
		_, _ = Eval(q, r)
	})
}

// FuzzParseExplain drives the EXPLAIN path: anything that parses must
// compile to a plan and render without panicking, for every combination of
// store capability the planner distinguishes, and the rendered tree must
// agree with the one-line plan name on its access path.
func FuzzParseExplain(f *testing.F) {
	for _, seed := range []string{
		"explain select * from emp",
		"explain select * from emp when valid at 100",
		"explain select name from emp as of 25 when valid at 100 where salary > 150",
		"explain select who from shifts when meets [100, 120)",
		"explain select x from y when valid during [5, 50) order by x limit 3",
		"explain explain select * from emp",
		"explain",
		"select * from emp when valid at 100",
	} {
		f.Add(seed)
	}
	accesses := []plan.Access{
		{Org: plan.OrgHeap, N: 100},
		{Org: plan.OrgHeap, N: 100, VTIndex: true},
		{Org: plan.OrgTTLog, N: 100},
		{Org: plan.OrgTTLog, N: 100, HasOffsetBounds: true, OffsetLo: -10, OffsetHi: 10},
		{Org: plan.OrgVTLog, N: 100},
		{Org: plan.OrgVTLog, N: 0},
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		for _, a := range accesses {
			node := Compile(q, a)
			if node == nil {
				t.Fatalf("Compile(%q, %+v) returned nil", src, a)
			}
			rendered := node.Render()
			if rendered == "" {
				t.Fatalf("empty rendering for %q", src)
			}
			res := ExplainResult(node)
			if len(res.Columns) != 1 || len(res.Rows) == 0 {
				t.Fatalf("ExplainResult shape: %d column(s), %d row(s)", len(res.Columns), len(res.Rows))
			}
			// The one-line name and the rendered tree describe the same leaf.
			if !strings.Contains(node.String(), node.Leaf().Org.String()) &&
				!node.Leaf().Bitemporal &&
				node.Leaf().Kind != plan.TTWindowPushdown &&
				node.Leaf().Kind != plan.BTreeIndexSeek {
				t.Fatalf("plan name %q does not name the leaf organization %q",
					node.String(), node.Leaf().Org)
			}
		}
	})
}
