package constraint

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/interval"
)

// DescriptorKind discriminates the constraint kinds a Descriptor can
// carry.
type DescriptorKind uint8

// Descriptor kinds. Determined constraints carry arbitrary Go functions
// and are therefore not describable; attach them afresh after loading.
const (
	DescEvent DescriptorKind = iota
	DescInterEvent
	DescIntervalRegular
	DescInterInterval
)

// String names the kind.
func (k DescriptorKind) String() string {
	switch k {
	case DescEvent:
		return "event"
	case DescInterEvent:
		return "inter-event"
	case DescIntervalRegular:
		return "interval-regular"
	case DescInterInterval:
		return "inter-interval"
	}
	return fmt.Sprintf("DescriptorKind(%d)", uint8(k))
}

// Descriptor is a serializable description of one declared specialization —
// the catalog entry that lets declarations survive persistence. Build one
// with Describe and reconstruct the constraint with Build.
type Descriptor struct {
	Kind        DescriptorKind
	Class       core.Class
	Scope       Scope
	Basis       core.TTBasis
	Endpoint    core.VTEndpoint
	Bounds      []chronon.Duration  // class-specific parameters, canonical order
	Granularity chronon.Granularity // degenerate class only
}

// String renders the descriptor.
func (d Descriptor) String() string {
	return fmt.Sprintf("%v %v (%v)", d.Kind, d.Class, d.Scope)
}

// Describe converts a declared constraint into its descriptor. ok is false
// for constraints that cannot be serialized (Determined carries an
// arbitrary mapping function).
func Describe(c Constraint, scope Scope) (Descriptor, bool) {
	switch c := c.(type) {
	case Event:
		d := Descriptor{Kind: DescEvent, Class: c.Spec.Class(), Scope: scope,
			Basis: c.Basis, Endpoint: c.Endpoint}
		lower, upper := c.Spec.Bounds()
		switch c.Spec.Class() {
		case core.General, core.Retroactive, core.Predictive:
		case core.DelayedRetroactive:
			d.Bounds = []chronon.Duration{upper.Neg()}
		case core.EarlyPredictive:
			d.Bounds = []chronon.Duration{*lower}
		case core.RetroactivelyBounded, core.StronglyRetroactivelyBounded:
			d.Bounds = []chronon.Duration{lower.Neg()}
		case core.DelayedStronglyRetroactivelyBounded:
			d.Bounds = []chronon.Duration{upper.Neg(), lower.Neg()}
		case core.PredictivelyBounded, core.StronglyPredictivelyBounded:
			d.Bounds = []chronon.Duration{*upper}
		case core.EarlyStronglyPredictivelyBounded:
			d.Bounds = []chronon.Duration{*lower, *upper}
		case core.StronglyBounded:
			d.Bounds = []chronon.Duration{lower.Neg(), *upper}
		case core.Degenerate:
			d.Granularity = c.Spec.Granularity()
		default:
			return Descriptor{}, false
		}
		return d, true
	case InterEvent:
		d := Descriptor{Kind: DescInterEvent, Class: c.Spec.Class(), Scope: scope,
			Basis: c.Basis, Endpoint: c.Endpoint}
		if u := c.Spec.Unit(); !u.IsZero() {
			d.Bounds = []chronon.Duration{u}
		}
		return d, true
	case IntervalRegular:
		return Descriptor{Kind: DescIntervalRegular, Class: c.Spec.Class(), Scope: scope,
			Bounds: []chronon.Duration{c.Spec.Unit()}}, true
	case InterInterval:
		return Descriptor{Kind: DescInterInterval, Class: c.Spec.Class(), Scope: scope,
			Basis: c.Basis}, true
	}
	return Descriptor{}, false
}

// DescribeEnforcer converts an enforcer's declarations into descriptors.
// undescribable reports how many constraints could not be serialized.
func DescribeEnforcer(en *Enforcer) (descs []Descriptor, undescribable int) {
	for _, c := range en.Constraints() {
		if d, ok := Describe(c, en.Scope()); ok {
			descs = append(descs, d)
		} else {
			undescribable++
		}
	}
	return descs, undescribable
}

func (d Descriptor) bound(i int) (chronon.Duration, error) {
	if i >= len(d.Bounds) {
		return chronon.Duration{}, fmt.Errorf("constraint: descriptor %v missing bound %d", d, i)
	}
	return d.Bounds[i], nil
}

// Build reconstructs the constraint the descriptor describes.
func (d Descriptor) Build() (Constraint, error) {
	switch d.Kind {
	case DescEvent:
		spec, err := d.buildEventSpec()
		if err != nil {
			return nil, err
		}
		return Event{Spec: spec, Basis: d.Basis, Endpoint: d.Endpoint}, nil
	case DescInterEvent:
		spec, err := d.buildInterEventSpec()
		if err != nil {
			return nil, err
		}
		return InterEvent{Spec: spec, Basis: d.Basis, Endpoint: d.Endpoint}, nil
	case DescIntervalRegular:
		spec, err := d.buildIntervalRegularSpec()
		if err != nil {
			return nil, err
		}
		return IntervalRegular{Spec: spec}, nil
	case DescInterInterval:
		spec, err := d.buildInterIntervalSpec()
		if err != nil {
			return nil, err
		}
		return InterInterval{Spec: spec, Basis: d.Basis}, nil
	}
	return nil, fmt.Errorf("constraint: unknown descriptor kind %v", d.Kind)
}

func (d Descriptor) buildEventSpec() (core.EventSpec, error) {
	one := func(f func(chronon.Duration) (core.EventSpec, error)) (core.EventSpec, error) {
		b, err := d.bound(0)
		if err != nil {
			return core.EventSpec{}, err
		}
		return f(b)
	}
	two := func(f func(a, b chronon.Duration) (core.EventSpec, error)) (core.EventSpec, error) {
		b0, err := d.bound(0)
		if err != nil {
			return core.EventSpec{}, err
		}
		b1, err := d.bound(1)
		if err != nil {
			return core.EventSpec{}, err
		}
		return f(b0, b1)
	}
	switch d.Class {
	case core.General:
		return core.GeneralSpec(), nil
	case core.Retroactive:
		return core.RetroactiveSpec(), nil
	case core.Predictive:
		return core.PredictiveSpec(), nil
	case core.DelayedRetroactive:
		return one(core.DelayedRetroactiveSpec)
	case core.EarlyPredictive:
		return one(core.EarlyPredictiveSpec)
	case core.RetroactivelyBounded:
		return one(core.RetroactivelyBoundedSpec)
	case core.StronglyRetroactivelyBounded:
		return one(core.StronglyRetroactivelyBoundedSpec)
	case core.DelayedStronglyRetroactivelyBounded:
		return two(core.DelayedStronglyRetroactivelyBoundedSpec)
	case core.PredictivelyBounded:
		return one(core.PredictivelyBoundedSpec)
	case core.StronglyPredictivelyBounded:
		return one(core.StronglyPredictivelyBoundedSpec)
	case core.EarlyStronglyPredictivelyBounded:
		return two(core.EarlyStronglyPredictivelyBoundedSpec)
	case core.StronglyBounded:
		return two(core.StronglyBoundedSpec)
	case core.Degenerate:
		return core.DegenerateSpec(d.Granularity)
	}
	return core.EventSpec{}, fmt.Errorf("constraint: %v is not an event class", d.Class)
}

func (d Descriptor) buildInterEventSpec() (core.InterEventSpec, error) {
	switch d.Class {
	case core.GloballySequentialEvents:
		return core.SequentialEventsSpec(), nil
	case core.GloballyNonDecreasingEvents:
		return core.NonDecreasingEventsSpec(), nil
	case core.GloballyNonIncreasingEvents:
		return core.NonIncreasingEventsSpec(), nil
	}
	b, err := d.bound(0)
	if err != nil {
		return core.InterEventSpec{}, err
	}
	switch d.Class {
	case core.TTEventRegular:
		return core.TTEventRegularSpec(b)
	case core.VTEventRegular:
		return core.VTEventRegularSpec(b)
	case core.TemporalEventRegular:
		return core.TemporalEventRegularSpec(b)
	case core.StrictTTEventRegular:
		return core.StrictTTEventRegularSpec(b)
	case core.StrictVTEventRegular:
		return core.StrictVTEventRegularSpec(b)
	case core.StrictTemporalEventRegular:
		return core.StrictTemporalEventRegularSpec(b)
	}
	return core.InterEventSpec{}, fmt.Errorf("constraint: %v is not an inter-event class", d.Class)
}

func (d Descriptor) buildIntervalRegularSpec() (core.IntervalRegularSpec, error) {
	b, err := d.bound(0)
	if err != nil {
		return core.IntervalRegularSpec{}, err
	}
	switch d.Class {
	case core.TTIntervalRegular:
		return core.TTIntervalRegularSpec(b)
	case core.VTIntervalRegular:
		return core.VTIntervalRegularSpec(b)
	case core.TemporalIntervalRegular:
		return core.TemporalIntervalRegularSpec(b)
	case core.StrictTTIntervalRegular:
		return core.StrictTTIntervalRegularSpec(b)
	case core.StrictVTIntervalRegular:
		return core.StrictVTIntervalRegularSpec(b)
	case core.StrictTemporalIntervalRegular:
		return core.StrictTemporalIntervalRegularSpec(b)
	}
	return core.IntervalRegularSpec{}, fmt.Errorf("constraint: %v is not an interval-regular class", d.Class)
}

func (d Descriptor) buildInterIntervalSpec() (core.InterIntervalSpec, error) {
	switch d.Class {
	case core.GloballySequentialIntervals:
		return core.SequentialIntervalsSpec(), nil
	case core.GloballyNonDecreasingIntervals:
		return core.NonDecreasingIntervalsSpec(), nil
	case core.GloballyNonIncreasingIntervals:
		return core.NonIncreasingIntervalsSpec(), nil
	}
	if d.Class >= core.STBefore && d.Class <= core.STFinishedBy {
		return core.SuccessiveTTSpec(interval.Relation(d.Class - core.STBefore)), nil
	}
	return core.InterIntervalSpec{}, fmt.Errorf("constraint: %v is not an inter-interval class", d.Class)
}

// BuildAll reconstructs constraints grouped by scope and returns one
// enforcer per scope present.
func BuildAll(descs []Descriptor) (map[Scope][]Constraint, error) {
	out := make(map[Scope][]Constraint)
	for _, d := range descs {
		c, err := d.Build()
		if err != nil {
			return nil, err
		}
		out[d.Scope] = append(out[d.Scope], c)
	}
	return out, nil
}
