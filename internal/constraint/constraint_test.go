package constraint

import (
	"strings"
	"testing"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/tx"
)

func monitorSchema() relation.Schema {
	return relation.Schema{
		Name:        "temps",
		ValidTime:   element.EventStamp,
		Granularity: chronon.Second,
		Invariant:   []relation.Column{{Name: "sensor", Type: element.KindString}},
		Varying:     []relation.Column{{Name: "celsius", Type: element.KindFloat}},
	}
}

func assignSchema() relation.Schema {
	return relation.Schema{
		Name:        "assignments",
		ValidTime:   element.IntervalStamp,
		Granularity: chronon.Second,
		Invariant:   []relation.Column{{Name: "emp", Type: element.KindString}},
		Varying:     []relation.Column{{Name: "project", Type: element.KindString}},
	}
}

func insertEvent(t *testing.T, r *relation.Relation, vt int64, sensor string) (*element.Element, error) {
	t.Helper()
	return r.Insert(relation.Insertion{
		VT:        element.EventAt(chronon.Chronon(vt)),
		Invariant: []element.Value{element.String_(sensor)},
		Varying:   []element.Value{element.Float(20)},
	})
}

func insertSpan(t *testing.T, r *relation.Relation, vs, ve int64, emp string) (*element.Element, error) {
	t.Helper()
	return r.Insert(relation.Insertion{
		VT:        element.SpanOf(chronon.Chronon(vs), chronon.Chronon(ve)),
		Invariant: []element.Value{element.String_(emp)},
		Varying:   []element.Value{element.String_("p")},
	})
}

func TestEventConstraintRetroactive(t *testing.T) {
	r := relation.New(monitorSchema(), tx.NewLogicalClock(1000, 10))
	Attach(r, PerRelation, Event{Spec: core.RetroactiveSpec()})
	// First insert gets tt = 1010; vt 1000 is retroactive.
	if _, err := insertEvent(t, r, 1000, "s1"); err != nil {
		t.Fatalf("retroactive insert rejected: %v", err)
	}
	// tt = 1020; vt 2000 is in the future: reject.
	if _, err := insertEvent(t, r, 2000, "s1"); err == nil {
		t.Fatal("future event accepted by retroactive relation")
	}
	if r.Len() != 1 {
		t.Errorf("rejected insert stored; len = %d", r.Len())
	}
	// The error names the constraint.
	_, err := insertEvent(t, r, 5000, "s1")
	if err == nil || !strings.Contains(err.Error(), "retroactive") {
		t.Errorf("violation message %v lacks constraint name", err)
	}
}

func TestEventConstraintDeletionBasis(t *testing.T) {
	r := relation.New(monitorSchema(), tx.NewLogicalClock(1000, 10))
	// Deletion-retroactive: elements may be inserted with future valid
	// times but may only be deleted after their event has occurred.
	Attach(r, PerRelation, Event{Spec: core.RetroactiveSpec(), Basis: core.TTDeletion})
	e, err := insertEvent(t, r, 5000, "s1") // tt=1010, vt=5000: fine on insert
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	// Deleting now (tt=1020 < vt=5000) violates deletion-retroactivity.
	if err := r.Delete(e.ES); err == nil {
		t.Fatal("early delete accepted")
	}
	// Advance past the event and retry.
	r.Clock().(*tx.LogicalClock).AdvanceTo(5000)
	if err := r.Delete(e.ES); err != nil {
		t.Fatalf("late delete rejected: %v", err)
	}
}

func TestDelayedRetroactiveEnforcement(t *testing.T) {
	spec, err := core.DelayedRetroactiveSpec(chronon.Seconds(30))
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(monitorSchema(), tx.NewLogicalClock(1000, 10))
	Attach(r, PerRelation, Event{Spec: spec})
	// tt=1010; vt must be ≤ 980.
	if _, err := insertEvent(t, r, 980, "s1"); err != nil {
		t.Errorf("delay 30 rejected: %v", err)
	}
	if _, err := insertEvent(t, r, 995, "s1"); err == nil {
		t.Error("delay 25 accepted")
	}
}

func TestInterEventConstraintSequential(t *testing.T) {
	r := relation.New(monitorSchema(), tx.NewLogicalClock(0, 100))
	Attach(r, PerRelation, InterEvent{Spec: core.SequentialEventsSpec()})
	// tt=100, vt=50: ok. tt=200, vt=150: ok (150 ≥ max(100,50)).
	if _, err := insertEvent(t, r, 50, "s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := insertEvent(t, r, 150, "s1"); err != nil {
		t.Fatal(err)
	}
	// tt=300, vt=120: 120 < 200 (prior tt): reject.
	if _, err := insertEvent(t, r, 120, "s1"); err == nil {
		t.Fatal("non-sequential insert accepted")
	}
	// State unchanged: a valid retry succeeds.
	if _, err := insertEvent(t, r, 450, "s1"); err != nil {
		t.Fatalf("valid insert after rejection failed: %v", err)
	}
}

func TestInterEventRegularEnforcement(t *testing.T) {
	spec, err := core.TTEventRegularSpec(chronon.Seconds(100))
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(monitorSchema(), tx.NewLogicalClock(0, 100))
	Attach(r, PerRelation, InterEvent{Spec: spec})
	if _, err := insertEvent(t, r, 1, "s1"); err != nil { // tt=100
		t.Fatal(err)
	}
	if _, err := insertEvent(t, r, 2, "s1"); err != nil { // tt=200
		t.Fatal(err)
	}
	// Shift the clock so the next tt is 350: not congruent to 100 mod 100.
	r.Clock().(*tx.LogicalClock).AdvanceTo(250)
	if _, err := insertEvent(t, r, 3, "s1"); err == nil {
		t.Fatal("irregular tt accepted")
	}
}

func TestPerPartitionScope(t *testing.T) {
	r := relation.New(assignSchema(), tx.NewLogicalClock(0, 100))
	Attach(r, PerPartition, InterInterval{Spec: core.ContiguousSpec()})
	ann := r.NewObject()
	bob := r.NewObject()
	mk := func(os int64, vs, ve int64) error {
		var o = ann
		if os == 2 {
			o = bob
		}
		_, err := r.Insert(relation.Insertion{
			Object:    o,
			VT:        element.SpanOf(chronon.Chronon(vs), chronon.Chronon(ve)),
			Invariant: []element.Value{element.String_("x")},
			Varying:   []element.Value{element.String_("p")},
		})
		return err
	}
	// Ann's and Bob's life-lines are each contiguous, though interleaved in
	// transaction time and mutually non-contiguous.
	if err := mk(1, 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := mk(2, 100, 110); err != nil {
		t.Fatal(err)
	}
	if err := mk(1, 10, 20); err != nil {
		t.Fatal(err)
	}
	if err := mk(2, 110, 120); err != nil {
		t.Fatal(err)
	}
	// A gap within Ann's life-line is rejected.
	if err := mk(1, 25, 30); err == nil {
		t.Fatal("gap in partition accepted")
	}
	// The same intervals under a per-relation scope would already have
	// failed at Bob's first insert.
	r2 := relation.New(assignSchema(), tx.NewLogicalClock(0, 100))
	Attach(r2, PerRelation, InterInterval{Spec: core.ContiguousSpec()})
	o1 := r2.NewObject()
	if _, err := r2.Insert(relation.Insertion{Object: o1, VT: element.SpanOf(0, 10),
		Invariant: []element.Value{element.String_("x")}, Varying: []element.Value{element.String_("p")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Insert(relation.Insertion{Object: r2.NewObject(), VT: element.SpanOf(100, 110),
		Invariant: []element.Value{element.String_("x")}, Varying: []element.Value{element.String_("p")}}); err == nil {
		t.Fatal("per-relation contiguity should reject the gap")
	}
}

func TestIntervalRegularEnforcement(t *testing.T) {
	spec, err := core.VTIntervalRegularSpec(chronon.Seconds(10))
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(assignSchema(), tx.NewLogicalClock(0, 100))
	Attach(r, PerRelation, IntervalRegular{Spec: spec})
	if _, err := insertSpan(t, r, 0, 20, "ann"); err != nil {
		t.Fatalf("regular interval rejected: %v", err)
	}
	if _, err := insertSpan(t, r, 0, 25, "ann"); err == nil {
		t.Fatal("irregular interval accepted")
	}
}

func TestTTIntervalRegularEnforcedAtDelete(t *testing.T) {
	spec, err := core.TTIntervalRegularSpec(chronon.Seconds(200))
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(assignSchema(), tx.NewLogicalClock(0, 100))
	Attach(r, PerRelation, IntervalRegular{Spec: spec})
	e, err := insertSpan(t, r, 0, 10, "ann") // tt⊢ = 100
	if err != nil {
		t.Fatal(err)
	}
	// Deleting at tt = 200 gives existence [100, 200): duration 100, not a
	// multiple of 200: reject.
	if err := r.Delete(e.ES); err == nil {
		t.Fatal("irregular existence interval accepted")
	}
	// Deleting at tt = 300 gives duration 200: accept.
	if err := r.Delete(e.ES); err != nil {
		t.Fatalf("regular existence delete rejected: %v", err)
	}
}

func TestDeterminedEnforcement(t *testing.T) {
	det := Determined{Spec: core.DeterminedSpec{
		M:    core.M1(chronon.Seconds(50)),
		Base: core.PredictiveSpec(),
	}}
	r := relation.New(monitorSchema(), tx.NewLogicalClock(0, 100))
	Attach(r, PerRelation, det)
	// tt = 100 ⇒ vt must be exactly 150.
	if _, err := insertEvent(t, r, 150, "s1"); err != nil {
		t.Fatalf("determined insert rejected: %v", err)
	}
	// tt = 200 ⇒ vt must be 250, not 240.
	if _, err := insertEvent(t, r, 240, "s1"); err == nil {
		t.Fatal("non-determined vt accepted")
	}
}

func TestInterIntervalOnEventRelationFails(t *testing.T) {
	r := relation.New(monitorSchema(), tx.NewLogicalClock(0, 100))
	Attach(r, PerRelation, InterInterval{Spec: core.SequentialIntervalsSpec()})
	if _, err := insertEvent(t, r, 50, "s1"); err == nil {
		t.Fatal("inter-interval constraint on event relation accepted")
	}
}

func TestEnforcerAccessors(t *testing.T) {
	en := NewEnforcer(PerPartition, Event{Spec: core.RetroactiveSpec()})
	if en.Scope() != PerPartition {
		t.Error("Scope wrong")
	}
	if len(en.Constraints()) != 1 {
		t.Error("Constraints wrong")
	}
	if PerRelation.String() != "per relation" || PerPartition.String() != "per partition" {
		t.Error("scope names wrong")
	}
}

func TestConstraintStrings(t *testing.T) {
	cs := []Constraint{
		Event{Spec: core.RetroactiveSpec()},
		Determined{Spec: core.DeterminedSpec{M: core.M3(), Base: core.GeneralSpec()}},
		InterEvent{Spec: core.SequentialEventsSpec()},
		InterInterval{Spec: core.ContiguousSpec()},
	}
	for _, c := range cs {
		if c.String() == "" {
			t.Errorf("%T has empty String", c)
		}
	}
	ir, err := core.VTIntervalRegularSpec(chronon.Seconds(5))
	if err != nil {
		t.Fatal(err)
	}
	if (IntervalRegular{Spec: ir}).String() == "" {
		t.Error("IntervalRegular has empty String")
	}
}

func TestMultipleConstraintsComposed(t *testing.T) {
	// A chemical-plant relation: delayed retroactive AND sequential.
	delayed, err := core.DelayedRetroactiveSpec(chronon.Seconds(30))
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(monitorSchema(), tx.NewLogicalClock(1000, 100))
	Attach(r, PerRelation,
		Event{Spec: delayed},
		InterEvent{Spec: core.SequentialEventsSpec()},
	)
	if _, err := insertEvent(t, r, 1000, "s1"); err != nil { // tt=1100
		t.Fatal(err)
	}
	// Violates the delay (tt=1200, vt=1190 > 1170).
	if _, err := insertEvent(t, r, 1190, "s1"); err == nil {
		t.Fatal("delay violation accepted")
	}
	// Violates sequentiality (vt 900 before prior element's tt 1100).
	if _, err := insertEvent(t, r, 900, "s1"); err == nil {
		t.Fatal("sequentiality violation accepted")
	}
	// Satisfies both.
	if _, err := insertEvent(t, r, 1150, "s1"); err != nil {
		t.Fatalf("valid insert rejected: %v", err)
	}
}

func TestInterEventDeletionBasis(t *testing.T) {
	// Deletion-sequential: elements must be deleted in an order where each
	// deletion's (tt, vt) pair is sequential — deletions proceed forward
	// through valid time.
	r := relation.New(monitorSchema(), tx.NewLogicalClock(0, 100))
	Attach(r, PerRelation, InterEvent{Spec: core.SequentialEventsSpec(), Basis: core.TTDeletion})
	// Inserts are unconstrained under the deletion basis.
	e1, err := insertEvent(t, r, 5000, "s1") // vt far ahead
	if err != nil {
		t.Fatal(err)
	}
	e2, err := insertEvent(t, r, 50, "s1")
	if err != nil {
		t.Fatal(err)
	}
	// Deleting e2 first (vt=50 < its deletion tt) is fine...
	if err := r.Delete(e2.ES); err != nil {
		t.Fatalf("first delete: %v", err)
	}
	// ...but then deleting e1 violates sequentiality on the deletion
	// stamps: its vt (5000) exceeds... actually min(tt,vt) must be >= the
	// prior max; prior max = max(tt=300, vt=50) = 300; e1's stamp is
	// (400, 5000): min = 400 >= 300, accepted. Check state advanced.
	if err := r.Delete(e1.ES); err != nil {
		t.Fatalf("second delete: %v", err)
	}
	// A third element whose deletion stamp regresses is rejected.
	e3, err := insertEvent(t, r, 60, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(e3.ES); err == nil {
		t.Fatal("regressing deletion stamp accepted")
	}
}

func TestInterIntervalDeletionBasis(t *testing.T) {
	r := relation.New(assignSchema(), tx.NewLogicalClock(0, 100))
	Attach(r, PerRelation, InterInterval{Spec: core.NonDecreasingIntervalsSpec(), Basis: core.TTDeletion})
	a, err := insertSpan(t, r, 100, 200, "x")
	if err != nil {
		t.Fatal(err)
	}
	b, err := insertSpan(t, r, 0, 50, "x")
	if err != nil {
		t.Fatal(err)
	}
	// Delete the later interval first: its start (100) anchors the order.
	if err := r.Delete(a.ES); err != nil {
		t.Fatal(err)
	}
	// Deleting the earlier-starting interval now violates non-decreasing
	// on the deletion basis.
	if err := r.Delete(b.ES); err == nil {
		t.Fatal("regressing interval deletion accepted")
	}
}

func TestDeterminedDeletionBasis(t *testing.T) {
	// Elements must be deleted exactly when their valid time arrives:
	// vt = m(e) with m(e) = tt⊣ under the deletion basis... M1 maps from
	// TTStart, so use a custom mapping on the closed element.
	det := Determined{Spec: core.DeterminedSpec{
		M: core.Mapping{Name: "at-deletion", Fn: func(e *element.Element) chronon.Chronon {
			return e.TTEnd
		}},
		Base:  core.GeneralSpec(),
		Basis: core.TTDeletion,
	}}
	r := relation.New(monitorSchema(), tx.NewLogicalClock(0, 100))
	Attach(r, PerRelation, det)
	e, err := insertEvent(t, r, 200, "s1") // tt=100, vt=200
	if err != nil {
		t.Fatal(err)
	}
	// Deleting at tt=200 satisfies vt = tt⊣; the next tt is 200.
	if err := r.Delete(e.ES); err != nil {
		t.Fatalf("aligned delete rejected: %v", err)
	}
	e2, err := insertEvent(t, r, 999, "s1") // tt=300, vt=999
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(e2.ES); err == nil { // tt=400 != 999
		t.Fatal("misaligned delete accepted")
	}
}

func TestEventConstraintDeleteBasisIgnoresInsert(t *testing.T) {
	// A deletion-basis event constraint must not fire on insert, and an
	// insertion-basis one must not fire on delete.
	r := relation.New(monitorSchema(), tx.NewLogicalClock(1000, 10))
	Attach(r, PerRelation,
		Event{Spec: core.PredictiveSpec(), Basis: core.TTInsertion})
	e, err := insertEvent(t, r, 5000, "s1")
	if err != nil {
		t.Fatal(err)
	}
	// Deleting now gives a deletion stamp (1020, 5000) which would violate
	// retroactivity but satisfies nothing we declared: must succeed.
	if err := r.Delete(e.ES); err != nil {
		t.Fatalf("delete under insertion-basis constraint: %v", err)
	}
}
