package constraint

import (
	"math/rand"
	"testing"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/tx"
)

// TestDifferentialEnforcement is the oracle test for the whole enforcement
// layer: drive random insert streams through an enforcer and verify that an
// insert is accepted iff the batch checker accepts the extension that would
// result — the intensional definition of §3 made executable.
func TestDifferentialEnforcement(t *testing.T) {
	type oracle struct {
		name  string
		mk    func() Constraint
		batch func(stamps []core.Stamp) error
	}
	unit := chronon.Seconds(60)
	mkIE := func(s core.InterEventSpec, err error) core.InterEventSpec {
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	specs := []core.InterEventSpec{
		core.SequentialEventsSpec(),
		core.NonDecreasingEventsSpec(),
		core.NonIncreasingEventsSpec(),
		mkIE(core.TTEventRegularSpec(unit)),
		mkIE(core.VTEventRegularSpec(unit)),
		mkIE(core.TemporalEventRegularSpec(unit)),
		mkIE(core.StrictVTEventRegularSpec(unit)),
	}
	eventSpecs := map[string]core.EventSpec{
		"retroactive": core.RetroactiveSpec(),
		"predictive":  core.PredictiveSpec(),
	}
	var oracles []oracle
	for _, s := range specs {
		s := s
		oracles = append(oracles, oracle{
			name:  s.String(),
			mk:    func() Constraint { return InterEvent{Spec: s} },
			batch: s.CheckAll,
		})
	}
	for name, s := range eventSpecs {
		s := s
		oracles = append(oracles, oracle{
			name:  name,
			mk:    func() Constraint { return Event{Spec: s} },
			batch: s.CheckAll,
		})
	}

	schema := relation.Schema{Name: "d", ValidTime: element.EventStamp, Granularity: chronon.Second}
	for _, oc := range oracles {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed))
			r := relation.New(schema, tx.NewLogicalClock(0, 60))
			Attach(r, PerRelation, oc.mk())
			var accepted []core.Stamp
			for i := 0; i < 80; i++ {
				// Propose valid times biased toward near the clock so every
				// class gets both accepts and rejects.
				nextTT := r.Clock().Now().Add(60)
				var vt chronon.Chronon
				switch rng.Intn(4) {
				case 0:
					vt = nextTT
				case 1:
					vt = nextTT.Add(-60 * int64(rng.Intn(4)))
				case 2:
					vt = nextTT.Add(60 * int64(rng.Intn(4)))
				default:
					vt = nextTT.Add(int64(rng.Intn(241)) - 120)
				}
				proposed := append(append([]core.Stamp(nil), accepted...),
					core.Stamp{TT: nextTT, VT: vt})
				wantOK := oc.batch(proposed) == nil
				_, err := r.Insert(relation.Insertion{VT: element.EventAt(vt)})
				gotOK := err == nil
				if gotOK != wantOK {
					t.Fatalf("%s seed %d step %d: incremental=%v batch=%v (vt=%v tt=%v)",
						oc.name, seed, i, gotOK, wantOK, vt, nextTT)
				}
				if gotOK {
					accepted = proposed
				}
			}
			if len(accepted) == 0 {
				t.Errorf("%s seed %d: every insert rejected — oracle degenerate", oc.name, seed)
			}
			if len(accepted) == 80 {
				continue // fully accepting stream is fine for loose classes
			}
		}
	}
}
