// Package constraint enforces declared temporal specializations on a
// temporal relation. The paper's definitions are intensional (§3): "for a
// relation schema to have a particular type, all its possible (non-empty)
// extensions must satisfy the definition of the type." Enforcement
// therefore validates every transaction against the declared
// specializations before it commits, rejecting any that would produce a
// violating extension — the mechanism by which "the particular time
// semantics of temporal relations" specified at design time are upheld.
//
// Each specialization may be declared on a per-relation basis or a
// per-partition basis (checked independently within each object
// surrogate's life-line, the per-surrogate partitioning of §2).
package constraint

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/surrogate"
)

// Scope selects the basis on which a specialization is applied (§3): per
// relation, or per partition of the per-surrogate partitioning.
type Scope uint8

const (
	// PerRelation applies the specialization to the whole relation.
	PerRelation Scope = iota
	// PerPartition applies it independently within each object
	// surrogate's partition.
	PerPartition
)

// String names the scope.
func (s Scope) String() string {
	if s == PerRelation {
		return "per relation"
	}
	return "per partition"
}

// Constraint is a declarable temporal specialization. A constraint builds
// one Checker per enforcement scope instance (one for the relation, or one
// per partition).
type Constraint interface {
	fmt.Stringer
	// NewChecker returns a fresh, empty checker for one scope instance.
	NewChecker() Checker
}

// Checker validates transactions incrementally. Check* methods must not
// mutate state; Note* methods commit a validated operation.
type Checker interface {
	CheckInsert(e *element.Element) error
	CheckDelete(e *element.Element, tt chronon.Chronon) error
	NoteInsert(e *element.Element)
	NoteDelete(e *element.Element, tt chronon.Chronon)
}

// Event declares an isolated-event specialization (§3.1) under a
// transaction-time basis and, for interval relations, a valid-time
// endpoint.
type Event struct {
	Spec     core.EventSpec
	Basis    core.TTBasis
	Endpoint core.VTEndpoint
}

// String renders the declaration.
func (c Event) String() string {
	return fmt.Sprintf("%v [%v basis, %v]", c.Spec, c.Basis, c.Endpoint)
}

// NewChecker returns the (stateless) checker.
func (c Event) NewChecker() Checker { return eventChecker{c} }

type eventChecker struct{ c Event }

func (k eventChecker) CheckInsert(e *element.Element) error {
	if k.c.Basis != core.TTInsertion {
		return nil
	}
	st, _ := core.StampOf(e, core.TTInsertion, k.c.Endpoint)
	return k.c.Spec.Check(st)
}

func (k eventChecker) CheckDelete(e *element.Element, tt chronon.Chronon) error {
	if k.c.Basis != core.TTDeletion {
		return nil
	}
	vt := e.VT.Start()
	if k.c.Endpoint == core.VTEnd {
		vt = e.VT.End()
	}
	return k.c.Spec.Check(core.Stamp{TT: tt, VT: vt})
}

func (k eventChecker) NoteInsert(*element.Element)                  {}
func (k eventChecker) NoteDelete(*element.Element, chronon.Chronon) {}

// Determined declares a determined specialization (§3.1): valid times must
// equal the mapping function's output and satisfy the base class.
type Determined struct {
	Spec core.DeterminedSpec
}

// String renders the declaration.
func (c Determined) String() string { return c.Spec.String() }

// NewChecker returns the (stateless) checker.
func (c Determined) NewChecker() Checker { return determinedChecker{c} }

type determinedChecker struct{ c Determined }

func (k determinedChecker) CheckInsert(e *element.Element) error {
	if k.c.Spec.Basis != core.TTInsertion {
		return nil
	}
	return k.c.Spec.Check(e)
}

func (k determinedChecker) CheckDelete(e *element.Element, tt chronon.Chronon) error {
	if k.c.Spec.Basis != core.TTDeletion {
		return nil
	}
	closed := *e
	closed.TTEnd = tt
	return k.c.Spec.Check(&closed)
}

func (k determinedChecker) NoteInsert(*element.Element)                  {}
func (k determinedChecker) NoteDelete(*element.Element, chronon.Chronon) {}

// InterEvent declares an inter-event specialization (§3.2): an ordering or
// regularity restriction across elements.
type InterEvent struct {
	Spec     core.InterEventSpec
	Basis    core.TTBasis
	Endpoint core.VTEndpoint
}

// String renders the declaration.
func (c InterEvent) String() string {
	return fmt.Sprintf("%v [%v basis, %v]", c.Spec, c.Basis, c.Endpoint)
}

// NewChecker returns a stateful checker tracking the scope's stamps.
func (c InterEvent) NewChecker() Checker {
	return &interEventChecker{c: c, ck: c.Spec.NewChecker()}
}

type interEventChecker struct {
	c  InterEvent
	ck *core.InterEventChecker
}

func (k *interEventChecker) stamp(e *element.Element, tt chronon.Chronon) core.Stamp {
	vt := e.VT.Start()
	if k.c.Endpoint == core.VTEnd {
		vt = e.VT.End()
	}
	return core.Stamp{TT: tt, VT: vt}
}

func (k *interEventChecker) CheckInsert(e *element.Element) error {
	if k.c.Basis != core.TTInsertion {
		return nil
	}
	return k.ck.Check(k.stamp(e, e.TTStart))
}

func (k *interEventChecker) CheckDelete(e *element.Element, tt chronon.Chronon) error {
	if k.c.Basis != core.TTDeletion {
		return nil
	}
	return k.ck.Check(k.stamp(e, tt))
}

func (k *interEventChecker) NoteInsert(e *element.Element) {
	if k.c.Basis == core.TTInsertion {
		k.ck.Note(k.stamp(e, e.TTStart))
	}
}

func (k *interEventChecker) NoteDelete(e *element.Element, tt chronon.Chronon) {
	if k.c.Basis == core.TTDeletion {
		k.ck.Note(k.stamp(e, tt))
	}
}

// IntervalRegular declares an isolated-interval regularity specialization
// (§3.3). Valid-interval regularity is checked at insertion; existence-
// interval regularity is checked when the element is logically deleted
// (its existence interval closes).
type IntervalRegular struct {
	Spec core.IntervalRegularSpec
}

// String renders the declaration.
func (c IntervalRegular) String() string { return c.Spec.String() }

// NewChecker returns the (stateless) checker.
func (c IntervalRegular) NewChecker() Checker { return intervalRegularChecker{c} }

type intervalRegularChecker struct{ c IntervalRegular }

func (k intervalRegularChecker) CheckInsert(e *element.Element) error {
	// At insertion the element is current, so only the valid-interval part
	// of the spec can be (and is) checked.
	return k.c.Spec.Check(e)
}

func (k intervalRegularChecker) CheckDelete(e *element.Element, tt chronon.Chronon) error {
	closed := *e
	closed.TTEnd = tt
	return k.c.Spec.Check(&closed)
}

func (k intervalRegularChecker) NoteInsert(*element.Element)                  {}
func (k intervalRegularChecker) NoteDelete(*element.Element, chronon.Chronon) {}

// InterInterval declares an inter-interval specialization (§3.4).
type InterInterval struct {
	Spec  core.InterIntervalSpec
	Basis core.TTBasis
}

// String renders the declaration.
func (c InterInterval) String() string {
	return fmt.Sprintf("%v [%v basis]", c.Spec, c.Basis)
}

// NewChecker returns a stateful checker.
func (c InterInterval) NewChecker() Checker {
	return &interIntervalChecker{c: c, ck: c.Spec.NewChecker()}
}

type interIntervalChecker struct {
	c  InterInterval
	ck *core.InterIntervalChecker
}

func (k *interIntervalChecker) stamp(e *element.Element, tt chronon.Chronon) (core.IntervalStamp, error) {
	iv, ok := e.VT.Interval()
	if !ok {
		return core.IntervalStamp{}, fmt.Errorf("constraint: %v declared on an event-stamped relation", k.c.Spec)
	}
	return core.IntervalStamp{TT: tt, VT: iv}, nil
}

func (k *interIntervalChecker) CheckInsert(e *element.Element) error {
	if k.c.Basis != core.TTInsertion {
		return nil
	}
	st, err := k.stamp(e, e.TTStart)
	if err != nil {
		return err
	}
	return k.ck.Check(st)
}

func (k *interIntervalChecker) CheckDelete(e *element.Element, tt chronon.Chronon) error {
	if k.c.Basis != core.TTDeletion {
		return nil
	}
	st, err := k.stamp(e, tt)
	if err != nil {
		return err
	}
	return k.ck.Check(st)
}

func (k *interIntervalChecker) NoteInsert(e *element.Element) {
	if k.c.Basis != core.TTInsertion {
		return
	}
	if st, err := k.stamp(e, e.TTStart); err == nil {
		k.ck.Note(st)
	}
}

func (k *interIntervalChecker) NoteDelete(e *element.Element, tt chronon.Chronon) {
	if k.c.Basis != core.TTDeletion {
		return
	}
	if st, err := k.stamp(e, tt); err == nil {
		k.ck.Note(st)
	}
}

// Enforcer applies a set of declared constraints to a relation at a given
// scope. It implements relation.Guard; attach it with relation.AddGuard or
// the Attach convenience function.
type Enforcer struct {
	scope       Scope
	constraints []Constraint
	checkers    map[surrogate.Surrogate][]Checker
}

// NewEnforcer builds an enforcer for the given scope and constraints.
func NewEnforcer(scope Scope, cs ...Constraint) *Enforcer {
	return &Enforcer{
		scope:       scope,
		constraints: cs,
		checkers:    make(map[surrogate.Surrogate][]Checker),
	}
}

// Attach builds an enforcer and registers it as a guard on the relation.
func Attach(r *relation.Relation, scope Scope, cs ...Constraint) *Enforcer {
	en := NewEnforcer(scope, cs...)
	r.AddGuard(en)
	return en
}

// Scope reports the enforcement scope.
func (en *Enforcer) Scope() Scope { return en.scope }

// Constraints lists the declared constraints.
func (en *Enforcer) Constraints() []Constraint { return en.constraints }

func (en *Enforcer) key(e *element.Element) surrogate.Surrogate {
	if en.scope == PerPartition {
		return e.OS
	}
	return surrogate.None
}

func (en *Enforcer) checkersFor(k surrogate.Surrogate) []Checker {
	if cks, ok := en.checkers[k]; ok {
		return cks
	}
	cks := make([]Checker, len(en.constraints))
	for i, c := range en.constraints {
		cks[i] = c.NewChecker()
	}
	en.checkers[k] = cks
	return cks
}

// CheckInsert implements relation.Guard.
func (en *Enforcer) CheckInsert(_ *relation.Relation, e *element.Element) error {
	for i, ck := range en.checkersFor(en.key(e)) {
		if err := ck.CheckInsert(e); err != nil {
			return fmt.Errorf("constraint %q (%v): %w", en.constraints[i], en.scope, err)
		}
	}
	return nil
}

// CheckDelete implements relation.Guard.
func (en *Enforcer) CheckDelete(_ *relation.Relation, e *element.Element, tt chronon.Chronon) error {
	for i, ck := range en.checkersFor(en.key(e)) {
		if err := ck.CheckDelete(e, tt); err != nil {
			return fmt.Errorf("constraint %q (%v): %w", en.constraints[i], en.scope, err)
		}
	}
	return nil
}

// Applied implements relation.Guard: commits the operation into the
// incremental checkers' state.
func (en *Enforcer) Applied(_ *relation.Relation, op relation.Op, e *element.Element, tt chronon.Chronon) {
	for _, ck := range en.checkersFor(en.key(e)) {
		if op == relation.OpInsert {
			ck.NoteInsert(e)
		} else {
			ck.NoteDelete(e, tt)
		}
	}
}
