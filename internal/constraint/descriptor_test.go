package constraint

import (
	"testing"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/interval"
)

// allDescribableConstraints builds one constraint per describable
// class/kind combination.
func allDescribableConstraints(t *testing.T) []Constraint {
	t.Helper()
	dt, dt2 := chronon.Seconds(10), chronon.Months(1)
	mkE := func(s core.EventSpec, err error) Constraint {
		if err != nil {
			t.Fatal(err)
		}
		return Event{Spec: s, Basis: core.TTDeletion, Endpoint: core.VTEnd}
	}
	mkIE := func(s core.InterEventSpec, err error) Constraint {
		if err != nil {
			t.Fatal(err)
		}
		return InterEvent{Spec: s}
	}
	mkIR := func(s core.IntervalRegularSpec, err error) Constraint {
		if err != nil {
			t.Fatal(err)
		}
		return IntervalRegular{Spec: s}
	}
	out := []Constraint{
		Event{Spec: core.GeneralSpec()},
		Event{Spec: core.RetroactiveSpec()},
		Event{Spec: core.PredictiveSpec()},
		mkE(core.DelayedRetroactiveSpec(dt)),
		mkE(core.EarlyPredictiveSpec(dt)),
		mkE(core.RetroactivelyBoundedSpec(dt2)),
		mkE(core.StronglyRetroactivelyBoundedSpec(dt)),
		mkE(core.DelayedStronglyRetroactivelyBoundedSpec(dt, chronon.Seconds(30))),
		mkE(core.PredictivelyBoundedSpec(dt)),
		mkE(core.StronglyPredictivelyBoundedSpec(dt)),
		mkE(core.EarlyStronglyPredictivelyBoundedSpec(dt, chronon.Seconds(30))),
		mkE(core.StronglyBoundedSpec(dt, chronon.Seconds(30))),
		mkE(core.DegenerateSpec(chronon.Minute)),
		InterEvent{Spec: core.SequentialEventsSpec()},
		InterEvent{Spec: core.NonDecreasingEventsSpec()},
		InterEvent{Spec: core.NonIncreasingEventsSpec()},
		mkIE(core.TTEventRegularSpec(dt)),
		mkIE(core.VTEventRegularSpec(dt)),
		mkIE(core.TemporalEventRegularSpec(dt)),
		mkIE(core.StrictTTEventRegularSpec(dt)),
		mkIE(core.StrictVTEventRegularSpec(dt)),
		mkIE(core.StrictTemporalEventRegularSpec(dt)),
		mkIR(core.TTIntervalRegularSpec(dt)),
		mkIR(core.VTIntervalRegularSpec(dt2)),
		mkIR(core.TemporalIntervalRegularSpec(dt)),
		mkIR(core.StrictTTIntervalRegularSpec(dt)),
		mkIR(core.StrictVTIntervalRegularSpec(dt2)),
		mkIR(core.StrictTemporalIntervalRegularSpec(dt)),
		InterInterval{Spec: core.SequentialIntervalsSpec()},
		InterInterval{Spec: core.NonDecreasingIntervalsSpec()},
		InterInterval{Spec: core.NonIncreasingIntervalsSpec()},
	}
	for _, rel := range interval.Relations() {
		out = append(out, InterInterval{Spec: core.SuccessiveTTSpec(rel), Basis: core.TTDeletion})
	}
	return out
}

// TestDescribeBuildIdentity: Describe then Build reproduces a constraint
// with the same string rendering (the renderings include every parameter),
// and re-describing yields an identical descriptor.
func TestDescribeBuildIdentity(t *testing.T) {
	for _, c := range allDescribableConstraints(t) {
		d, ok := Describe(c, PerPartition)
		if !ok {
			t.Errorf("%v not describable", c)
			continue
		}
		rebuilt, err := d.Build()
		if err != nil {
			t.Errorf("%v: Build failed: %v", c, err)
			continue
		}
		if rebuilt.String() != c.String() {
			t.Errorf("rebuild drift: %q vs %q", rebuilt.String(), c.String())
		}
		d2, ok := Describe(rebuilt, PerPartition)
		if !ok {
			t.Errorf("rebuilt %v not describable", rebuilt)
			continue
		}
		if d.Kind != d2.Kind || d.Class != d2.Class || d.Scope != d2.Scope ||
			d.Basis != d2.Basis || d.Endpoint != d2.Endpoint || d.Granularity != d2.Granularity ||
			len(d.Bounds) != len(d2.Bounds) {
			t.Errorf("descriptor drift: %+v vs %+v", d, d2)
			continue
		}
		for i := range d.Bounds {
			if d.Bounds[i] != d2.Bounds[i] {
				t.Errorf("bound drift at %d: %v vs %v", i, d.Bounds[i], d2.Bounds[i])
			}
		}
	}
}

func TestDescriptorBuildRejectsNonsense(t *testing.T) {
	bad := []Descriptor{
		{Kind: DescEvent, Class: core.GloballySequentialEvents},
		{Kind: DescEvent, Class: core.DelayedRetroactive}, // missing bound
		{Kind: DescInterEvent, Class: core.Retroactive},
		{Kind: DescInterEvent, Class: core.TTEventRegular}, // missing unit
		{Kind: DescIntervalRegular, Class: core.Retroactive, Bounds: []chronon.Duration{chronon.Seconds(1)}},
		{Kind: DescIntervalRegular, Class: core.VTIntervalRegular}, // missing unit
		{Kind: DescInterInterval, Class: core.Retroactive},
		{Kind: DescriptorKind(99)},
		{Kind: DescEvent, Class: core.Degenerate}, // zero granularity
	}
	for i, d := range bad {
		if _, err := d.Build(); err == nil {
			t.Errorf("bad descriptor %d built successfully", i)
		}
	}
}

func TestDescriptorKindStrings(t *testing.T) {
	for k, want := range map[DescriptorKind]string{
		DescEvent: "event", DescInterEvent: "inter-event",
		DescIntervalRegular: "interval-regular", DescInterInterval: "inter-interval",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if DescriptorKind(9).String() != "DescriptorKind(9)" {
		t.Error("fallback kind name wrong")
	}
	d, _ := Describe(Event{Spec: core.RetroactiveSpec()}, PerRelation)
	if d.String() == "" {
		t.Error("descriptor String empty")
	}
}
