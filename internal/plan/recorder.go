package plan

import "sync/atomic"

// KindStats is one plan kind's lifetime accounting.
type KindStats struct {
	Queries int64
	Touched int64
}

// Recorder accumulates per-plan-kind query and touched counts. The zero
// value is ready to use, and Record is safe for concurrent callers — the
// catalog records under its shared (read) lock.
type Recorder struct {
	stats [nKinds]struct {
		queries atomic.Int64
		touched atomic.Int64
	}
}

// Record accounts one executed plan against its access-path leaf kind.
func (r *Recorder) Record(k NodeKind, touched int) {
	if int(k) >= nKinds {
		return
	}
	r.stats[k].queries.Add(1)
	r.stats[k].touched.Add(int64(touched))
}

// Snapshot returns the non-zero kinds keyed by their slugs.
func (r *Recorder) Snapshot() map[string]KindStats {
	out := make(map[string]KindStats)
	for k := 0; k < nKinds; k++ {
		q := r.stats[k].queries.Load()
		if q == 0 {
			continue
		}
		out[NodeKind(k).String()] = KindStats{Queries: q, Touched: r.stats[k].touched.Load()}
	}
	return out
}
