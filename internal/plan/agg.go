package plan

// Row-vs-columnar choice for window aggregates. An aggregate consumes
// its entire candidate set, so the decision is about per-row evaluation
// cost, not how few rows an index can touch: the columnar engine decodes
// sealed runs straight into flat timestamp columns (a constant-factor
// discount per row) and prunes whole runs by zone-map envelope, while
// the row engine pays per-element method dispatch but can enter through
// the same access paths Build picks — which wins when a narrow
// valid-time clamp makes a binary search skip most of the store.

import "fmt"

// EnginePick forces or frees the row/columnar decision (the TSQL
// `USING ROW | COLUMNAR` hint).
type EnginePick uint8

// Engine picks.
const (
	PickAuto EnginePick = iota
	PickRow
	PickColumnar
)

func (p EnginePick) String() string {
	switch p {
	case PickRow:
		return "row"
	case PickColumnar:
		return "columnar"
	}
	return "auto"
}

// Cost-model constants: a sealed columnar row costs 1/colBatchFactor of
// a row-engine row (it decodes straight into flat columns); an unsealed
// tail row costs colTailFactor row-units — the reader gathers it field by
// field into the batch AND the fold still visits it, so with nothing
// sealed the batch path can never beat the row engine. Each run costs
// one envelope probe, plus a fixed batch-machinery setup.
const (
	colBatchFactor = 8
	colTailFactor  = 2
	colSetupCost   = 16
)

// coveredEst estimates how many stored rows a query's valid-time clamp
// covers, by linear interpolation over the store's observed extent.
// Unbounded queries and stores without an extent cover everything.
func coveredEst(a Access, q Query) int {
	if q.Kind != QTimeslice && q.Kind != QVTRange {
		return a.N
	}
	if !a.HasVTExtent || a.VTMax <= a.VTMin {
		return a.N
	}
	lo, hi := q.VTLo, q.VTHi
	if lo < a.VTMin {
		lo = a.VTMin
	}
	if hi > a.VTMax {
		hi = a.VTMax
	}
	if hi <= lo {
		return 0
	}
	frac := float64(hi-lo) / float64(a.VTMax-a.VTMin)
	est := int(frac * float64(a.N))
	if est > a.N {
		est = a.N
	}
	return est
}

// columnarCost prices the batch path: covered sealed rows at the batch
// discount, covered tail rows at the gather surcharge, every run's
// envelope probe, and the setup constant. Zone maps prune runs outside
// the clamp, which the coverage scaling models.
func columnarCost(a Access, covered int) int {
	n := a.N
	if n < 1 {
		return colSetupCost
	}
	frac := float64(covered) / float64(n)
	sealed := int(frac * float64(a.Sealed))
	tail := int(frac * float64(a.N-a.Sealed))
	return sealed/colBatchFactor + tail*colTailFactor + a.Runs + colSetupCost
}

// BuildAggregate plans a window aggregate's input: the row access path
// (exactly what Build would run) against the columnar batch scan, by
// estimated evaluation cost. pick forces one side; PickAuto compares.
func BuildAggregate(a Access, q Query, pick EnginePick) *Node {
	row := Build(a, q)
	covered := coveredEst(a, q)
	rowCost := row.Leaf().Est + covered
	colCost := columnarCost(a, covered)
	useCol := colCost < rowCost
	switch pick {
	case PickRow:
		useCol = false
	case PickColumnar:
		useCol = true
	}
	if !useCol {
		return row
	}
	return &Node{
		Kind: ColumnarScan,
		Org:  a.Org,
		Note: fmt.Sprintf("sealed %d/%d", a.Sealed, a.N),
		Est:  colCost,
	}
}

// NewWindowAggregate wraps a node in the window-aggregate operator; note
// describes the aggregate list and window geometry for EXPLAIN.
func NewWindowAggregate(in *Node, note string) *Node {
	return &Node{Kind: WindowAggregate, Note: note, Est: in.Est, Input: in}
}
