// Package plan is the typed query-plan vocabulary shared by every layer
// that reasons about temporal access paths: the query engine builds and
// executes plan trees, the storage advisor consults the same cost model it
// advises for, tsql compiles statements to plans (and renders them for
// EXPLAIN), the catalog counts queries per plan kind, and the wire carries
// the structured tree to clients. A plan is a small decorator tree — one
// access-path leaf (full scan, binary search, tt-window pushdown, index
// seek) under zero or more filter/limit decorators — so the paper's claim
// that declared specializations license better "query processing
// strategies" is a first-class, observable value instead of a free-form
// string.
//
// The package sits below storage in the import order (it knows only the
// organization vocabulary, not the stores), which is what lets the advisor
// and the engine share one estimator without a cycle.
package plan

import (
	"fmt"
	"math/bits"
	"strings"
)

// Org identifies a physical organization. The names mirror storage.Kind
// exactly so rendered plans stay byte-identical across the two packages.
type Org uint8

// Physical organizations.
const (
	// OrgHeap is arrival order with no exploitable ordering.
	OrgHeap Org = iota
	// OrgTTLog is the transaction-time-ordered arrival log.
	OrgTTLog
	// OrgVTLog is the log whose arrival order is simultaneously valid-time
	// order (licensed by a non-decreasing declaration).
	OrgVTLog
)

func (o Org) String() string {
	switch o {
	case OrgTTLog:
		return "tt-ordered log"
	case OrgVTLog:
		return "vt-ordered log"
	}
	return "heap"
}

// Access describes the physical capabilities of a store as the planner
// sees them: its organization, size, and any declared bounds or secondary
// indexes that unlock extra access paths.
type Access struct {
	Org Org
	// N is the number of stored element versions (the full-scan cost).
	N int
	// VTIndex reports a secondary B-tree valid-time index over a heap
	// (storage.IndexedEventStore).
	VTIndex bool
	// HasOffsetBounds reports a declared two-sided fixed bound
	// OffsetLo ≤ vt − tt ≤ OffsetHi, which converts valid-time predicates
	// into transaction-time windows over a tt-ordered log.
	HasOffsetBounds    bool
	OffsetLo, OffsetHi int64
	// Sealed is how many leading elements sit inside the compactor's
	// delta-encoded frozen runs, and Runs how many runs hold them; both
	// are zero for stores the compactor never sealed.
	Sealed int
	Runs   int
	// HasVTExtent reports the store's observed valid-time span
	// [VTMin, VTMax) — an estimate the aggregate costing uses to judge
	// what fraction of the store a valid-time clamp covers. Exact for
	// vt-ordered stores, absent otherwise.
	HasVTExtent  bool
	VTMin, VTMax int64
}

// QueryKind discriminates the temporal query shapes the planner knows.
type QueryKind uint8

// Query kinds.
const (
	// QCurrent is the conventional query: the current state.
	QCurrent QueryKind = iota
	// QTimeslice is the historical query at one valid-time instant.
	QTimeslice
	// QVTRange is the historical query over a valid-time window [lo, hi).
	QVTRange
	// QRollback is the rollback query at one transaction-time instant.
	QRollback
	// QAsOf is the bitemporal query: valid at vt as stored at tt. No
	// single-dimension organization serves it; it always scans.
	QAsOf
)

func (k QueryKind) String() string {
	switch k {
	case QCurrent:
		return "current"
	case QTimeslice:
		return "timeslice"
	case QVTRange:
		return "vt-range"
	case QRollback:
		return "rollback"
	case QAsOf:
		return "asof"
	}
	return "unknown"
}

// Query is the logical query the planner chooses an access path for.
// Valid-time predicates are the half-open chronon window [VTLo, VTHi);
// QTimeslice at instant t is the window [t, t+1).
type Query struct {
	Kind       QueryKind
	VTLo, VTHi int64
	TT         int64 // QRollback and QAsOf
}

// NodeKind discriminates plan nodes. The first five are access-path
// leaves; the rest are decorators.
type NodeKind uint8

// Plan node kinds.
const (
	// FullScan reads every stored version.
	FullScan NodeKind = iota
	// TTBinarySearch binary-searches the transaction-time order for the
	// prefix present at tt (rollback on either log organization).
	TTBinarySearch
	// VTBinarySearch binary-searches the valid-time order of a vt-ordered
	// log for the window [VTLo, VTHi).
	VTBinarySearch
	// TTWindowPushdown converts a valid-time predicate through declared
	// offset bounds into a transaction-time window binary-searched on the
	// tt-ordered log (the bounded-specialization strategy of §3.1).
	TTWindowPushdown
	// BTreeIndexSeek descends a secondary B-tree valid-time index.
	BTreeIndexSeek
	// CurrentState restricts to undeleted (tt⊣ = now) versions.
	CurrentState
	// Filter applies residual predicates (WHEN/WHERE clauses).
	Filter
	// Limit truncates the result to the first Count rows.
	Limit
	// ColumnarScan is the batch leaf: it reads sealed delta-encoded runs
	// column-at-a-time (and gathers the unsealed tail), pruning whole
	// runs by their zone-map envelopes.
	ColumnarScan
	// WindowAggregate folds its input into temporal windows (GROUP BY
	// WINDOW): tumbling, rolling, or cumulative over valid time.
	WindowAggregate
)

// String returns the kind's stable slug, used as the per-plan-kind metrics
// key and the wire encoding.
func (k NodeKind) String() string {
	switch k {
	case FullScan:
		return "full-scan"
	case TTBinarySearch:
		return "tt-binary-search"
	case VTBinarySearch:
		return "vt-binary-search"
	case TTWindowPushdown:
		return "tt-window-pushdown"
	case BTreeIndexSeek:
		return "btree-index-seek"
	case CurrentState:
		return "current-state"
	case Filter:
		return "filter"
	case Limit:
		return "limit"
	case ColumnarScan:
		return "columnar-scan"
	case WindowAggregate:
		return "window-aggregate"
	}
	return "unknown"
}

// nKinds bounds NodeKind for dense per-kind counters.
const nKinds = int(WindowAggregate) + 1

// Node is one plan-tree node. Leaves (access paths) have a nil Input;
// decorators wrap exactly one Input.
type Node struct {
	Kind NodeKind
	// Org is the organization an access-path leaf reads.
	Org Org
	// Bitemporal marks the FullScan that selects on both time dimensions
	// at once (AS OF queries), which no single organization serves.
	Bitemporal bool
	// WinLo, WinHi are the inclusive tt⊢ window of a TTWindowPushdown.
	WinLo, WinHi int64
	// Note annotates Filter decorators (which predicates remain).
	Note string
	// Count is a Limit decorator's row cap.
	Count int
	// Est is the estimated touched count (for decorators, the input's).
	Est int

	Input *Node
}

// Leaf walks the decorator chain to the access-path leaf.
func (n *Node) Leaf() *Node {
	for n.Input != nil {
		n = n.Input
	}
	return n
}

// String renders the access path as the engine's legacy one-line plan
// name. The formats are golden-pinned by tests across the repo; keep them
// byte-identical.
func (n *Node) String() string {
	leaf := n.Leaf()
	switch leaf.Kind {
	case TTWindowPushdown:
		return "tt-window binary search (bounded specialization)"
	case TTBinarySearch, VTBinarySearch:
		return fmt.Sprintf("binary search (%v)", leaf.Org)
	case BTreeIndexSeek:
		return "b-tree index seek (vt index)"
	case ColumnarScan:
		return fmt.Sprintf("columnar scan (%v)", leaf.Org)
	}
	if leaf.Bitemporal {
		return "full scan (bitemporal)"
	}
	return fmt.Sprintf("full scan (%v)", leaf.Org)
}

// Render returns the EXPLAIN form: one line per node, children indented
// under their decorators, access-path leaves carrying the cost estimate.
func (n *Node) Render() string {
	var b strings.Builder
	for depth := 0; n != nil; n, depth = n.Input, depth+1 {
		if depth > 0 {
			b.WriteByte('\n')
			b.WriteString(strings.Repeat("  ", depth))
			b.WriteString("-> ")
		}
		b.WriteString(n.line())
	}
	return b.String()
}

func (n *Node) line() string {
	switch n.Kind {
	case Limit:
		return fmt.Sprintf("limit %d", n.Count)
	case Filter:
		return fmt.Sprintf("filter (%s)", n.Note)
	case CurrentState:
		return "current-state"
	case TTWindowPushdown:
		return fmt.Sprintf("tt-window-pushdown tt in [%d, %d] (est. touched %d)", n.WinLo, n.WinHi, n.Est)
	case BTreeIndexSeek:
		return fmt.Sprintf("btree-index-seek on vt index (est. touched %d)", n.Est)
	case WindowAggregate:
		return fmt.Sprintf("window-aggregate %s (est. touched %d)", n.Note, n.Est)
	case ColumnarScan:
		if n.Note != "" {
			return fmt.Sprintf("columnar-scan on %s (%s, est. touched %d)", n.Org, n.Note, n.Est)
		}
	}
	target := n.Org.String()
	if n.Bitemporal {
		target = "bitemporal"
	}
	return fmt.Sprintf("%s on %s (est. touched %d)", n.Kind, target, n.Est)
}

// bsearchCost estimates a binary-search access: the probe plus the answer
// neighborhood, never worse than a scan.
func bsearchCost(n int) int {
	if n <= 1 {
		return n
	}
	c := bits.Len(uint(n)) + 1
	if c > n {
		return n
	}
	return c
}

// pushdownCost estimates a tt-window access: the window span plus the
// probe, never worse than a scan.
func pushdownCost(n int, lo, hi int64) int {
	if hi < lo {
		return 0
	}
	span := hi - lo + 1
	if span >= int64(n) {
		return n
	}
	return int(span) + 1
}

// NewCurrentState wraps a node in the current-state restriction.
func NewCurrentState(in *Node) *Node {
	return &Node{Kind: CurrentState, Est: in.Est, Input: in}
}

// NewFilter wraps a node in a residual-predicate decorator.
func NewFilter(in *Node, note string) *Node {
	return &Node{Kind: Filter, Note: note, Est: in.Est, Input: in}
}

// NewLimit wraps a node in a row cap.
func NewLimit(in *Node, count int) *Node {
	return &Node{Kind: Limit, Count: count, Est: in.Est, Input: in}
}

// Build is the planner: it enumerates the access paths the store's
// capabilities make sound for the query, costs each with the shared
// estimator, and keeps the cheapest. Specialized candidates are generated
// first and replaced only on strictly lower cost, so a specialization that
// ties a scan (tiny or empty stores) still wins — the declared ordering is
// what licenses the strategy, and ties must not erase it.
func Build(a Access, q Query) *Node {
	var best *Node
	consider := func(c *Node) {
		if best == nil || c.Est < best.Est {
			best = c
		}
	}
	switch q.Kind {
	case QRollback:
		if a.Org == OrgTTLog || a.Org == OrgVTLog {
			consider(&Node{Kind: TTBinarySearch, Org: a.Org, Est: bsearchCost(a.N)})
		}
		consider(&Node{Kind: FullScan, Org: a.Org, Est: a.N})
		return best
	case QAsOf:
		return &Node{Kind: FullScan, Bitemporal: true, Est: a.N}
	case QTimeslice, QVTRange:
		if a.Org == OrgTTLog && a.HasOffsetBounds {
			lo, hi := q.VTLo-a.OffsetHi, q.VTHi-1-a.OffsetLo
			consider(&Node{
				Kind: TTWindowPushdown, Org: a.Org,
				WinLo: lo, WinHi: hi,
				Est: pushdownCost(a.N, lo, hi),
			})
		}
		if a.Org == OrgVTLog {
			consider(&Node{Kind: VTBinarySearch, Org: a.Org, Est: bsearchCost(a.N)})
		}
		if a.VTIndex {
			consider(&Node{Kind: BTreeIndexSeek, Org: a.Org, Est: bsearchCost(a.N)})
		}
		consider(&Node{Kind: FullScan, Org: a.Org, Est: a.N})
		return NewCurrentState(best)
	default: // QCurrent
		return NewCurrentState(&Node{Kind: FullScan, Org: a.Org, Est: a.N})
	}
}
