// Command taxonomy prints the paper's figures as text: the Figure 1
// regions of the isolated-event specializations, the generalization/
// specialization lattices of Figures 2-5, and the §3.1 completeness
// enumeration.
//
// Usage:
//
//	taxonomy            # everything
//	taxonomy -fig 1     # just one figure (1-5)
//	taxonomy -complete  # just the completeness enumeration
package main

import (
	"flag"
	"fmt"
	"os"

	ts "repro"
)

func main() {
	fig := flag.Int("fig", 0, "print only this figure (1-5)")
	complete := flag.Bool("complete", false, "print only the completeness enumeration")
	size := flag.Int("size", 24, "grid size for Figure 1 panels")
	flag.Parse()

	switch {
	case *complete:
		printCompleteness()
	case *fig == 0:
		printFigure1(*size)
		printLattice(2, ts.CategoryIsolatedEvent)
		printLattice(3, ts.CategoryInterEventOrder)
		printLattice(4, ts.CategoryInterEventRegular)
		fmt.Println("§3.3 interval regularity (same structure as Figure 4):")
		fmt.Println(ts.RenderLattice(ts.CategoryIntervalRegular))
		printLattice(5, ts.CategoryInterInterval)
		printCompleteness()
	case *fig == 1:
		printFigure1(*size)
	case *fig == 2:
		printLattice(2, ts.CategoryIsolatedEvent)
	case *fig == 3:
		printLattice(3, ts.CategoryInterEventOrder)
	case *fig == 4:
		printLattice(4, ts.CategoryInterEventRegular)
	case *fig == 5:
		printLattice(5, ts.CategoryInterInterval)
	default:
		fmt.Fprintf(os.Stderr, "taxonomy: no figure %d\n", *fig)
		os.Exit(2)
	}
}

func printFigure1(size int) {
	fmt.Println("Figure 1: Restrictions on Time-stamps in Isolated Event Based Specialized Temporal Relations")
	fmt.Printf("(Δt = %d chronons, Δt₂ = %d chronons; '#' permitted, '·' forbidden)\n\n", size/3, 2*size/3)
	inner := ts.Seconds(int64(size / 3))
	outer := ts.Seconds(int64(2 * size / 3))
	specs := []ts.EventSpec{ts.GeneralSpec(), ts.RetroactiveSpec(), ts.PredictiveSpec()}
	for _, build := range []func() (ts.EventSpec, error){
		func() (ts.EventSpec, error) { return ts.DelayedRetroactiveSpec(inner) },
		func() (ts.EventSpec, error) { return ts.EarlyPredictiveSpec(inner) },
		func() (ts.EventSpec, error) { return ts.RetroactivelyBoundedSpec(inner) },
		func() (ts.EventSpec, error) { return ts.StronglyRetroactivelyBoundedSpec(inner) },
		func() (ts.EventSpec, error) { return ts.DelayedStronglyRetroactivelyBoundedSpec(inner, outer) },
		func() (ts.EventSpec, error) { return ts.PredictivelyBoundedSpec(inner) },
		func() (ts.EventSpec, error) { return ts.StronglyPredictivelyBoundedSpec(inner) },
		func() (ts.EventSpec, error) { return ts.EarlyStronglyPredictivelyBoundedSpec(inner, outer) },
		func() (ts.EventSpec, error) { return ts.StronglyBoundedSpec(inner, inner) },
		func() (ts.EventSpec, error) { return ts.DegenerateSpec(ts.Second) },
	} {
		s, err := build()
		if err != nil {
			fmt.Fprintf(os.Stderr, "taxonomy: %v\n", err)
			os.Exit(1)
		}
		specs = append(specs, s)
	}
	for _, s := range specs {
		fmt.Println(ts.RenderRegion(s, size))
	}
}

func printLattice(n int, cat ts.Category) {
	fmt.Printf("Figure %d: Generalization/Specialization Structure (%v)\n", n, cat)
	fmt.Println(ts.RenderLattice(cat))
}

func printCompleteness() {
	c := ts.EnumerateRegions()
	fmt.Println("Completeness enumeration (§3.1):")
	fmt.Printf("  regions with zero boundary lines: %d (the general relation)\n", c.ZeroLines)
	fmt.Printf("  regions with one boundary line:   %d\n", c.OneLine)
	fmt.Printf("  regions with two boundary lines:  %d\n", c.TwoLines)
	fmt.Printf("  specialized relation types:       %d (the paper's \"total of eleven types\")\n", c.Specializations())
	fmt.Println("  classes realized:")
	for _, cls := range c.Classes {
		fmt.Printf("    - %v\n", cls)
	}
}
