// Command classify reads a relation extension and reports every temporal
// specialization it satisfies, with synthesized parameters, plus the
// most-specific classes — the design-time use of the taxonomy.
//
// Input is CSV on stdin (or a file given with -in), one element per line:
//
//	tt,vt          for an event relation
//	tt,vts,vte     for an interval relation (half-open valid interval)
//
// Times are integers (chronons) or "YYYY-MM-DD[ HH:MM:SS]" date-times.
// Lines starting with '#' are skipped. An optional first column "os=<n>"
// assigns the element to an object partition for per-partition analysis.
// Alternatively, -tsbl classifies a persisted backlog file.
//
// Usage:
//
//	classify [-in file.csv | -tsbl file.tsbl] [-gran second] [-basis insertion]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	ts "repro"
	"repro/internal/ingest"
)

func main() {
	in := flag.String("in", "", "input CSV file (default stdin)")
	tsbl := flag.String("tsbl", "", "classify a persisted backlog file instead of CSV")
	granFlag := flag.String("gran", "second", "granularity for the degenerate test")
	basisFlag := flag.String("basis", "insertion", "transaction-time basis: insertion or deletion")
	flag.Parse()

	gran, err := ts.ParseGranularity(*granFlag)
	if err != nil {
		fatal(err)
	}
	var basis ts.TTBasis
	switch *basisFlag {
	case "insertion":
		basis = ts.TTInsertion
	case "deletion":
		basis = ts.TTDeletion
	default:
		fatal(fmt.Errorf("unknown basis %q", *basisFlag))
	}

	var elems []*ts.Element
	var parts map[ts.Surrogate][]*ts.Element
	if *tsbl != "" {
		rel, err := ts.LoadBacklog(*tsbl, ts.NewLogicalClock(0, 1))
		if err != nil {
			fatal(err)
		}
		gran = rel.Schema().Granularity
		elems = rel.Versions()
		parts = rel.Partitions()
	} else {
		var r io.Reader = os.Stdin
		if *in != "" {
			f, err := os.Open(*in)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			r = f
		}
		var err error
		elems, parts, err = ingest.CSV(r)
		if err != nil {
			fatal(err)
		}
	}
	if len(elems) == 0 {
		fatal(fmt.Errorf("no elements in input"))
	}

	rep := ts.Classify(elems, basis, gran)
	fmt.Printf("%d elements, %v basis, granularity %v\n\n", len(elems), basis, gran)
	fmt.Println("Satisfied specializations:")
	for _, f := range rep.Findings {
		fmt.Printf("  %v\n", f)
	}
	fmt.Println("\nMost specific:")
	for _, f := range rep.MostSpecific() {
		fmt.Printf("  %v\n", f)
	}

	if len(parts) > 1 {
		prep := ts.ClassifyPerPartition(parts, basis, gran)
		fmt.Printf("\nPer-partition (across %d partitions):\n", len(parts))
		for _, f := range prep.Findings {
			fmt.Printf("  %v\n", f)
		}
	}

	advice := ts.Advise(rep.Classes(), elems[0].VT.Kind())
	fmt.Printf("\nStorage advice: %v\n", advice.Store)
	for _, reason := range advice.Reasons {
		fmt.Printf("  - %s\n", reason)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "classify: %v\n", err)
	os.Exit(1)
}
