// Command tsdb is a small interactive (or batch, via stdin) bitemporal
// database shell: create relations, declare temporal specializations on
// them, run insert/delete/modify transactions — watching violating ones be
// rejected — issue temporal queries (including the SELECT language), and
// persist relations as checksummed backlogs.
//
// Example session:
//
//	create temps event second
//	declare temps per-relation retroactive sequential
//	insert temps vt=100
//	select * from temps when valid at 100
//	save temps temps.tsbl
//
// Run "help" inside the shell for the full command set; the implementation
// lives in internal/shell.
package main

import (
	"os"

	"repro/internal/shell"
)

func main() {
	interactive := false
	if fi, err := os.Stdin.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 {
		interactive = true
	}
	shell.New(os.Stdout).Run(os.Stdin, interactive)
}
