// Command tsdbd serves a durable catalog of bitemporal relations over
// HTTP/JSON. It loads every persisted relation from the data directory on
// boot, snapshots dirty relations on an interval and on demand
// (POST /v1/snapshot), and flushes the whole catalog atomically on
// SIGINT/SIGTERM before exiting.
//
// Mutations are write-ahead logged by default (-wal-dir, defaulting to
// <data>/wal): each insert, delete, modify, declare, and create is appended
// and made durable per -wal-sync before the request is acknowledged, and the
// log is replayed over the snapshots on boot, so a kill -9 loses nothing
// acknowledged. Pass -wal-dir off for the pre-WAL snapshot-only behavior.
//
// With -follow the process is a read-only replica instead: it tails the
// named primary's WAL-shipping feed (/v1/repl/tail), replays the durable
// frames into its catalog, stamps every response with the staleness bound
// X-Tsdbd-Staleness-Ms, and rejects mutations with the typed "read_only"
// error. Followers keep no WAL of their own — their durability is the
// periodic snapshot, and on restart they resume the tail from the lowest
// persisted watermark.
//
// Every committed frame is also chained into a per-relation Merkle tree
// whose epoch roots the primary signs (key at <data>/integrity.ed25519),
// so clients can verify inclusion and append-only history without
// trusting the server. Sealed artifacts carry content checksums, and a
// background scrubber (-scrub-interval, paced by -scrub-rate) re-reads
// them; a mismatch quarantines the relation read-only and triggers
// repair. `tsdbd -addr HOST:PORT verify [rel ...]` runs that pass on
// demand against a live server.
//
// Usage:
//
//	tsdbd -addr :7070 -data ./tsdb-data -snapshot-interval 30s -wal-sync group
//	tsdbd -addr :7071 -data ./tsdb-follower -follow http://localhost:7070
//	tsdbd -addr localhost:7070 verify emp
//
// Quickstart against a running server:
//
//	curl -s localhost:7070/healthz
//	curl -s -X POST localhost:7070/v1/relations -d '{"schema":{
//	  "name":"emp","valid_time":"event","granularity":1,
//	  "invariant":[{"name":"name","type":"string"}],
//	  "varying":[{"name":"salary","type":"int"}]}}'
//	curl -s -X POST localhost:7070/v1/relations/emp/insert \
//	  -d '{"vt":{"event":100},"invariant":[{"kind":"string","str":"merrie"}],
//	       "varying":[{"kind":"int","int":27000}]}'
//	curl -s -X POST localhost:7070/v1/select \
//	  -d '{"query":"SELECT name, salary FROM emp"}'
//	curl -s localhost:7070/metrics
//
// Bulk loads should ride the batched ingest path instead of per-element
// inserts: POST /v1/relations/{name}/elements:batch journals a whole
// batch as one WAL frame, and /v1/ingest/csv streams header-driven CSV
// (capped by -ingest-max-body) into server-side batches:
//
//	curl -s -X POST --data-binary @rows.csv \
//	  'localhost:7070/v1/ingest/csv?relation=emp'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	pprofhttp "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/client"
	"repro/internal/catalog"
	"repro/internal/integrity"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":7070", "listen address")
	flag.StringVar(&o.dataDir, "data", "tsdb-data", "data directory for persisted relations")
	flag.DurationVar(&o.snapEvery, "snapshot-interval", 30*time.Second, "how often to flush dirty relations (0 disables)")
	flag.DurationVar(&o.reqTimeout, "request-timeout", 15*time.Second, "per-request handling timeout")
	flag.Int64Var(&o.maxBody, "max-body", 1<<20, "maximum request body size in bytes")
	flag.Int64Var(&o.ingestMaxBody, "ingest-max-body", 1<<30, "maximum streaming bulk-load (/v1/ingest/csv) body size in bytes")
	flag.DurationVar(&o.readTimeout, "read-timeout", 30*time.Second, "maximum time to read one request, body included (0 disables)")
	flag.DurationVar(&o.writeTimeout, "write-timeout", 30*time.Second, "maximum time to write one response (0 disables)")
	flag.DurationVar(&o.idleTimeout, "idle-timeout", 60*time.Second, "keep-alive idle timeout")
	flag.StringVar(&o.walDir, "wal-dir", "", "write-ahead log directory (default <data>/wal; \"off\" disables durability logging)")
	flag.StringVar(&o.walSync, "wal-sync", "group", "WAL sync policy: always, group, or interval")
	flag.Int64Var(&o.walSegBytes, "wal-segment-bytes", 64<<20, "WAL segment roll threshold in bytes")
	flag.IntVar(&o.admitReads, "admit-reads", 0, "concurrent read-class requests admitted (0 = default 64; -1 disables admission control)")
	flag.IntVar(&o.admitWrites, "admit-writes", 0, "concurrent write-class requests admitted (0 = default 16)")
	flag.IntVar(&o.admitAdmin, "admit-admin", 0, "concurrent admin-class requests admitted (0 = default 2)")
	flag.IntVar(&o.admitQueue, "admit-queue", 0, "bounded wait-queue depth per class (0 = class default)")
	flag.DurationVar(&o.admitMaxWait, "admit-max-wait", 0, "longest a queued request may wait for admission (0 = class default)")
	flag.Int64Var(&o.cacheBytes, "query-cache", 32<<20, "plan-keyed query result cache budget in bytes (0 disables)")
	flag.BoolVar(&o.pprof, "pprof", false, "expose /debug/pprof profiling endpoints (bypass admission control)")
	flag.StringVar(&o.follow, "follow", "", "run as a read-only follower of the given primary URL (disables the local WAL)")
	flag.BoolVar(&o.autoSpecialize, "auto-specialize", false, "run the background physical-design advisor: infer specialization classes from the observed extension, migrate stores when the advice changes, and compact append-only relations")
	flag.DurationVar(&o.adviseEvery, "advise-interval", 15*time.Second, "how often the -auto-specialize advisor re-examines the catalog")
	flag.DurationVar(&o.scrubEvery, "scrub-interval", 5*time.Minute, "how often the background integrity scrubber re-verifies every sealed artifact (0 disables)")
	flag.Int64Var(&o.scrubRate, "scrub-rate", 8<<20, "scrub read bandwidth cap in bytes/sec (0 = unpaced)")
	flag.Parse()

	if args := flag.Args(); len(args) > 0 {
		if err := runCommand(o, args); err != nil {
			log.Fatalf("tsdbd: %v", err)
		}
		return
	}

	if err := run(o); err != nil {
		log.Fatalf("tsdbd: %v", err)
	}
}

// options carries the parsed command line into run.
type options struct {
	addr, dataDir             string
	snapEvery, reqTimeout     time.Duration
	maxBody, ingestMaxBody    int64
	readTimeout, writeTimeout time.Duration
	idleTimeout               time.Duration
	walDir, walSync           string
	walSegBytes               int64
	admitReads, admitWrites   int
	admitAdmin, admitQueue    int
	admitMaxWait              time.Duration
	cacheBytes                int64
	pprof                     bool
	follow                    string
	autoSpecialize            bool
	adviseEvery               time.Duration
	scrubEvery                time.Duration
	scrubRate                 int64
}

// admission maps the flags onto the server's admission config.
// -admit-reads=-1 turns the controller off entirely.
func (o options) admission() server.AdmissionConfig {
	if o.admitReads < 0 {
		return server.AdmissionConfig{Disabled: true}
	}
	lim := func(n int) server.ClassLimit {
		return server.ClassLimit{Limit: n, Queue: o.admitQueue, MaxWait: o.admitMaxWait}
	}
	return server.AdmissionConfig{
		Read:  lim(o.admitReads),
		Write: lim(o.admitWrites),
		Admin: lim(o.admitAdmin),
	}
}

func run(o options) error {
	addr, dataDir, snapEvery := o.addr, o.dataDir, o.snapEvery
	walDir, walSync, walSegBytes := o.walDir, o.walSync, o.walSegBytes
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return fmt.Errorf("creating data dir: %w", err)
	}
	var wlog *wal.Log
	if walDir == "" {
		walDir = filepath.Join(dataDir, "wal")
	}
	if o.follow != "" {
		// A follower's history arrives from the primary's log; keeping a
		// second local WAL would just duplicate it. Durability here is the
		// snapshot cycle plus the ability to re-tail anything newer.
		walDir = "off"
	}
	if walDir != "off" {
		policy, err := wal.ParseSyncPolicy(walSync)
		if err != nil {
			return err
		}
		wlog, err = wal.Open(wal.Options{Dir: walDir, Sync: policy, SegmentBytes: walSegBytes})
		if err != nil {
			return fmt.Errorf("opening wal: %w", err)
		}
		defer wlog.Close()
	}
	// Primaries sign their Merkle epoch roots so clients and followers can
	// verify history against a pinned key; the keypair persists next to the
	// data so roots stay verifiable across restarts. Followers serve
	// unsigned roots — their trust chain is consistency with the primary's.
	var signer *integrity.Signer
	if wlog != nil {
		var err error
		if signer, err = integrity.LoadOrCreateSigner(filepath.Join(dataDir, "integrity.ed25519")); err != nil {
			return fmt.Errorf("loading signing key: %w", err)
		}
	}
	cat := catalog.New(catalog.Config{
		Dir: dataDir, WAL: wlog, CacheBytes: o.cacheBytes, Follower: o.follow != "",
		Signer: signer,
	})
	if err := cat.Open(); err != nil {
		return fmt.Errorf("opening catalog: %w", err)
	}
	log.Printf("catalog: %d relation(s) loaded from %s", cat.Len(), dataDir)
	if wlog != nil {
		st := wlog.Stats()
		log.Printf("wal: %s (%s sync), %d segment(s), %d record(s) replayed in %s",
			walDir, walSync, st.Segments, st.Replayed, st.ReplayDuration.Round(time.Microsecond))
	}

	var follower *repl.Follower
	if o.follow != "" {
		follower = repl.NewFollower(repl.FollowerConfig{Primary: o.follow, Catalog: cat})
		log.Printf("follower: tailing %s from lsn %d", o.follow, cat.ResumeLSN()+1)
	}

	srv := server.New(server.Config{
		Catalog:        cat,
		RequestTimeout: o.reqTimeout,
		MaxBodyBytes:   o.maxBody,
		IngestMaxBytes: o.ingestMaxBody,
		Admission:      o.admission(),
		Follower:       follower,
		ScrubInterval:  o.scrubEvery,
		ScrubRate:      o.scrubRate,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", addr, err)
	}
	log.Printf("listening on %s", ln.Addr())

	// -pprof mounts the profiler on an outer mux, outside the request
	// timeout and admission control: profiling an overloaded server is
	// exactly when the probe must not queue behind the load it inspects.
	handler := srv.Handler()
	if o.pprof {
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprofhttp.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprofhttp.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprofhttp.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprofhttp.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprofhttp.Trace)
		outer.Handle("/", handler)
		handler = outer
		log.Printf("pprof: profiling endpoints exposed at /debug/pprof/")
	}

	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       o.readTimeout,
		WriteTimeout:      o.writeTimeout,
		IdleTimeout:       o.idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The tail loop reconnects through transient primary outages on its
	// own; only a fatal condition (retention horizon passed the resume
	// point, or an apply failure) ends it. The process keeps serving —
	// reads stay up at a growing, honestly reported staleness, and the
	// operator decides whether to reseed or retire the node.
	if follower != nil {
		go func() {
			if err := follower.Run(ctx); err != nil {
				log.Printf("follower: replication stopped: %v", err)
			}
		}()
	}

	// The background advisor closes the specialization loop: it infers
	// classes from each relation's observed extension, migrates stores
	// when the advice changes (journaled, so followers adopt the same
	// design), and compacts append-only relations into frozen runs.
	// Followers never run it — their design replicates from the primary.
	if o.autoSpecialize && o.follow == "" && o.adviseEvery > 0 {
		go cat.RunAdvisor(ctx, o.adviseEvery, catalog.DefaultAdvisorConfig(),
			func(rep catalog.AdvisorReport, err error) {
				if err != nil {
					log.Printf("advisor: %v", err)
					return
				}
				for _, m := range rep.Migrations {
					log.Printf("advisor: migrated to %s (%s) at epoch %d", m.To, m.Source, m.Epoch)
				}
				if rep.Sealed > 0 {
					log.Printf("advisor: sealed %d element(s) into frozen runs", rep.Sealed)
				}
			})
		log.Printf("advisor: auto-specialize enabled, interval %s", o.adviseEvery)
	}

	// Background integrity scrubber: one rate-limited verify pass over
	// every sealed artifact (WAL segments, snapshot shards, frozen runs)
	// per -scrub-interval; a mismatch quarantines the relation and the
	// repair loop takes over. Runs on primaries and followers alike.
	if cat.IntegrityEnabled() && o.scrubEvery > 0 {
		go srv.RunScrubber(ctx)
		log.Printf("scrubber: verifying sealed artifacts every %s (%d B/s cap)", o.scrubEvery, o.scrubRate)
	}

	// Periodic snapshots: only dirty relations are rewritten, so an idle
	// server does no disk work.
	if snapEvery > 0 {
		go func() {
			tick := time.NewTicker(snapEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if n, err := cat.Snapshot(); err != nil {
						log.Printf("snapshot: %v", err)
					} else if n > 0 {
						log.Printf("snapshot: %d relation(s) written", n)
					}
				}
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
		log.Printf("shutting down")
	}

	// Drain first: new requests get a typed, retryable "unavailable"
	// while Shutdown lets in-flight work complete.
	srv.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	// Final flush: Close snapshots every dirty relation, so an acknowledged
	// transaction survives the restart.
	if err := cat.Close(); err != nil {
		return fmt.Errorf("closing catalog: %w", err)
	}
	log.Printf("catalog flushed, bye")
	return nil
}

// runCommand dispatches a one-shot subcommand against a running server
// instead of serving. The only one today is verify:
//
//	tsdbd -addr localhost:7070 verify [rel ...]
//
// which scrubs and repairs every durable artifact covering the named
// relations (all of them when none are named) and exits non-zero if any
// corruption could not be repaired.
func runCommand(o options, args []string) error {
	switch args[0] {
	case "verify":
		return runVerify(o, args[1:])
	}
	return fmt.Errorf("unknown command %q (the only subcommand is: verify [rel ...])", args[0])
}

func runVerify(o options, rels []string) error {
	base := o.addr
	if strings.HasPrefix(base, ":") {
		base = "127.0.0.1" + base
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	cli := client.New(base)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if len(rels) == 0 {
		infos, err := cli.List(ctx)
		if err != nil {
			return fmt.Errorf("listing relations on %s: %w", base, err)
		}
		for _, info := range infos {
			rels = append(rels, info.Name)
		}
	}
	unrepaired := 0
	for _, rel := range rels {
		rep, err := cli.Verify(ctx, rel)
		if err != nil {
			return fmt.Errorf("verifying %s: %w", rel, err)
		}
		fmt.Printf("%s: %d artifact(s) verified", rel, rep.Artifacts)
		if len(rep.Failures) == 0 {
			fmt.Println(", clean")
			continue
		}
		fmt.Printf(", %d corrupt, %d repaired\n", len(rep.Failures), rep.Repaired)
		for _, f := range rep.Failures {
			fmt.Printf("  corrupt: %s\n", f)
		}
		unrepaired += len(rep.Failures) - rep.Repaired
	}
	if unrepaired > 0 {
		return fmt.Errorf("%d artifact(s) remain corrupt after repair", unrepaired)
	}
	return nil
}
