// Command benchrunner regenerates every figure and claim of the paper and
// prints the results as tables — the harness behind EXPERIMENTS.md. Each
// experiment is named by its DESIGN.md id (F1-F5 for the figures, C1-C6
// for the formal claims).
//
// Usage:
//
//	benchrunner              # run everything
//	benchrunner -exp F1      # one experiment
//	benchrunner -n 50000     # size for the quantitative experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	ts "repro"
)

func main() {
	exp := flag.String("exp", "", "run only this experiment (F1-F5, C1-C6, A1-A2, S1-S9, P1)")
	n := flag.Int("n", 20000, "workload size for quantitative experiments")
	flag.Parse()

	all := []struct {
		id   string
		name string
		run  func(n int) error
	}{
		{"F1", "Figure 1 — isolated-event regions", runF1},
		{"F2", "Figure 2 — event-based lattice & inference", runF2},
		{"F3", "Figure 3 — inter-event orderings", runF3},
		{"F4", "Figure 4 — inter-event regularity", runF4},
		{"F5", "Figure 5 — inter-interval taxonomy", runF5},
		{"C1", "Claim C1 — completeness (eleven types)", runC1},
		{"C2", "Claim C2 — sequential ⇒ non-decreasing", runC2},
		{"C3", "Claim C3 — regularity gcd composition", runC3},
		{"C4", "Claim C4 — per-partition vs global", runC4},
		{"C5", "Claim C5 — degenerate ⇒ sequential; orthogonality", runC5},
		{"C6", "Claim C6 — specialization-driven physical design", runC6},
		{"A1", "Ablation — order sharing vs a separate B-tree index", runA1},
		{"A2", "Ablation — bounded-specialization pushdown (vt→tt window)", runA2},
		{"S1", "Serving — concurrent clients vs tsdbd over loopback HTTP", runS1},
		{"S2", "Durability — WAL sync policies and replay", runS2},
		{"S3", "Overload — admission shedding at 1x/4x/16x offered load", runS3},
		{"S4", "Read path — snapshot reads under a steady writer; cache-hit latency", runS4},
		{"S5", "Cluster — follower catch-up and routed read scaling 1→3 nodes", runS5},
		{"S6", "Physical design — inferred re-specialization and class-scheduled compaction", runS6},
		{"S7", "Batch execution — columnar vs row window aggregation on frozen relations", runS7},
		{"S8", "Integrity — Merkle accounting write tax and scrub throughput", runS8},
		{"S9", "Ingest — batched WAL frames vs single inserts; replay and follower catch-up", runS9},
		{"P1", "Planner — plan build/cost latency and choice stability", runP1},
	}
	failed := false
	for _, e := range all {
		if *exp != "" && !strings.EqualFold(*exp, e.id) {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.id, e.name)
		if err := e.run(*n); err != nil {
			fmt.Printf("FAILED: %v\n\n", err)
			failed = true
			continue
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

// runF1 validates, for every isolated-event class, that a 10k-element
// workload drawn from its region passes its own checker and fails the
// checkers of every non-ancestor class — the region structure of Figure 1.
func runF1(int) error {
	inner, outer := ts.WorkloadBounds()
	specs := make(map[ts.Class]ts.EventSpec)
	specs[ts.General] = ts.GeneralSpec()
	specs[ts.Retroactive] = ts.RetroactiveSpec()
	specs[ts.Predictive] = ts.PredictiveSpec()
	type build struct {
		cls ts.Class
		fn  func() (ts.EventSpec, error)
	}
	for _, b := range []build{
		{ts.DelayedRetroactive, func() (ts.EventSpec, error) { return ts.DelayedRetroactiveSpec(inner) }},
		{ts.EarlyPredictive, func() (ts.EventSpec, error) { return ts.EarlyPredictiveSpec(inner) }},
		{ts.RetroactivelyBounded, func() (ts.EventSpec, error) { return ts.RetroactivelyBoundedSpec(inner) }},
		{ts.StronglyRetroactivelyBounded, func() (ts.EventSpec, error) { return ts.StronglyRetroactivelyBoundedSpec(outer) }},
		{ts.DelayedStronglyRetroactivelyBounded, func() (ts.EventSpec, error) { return ts.DelayedStronglyRetroactivelyBoundedSpec(inner, outer) }},
		{ts.PredictivelyBounded, func() (ts.EventSpec, error) { return ts.PredictivelyBoundedSpec(inner) }},
		{ts.StronglyPredictivelyBounded, func() (ts.EventSpec, error) { return ts.StronglyPredictivelyBoundedSpec(outer) }},
		{ts.EarlyStronglyPredictivelyBounded, func() (ts.EventSpec, error) { return ts.EarlyStronglyPredictivelyBoundedSpec(inner, outer) }},
		{ts.StronglyBounded, func() (ts.EventSpec, error) { return ts.StronglyBoundedSpec(inner, inner) }},
		{ts.Degenerate, func() (ts.EventSpec, error) { return ts.DegenerateSpec(ts.Second) }},
	} {
		s, err := b.fn()
		if err != nil {
			return err
		}
		specs[b.cls] = s
	}
	fmt.Printf("%-42s %10s %14s\n", "class", "n", "own check")
	for _, cls := range ts.EventClasses() {
		stamps := ts.EventStampsWorkload(cls, ts.WorkloadConfig{Seed: 1, N: 10000})
		start := time.Now()
		err := specs[cls].CheckAll(stamps)
		dur := time.Since(start)
		status := "pass"
		if err != nil {
			status = "FAIL"
		}
		fmt.Printf("%-42s %10d %8s %s\n", cls, len(stamps), status, dur.Round(time.Microsecond))
		if err != nil {
			return fmt.Errorf("%v workload fails its own spec: %v", cls, err)
		}
		// Ancestors must also accept (suitably parameterized: the ancestor
		// checks here are the parameterless ones, general/retroactive/
		// predictive, which need no bound adjustment).
		for _, anc := range []ts.Class{ts.Retroactive, ts.Predictive} {
			if !ts.IsSpecializationOf(cls, anc) {
				continue
			}
			if err := specs[anc].CheckAll(stamps); err != nil {
				return fmt.Errorf("%v workload fails ancestor %v: %v", cls, anc, err)
			}
		}
	}
	return nil
}

// runF2 reproduces Figure 2 by verifying, for every event class, that
// classification of a workload from that class reports exactly the class's
// ancestor closure within the bounded-parameter families it can prove.
func runF2(int) error {
	fmt.Println(ts.RenderLattice(ts.CategoryIsolatedEvent))
	fmt.Printf("%-42s %s\n", "workload class", "most-specific inferred classes")
	for _, cls := range ts.EventClasses() {
		stamps := ts.EventStampsWorkload(cls, ts.WorkloadConfig{Seed: 2, N: 5000})
		elems := stampsToElements(stamps)
		rep := ts.Classify(elems, ts.TTInsertion, ts.Second)
		if !rep.Has(cls) {
			return fmt.Errorf("classification of %v workload lacks %v", cls, cls)
		}
		for _, anc := range ts.Ancestors(cls) {
			if anc.Category() == ts.CategoryIsolatedEvent && !rep.Has(anc) {
				return fmt.Errorf("classification of %v workload lacks ancestor %v", cls, anc)
			}
		}
		var names []string
		for _, f := range rep.MostSpecific() {
			if f.Class.Category() == ts.CategoryIsolatedEvent {
				names = append(names, f.String())
			}
		}
		fmt.Printf("%-42s %s\n", cls, strings.Join(names, "; "))
	}
	return nil
}

func stampsToElements(stamps []ts.Stamp) []*ts.Element {
	out := make([]*ts.Element, len(stamps))
	for i, st := range stamps {
		out[i] = &ts.Element{
			ES: ts.Surrogate(i + 1), OS: 1,
			TTStart: st.TT, TTEnd: ts.Forever,
			VT: ts.EventAt(st.VT),
		}
	}
	return out
}

// runF3 reproduces Figure 3: the ordering implication matrix over
// generated workloads.
func runF3(int) error {
	fmt.Println(ts.RenderLattice(ts.CategoryInterEventOrder))
	type w struct {
		name   string
		stamps []ts.Stamp
	}
	seq := make([]ts.Stamp, 100)
	for i := range seq {
		tt := ts.Epoch.Add(int64(i+1) * 100)
		seq[i] = ts.Stamp{TT: tt, VT: tt.Add(-50)}
	}
	inc := make([]ts.Stamp, 100)
	for i := range inc {
		tt := ts.Epoch.Add(int64(i+1) * 100)
		inc[i] = ts.Stamp{TT: tt, VT: ts.Epoch.Add(int64(i) * 10)}
	}
	dec := make([]ts.Stamp, 100)
	for i := range dec {
		tt := ts.Epoch.Add(int64(i+1) * 100)
		dec[i] = ts.Stamp{TT: tt, VT: ts.Epoch.Add(-int64(i) * 10)}
	}
	workloads := []w{{"sequential", seq}, {"non-decreasing only", inc}, {"non-increasing", dec}}
	specs := []ts.InterEventSpec{
		ts.NonDecreasingEventsSpec(), ts.NonIncreasingEventsSpec(), ts.SequentialEventsSpec(),
	}
	fmt.Printf("%-22s", "workload \\ class")
	for _, s := range specs {
		fmt.Printf(" %-14s", shortClass(s.Class()))
	}
	fmt.Println()
	expect := map[string]map[ts.Class]bool{
		"sequential":          {ts.GloballyNonDecreasingEvents: true, ts.GloballyNonIncreasingEvents: false, ts.GloballySequentialEvents: true},
		"non-decreasing only": {ts.GloballyNonDecreasingEvents: true, ts.GloballyNonIncreasingEvents: false, ts.GloballySequentialEvents: false},
		"non-increasing":      {ts.GloballyNonDecreasingEvents: false, ts.GloballyNonIncreasingEvents: true, ts.GloballySequentialEvents: false},
	}
	for _, wl := range workloads {
		fmt.Printf("%-22s", wl.name)
		for _, s := range specs {
			ok := s.CheckAll(wl.stamps) == nil
			fmt.Printf(" %-14v", ok)
			if want := expect[wl.name][s.Class()]; ok != want {
				return fmt.Errorf("%s vs %v: got %v, want %v", wl.name, s.Class(), ok, want)
			}
		}
		fmt.Println()
	}
	return nil
}

func shortClass(c ts.Class) string {
	s := c.String()
	s = strings.TrimPrefix(s, "globally ")
	if i := strings.Index(s, " ("); i >= 0 {
		s = s[:i]
	}
	return s
}

// runF4 reproduces Figure 4: the regularity implication matrix, including
// the strict/non-strict split.
func runF4(int) error {
	fmt.Println(ts.RenderLattice(ts.CategoryInterEventRegular))
	mk := func(s ts.InterEventSpec, err error) ts.InterEventSpec {
		if err != nil {
			panic(err)
		}
		return s
	}
	// Workload A: strictly periodic and degenerate (all six classes hold).
	a := make([]ts.Stamp, 100)
	for i := range a {
		tt := ts.Epoch.Add(int64(i+1) * 60)
		a[i] = ts.Stamp{TT: tt, VT: tt}
	}
	// Workload B: tts in multiples of 60 but unevenly spaced (tt regular,
	// not strict), vts constant offset (temporal regular).
	b := make([]ts.Stamp, 100)
	gap := int64(60)
	tt := ts.Epoch
	for i := range b {
		tt = tt.Add(gap)
		if i%3 == 0 {
			tt = tt.Add(60)
		}
		b[i] = ts.Stamp{TT: tt, VT: tt.Add(-30)}
	}
	specs := []ts.InterEventSpec{
		mk(ts.TTEventRegularSpec(ts.Seconds(60))),
		mk(ts.VTEventRegularSpec(ts.Seconds(60))),
		mk(ts.TemporalEventRegularSpec(ts.Seconds(60))),
		mk(ts.StrictTTEventRegularSpec(ts.Seconds(60))),
		mk(ts.StrictVTEventRegularSpec(ts.Seconds(60))),
		mk(ts.StrictTemporalEventRegularSpec(ts.Seconds(60))),
	}
	expect := map[string][]bool{
		"strict periodic":  {true, true, true, true, true, true},
		"uneven multiples": {true, true, true, false, false, false},
	}
	fmt.Printf("%-18s", "workload")
	for _, s := range specs {
		fmt.Printf(" %-8s", abbrevRegular(s.Class()))
	}
	fmt.Println()
	for _, wl := range []struct {
		name   string
		stamps []ts.Stamp
	}{{"strict periodic", a}, {"uneven multiples", b}} {
		fmt.Printf("%-18s", wl.name)
		for i, s := range specs {
			ok := s.CheckAll(wl.stamps) == nil
			fmt.Printf(" %-8v", ok)
			if ok != expect[wl.name][i] {
				return fmt.Errorf("%s vs %v: got %v, want %v", wl.name, s.Class(), ok, expect[wl.name][i])
			}
		}
		fmt.Println()
	}
	return nil
}

func abbrevRegular(c ts.Class) string {
	switch c {
	case ts.TTEventRegular:
		return "tt"
	case ts.VTEventRegular:
		return "vt"
	case ts.TemporalEventRegular:
		return "temp"
	case ts.StrictTTEventRegular:
		return "s-tt"
	case ts.StrictVTEventRegular:
		return "s-vt"
	case ts.StrictTemporalEventRegular:
		return "s-temp"
	}
	return c.String()
}

// runF5 reproduces Figure 5: for each Allen relation, a chain whose
// successive intervals satisfy it is recognized as st-X and as the
// ordering classes its relation implies.
func runF5(int) error {
	fmt.Println(ts.RenderLattice(ts.CategoryInterInterval))
	fmt.Printf("%-18s %-8s %-16s %-16s\n", "st-X chain", "st-X", "non-decreasing", "non-increasing")
	chains := map[ts.AllenRelation][]ts.IntervalStampPair{}
	for _, rel := range ts.AllenRelations() {
		chains[rel] = allenChain(rel)
	}
	for _, rel := range ts.AllenRelations() {
		stamps := chains[rel]
		st := ts.SuccessiveTTSpec(rel)
		nd := ts.NonDecreasingIntervalsSpec()
		ni := ts.NonIncreasingIntervalsSpec()
		stOK := st.CheckAll(stamps) == nil
		ndOK := nd.CheckAll(stamps) == nil
		niOK := ni.CheckAll(stamps) == nil
		fmt.Printf("%-18s %-8v %-16v %-16v\n", rel, stOK, ndOK, niOK)
		if !stOK {
			return fmt.Errorf("st-%v chain rejected by its own spec", rel)
		}
		wantND := ts.IsSpecializationOf(ts.STBefore+ts.Class(rel), ts.GloballyNonDecreasingIntervals)
		wantNI := ts.IsSpecializationOf(ts.STBefore+ts.Class(rel), ts.GloballyNonIncreasingIntervals)
		if ndOK != wantND || niOK != wantNI {
			return fmt.Errorf("st-%v ordering mismatch: nd=%v (want %v) ni=%v (want %v)",
				rel, ndOK, wantND, niOK, wantNI)
		}
	}
	return nil
}

// allenChain builds a three-element transaction-time chain whose successive
// valid intervals are related by rel.
func allenChain(rel ts.AllenRelation) []ts.IntervalStampPair {
	raw := map[ts.AllenRelation][][2]int64{
		ts.Before:       {{0, 10}, {20, 30}, {40, 50}},
		ts.Meets:        {{0, 10}, {10, 20}, {20, 30}},
		ts.Overlaps:     {{0, 10}, {5, 15}, {10, 20}},
		ts.Starts:       {{0, 10}, {0, 20}, {0, 30}},
		ts.During:       {{40, 50}, {30, 60}, {20, 70}},
		ts.Finishes:     {{40, 50}, {30, 50}, {20, 50}},
		ts.Equal:        {{0, 10}, {0, 10}, {0, 10}},
		ts.After:        {{40, 50}, {20, 30}, {0, 10}},
		ts.MetBy:        {{20, 30}, {10, 20}, {0, 10}},
		ts.OverlappedBy: {{10, 20}, {5, 15}, {0, 10}},
		ts.StartedBy:    {{0, 30}, {0, 20}, {0, 10}},
		ts.Contains:     {{0, 100}, {10, 90}, {20, 80}},
		ts.FinishedBy:   {{0, 50}, {20, 50}, {30, 50}},
	}[rel]
	out := make([]ts.IntervalStampPair, len(raw))
	for i, iv := range raw {
		out[i] = ts.IntervalStampPair{
			TT: ts.Epoch.Add(int64(i+1) * 10),
			VT: ts.MakeInterval(ts.Epoch.Add(iv[0]), ts.Epoch.Add(iv[1])),
		}
	}
	return out
}

// runC1 performs the completeness enumeration.
func runC1(int) error {
	c := ts.EnumerateRegions()
	fmt.Printf("zero lines: %d   one line: %d   two lines: %d\n", c.ZeroLines, c.OneLine, c.TwoLines)
	fmt.Printf("specialized types: %d (paper: 11)\n", c.Specializations())
	if c.ZeroLines != 1 || c.OneLine != 6 || c.TwoLines != 5 || c.Specializations() != 11 {
		return fmt.Errorf("enumeration does not match the paper")
	}
	return nil
}

// runC2 verifies sequential ⇒ non-decreasing on generated workloads, and
// their coincidence for degenerate relations.
func runC2(n int) error {
	r, err := ts.MonitoringWorkload(ts.WorkloadConfig{Seed: 3, N: min(n, 20000)})
	if err != nil {
		return err
	}
	stamps := ts.StampsOf(r.Versions(), ts.TTInsertion, ts.VTStart)
	if err := ts.SequentialEventsSpec().CheckAll(stamps); err != nil {
		return fmt.Errorf("monitoring workload not sequential: %v", err)
	}
	if err := ts.NonDecreasingEventsSpec().CheckAll(stamps); err != nil {
		return fmt.Errorf("sequential workload not non-decreasing: %v", err)
	}
	fmt.Printf("sequential monitoring workload (n=%d): non-decreasing holds\n", len(stamps))
	deg := ts.EventStampsWorkload(ts.Degenerate, ts.WorkloadConfig{Seed: 3, N: 10000})
	seqOK := ts.SequentialEventsSpec().CheckAll(deg) == nil
	ndOK := ts.NonDecreasingEventsSpec().CheckAll(deg) == nil
	fmt.Printf("degenerate workload: sequential=%v non-decreasing=%v (must coincide)\n", seqOK, ndOK)
	if seqOK != ndOK || !seqOK {
		return fmt.Errorf("degenerate coincidence fails")
	}
	return nil
}

// runC3 verifies the gcd composition with the paper's own numbers and the
// strict counterexample.
func runC3(int) error {
	g := ts.GCD(28, 6)
	fmt.Printf("gcd(28s, 6s) = %ds (paper: 2s)\n", g)
	if g != 2 {
		return fmt.Errorf("gcd wrong")
	}
	stamps := make([]ts.Stamp, 50)
	for i := range stamps {
		t := ts.Epoch.Add(int64(i) * 28 * 6)
		stamps[i] = ts.Stamp{TT: t, VT: t}
	}
	tt28, _ := ts.TTEventRegularSpec(ts.Seconds(28))
	vt6, _ := ts.VTEventRegularSpec(ts.Seconds(6))
	t2, _ := ts.TemporalEventRegularSpec(ts.Seconds(2))
	for name, s := range map[string]ts.InterEventSpec{"tt-regular 28s": tt28, "vt-regular 6s": vt6, "temporal 2s": t2} {
		if err := s.CheckAll(stamps); err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		fmt.Printf("%s: holds\n", name)
	}
	// Strict counterexample: tts 10 apart, vts 20 apart.
	strict := make([]ts.Stamp, 50)
	for i := range strict {
		strict[i] = ts.Stamp{TT: ts.Epoch.Add(int64(i) * 10), VT: ts.Epoch.Add(int64(i) * 20)}
	}
	sTT, _ := ts.StrictTTEventRegularSpec(ts.Seconds(10))
	sVT, _ := ts.StrictVTEventRegularSpec(ts.Seconds(20))
	if err := sTT.CheckAll(strict); err != nil {
		return err
	}
	if err := sVT.CheckAll(strict); err != nil {
		return err
	}
	for _, unit := range []int64{2, 10, 20} {
		sT, _ := ts.StrictTemporalEventRegularSpec(ts.Seconds(unit))
		if sT.CheckAll(strict) == nil {
			return fmt.Errorf("strict temporal with unit %ds unexpectedly holds", unit)
		}
	}
	fmt.Println("strict tt (10s) ∧ strict vt (20s) but strict temporal fails at 2s/10s/20s: composition does not lift to strict (paper ✓)")
	return nil
}

// runC4 verifies that non-strict per-partition regularity implies global
// regularity while strictness and orderings do not.
func runC4(int) error {
	// Two partitions, each strictly periodic at 100s but with offset
	// anchors 0 and 3, interleaved in transaction time.
	var all []ts.Stamp
	parts := make(map[ts.Surrogate][]*ts.Element)
	var es uint64
	for i := 0; i < 50; i++ {
		for p := int64(0); p < 2; p++ {
			t := ts.Epoch.Add(int64(i)*100 + p*3)
			es++
			e := &ts.Element{ES: ts.Surrogate(es), OS: ts.Surrogate(p + 1),
				TTStart: t, TTEnd: ts.Forever, VT: ts.EventAt(t)}
			parts[e.OS] = append(parts[e.OS], e)
			all = append(all, ts.Stamp{TT: t, VT: t})
		}
	}
	rep := ts.ClassifyPerPartition(parts, ts.TTInsertion, ts.Second)
	if !rep.Has(ts.StrictTTEventRegular) {
		return fmt.Errorf("per-partition strict regularity not found")
	}
	fmt.Println("per partition: strict tt event regular holds in both partitions (Δt=100s)")
	sTT, _ := ts.StrictTTEventRegularSpec(ts.Seconds(100))
	if sTT.CheckAll(all) == nil {
		return fmt.Errorf("global strict regularity unexpectedly holds")
	}
	fmt.Println("globally: strict tt event regular fails (anchors interleave) — strictness does not lift (paper ✓)")
	ttReg, _ := ts.TTEventRegularSpec(ts.Seconds(1))
	if err := ttReg.CheckAll(all); err != nil {
		return fmt.Errorf("global non-strict regularity should hold at the combined unit: %v", err)
	}
	fmt.Println("globally: non-strict tt event regular holds at the combined unit (1s) — non-strict lifts (paper ✓)")
	return nil
}

// runC5 verifies that a degenerate relation is necessarily globally
// sequential, and that other isolated-event classes are orthogonal to the
// inter-event ones.
func runC5(int) error {
	deg := ts.EventStampsWorkload(ts.Degenerate, ts.WorkloadConfig{Seed: 5, N: 10000})
	if err := ts.SequentialEventsSpec().CheckAll(deg); err != nil {
		return fmt.Errorf("degenerate workload not sequential: %v", err)
	}
	fmt.Println("degenerate ⇒ globally sequential: holds on a 10k workload (paper ✓)")
	// Orthogonality: a retroactive workload can be ordered or not.
	retro := ts.EventStampsWorkload(ts.Retroactive, ts.WorkloadConfig{Seed: 5, N: 1000})
	ndOK := ts.NonDecreasingEventsSpec().CheckAll(retro) == nil
	fmt.Printf("random retroactive workload non-decreasing: %v (unforced either way)\n", ndOK)
	// Build a retroactive AND non-decreasing workload: both declarable.
	both := make([]ts.Stamp, 100)
	for i := range both {
		t := ts.Epoch.Add(int64(i+1) * 100)
		both[i] = ts.Stamp{TT: t, VT: t.Add(-10)}
	}
	if err := ts.RetroactiveSpec().CheckAll(both); err != nil {
		return err
	}
	if err := ts.NonDecreasingEventsSpec().CheckAll(both); err != nil {
		return err
	}
	fmt.Println("retroactive ∧ non-decreasing jointly satisfiable: orthogonal dimensions (paper ✓)")
	return nil
}

// runC6 measures the physical-design benefit: time-slice and rollback
// costs on the advised store vs the general organization, over growing n.
func runC6(n int) error {
	fmt.Printf("%-10s %-26s %-26s %10s\n", "n", "specialized (vt-ordered)", "general (heap scan)", "speedup")
	for _, size := range []int{n / 10, n, n * 10} {
		r, err := ts.MonitoringWorkload(ts.WorkloadConfig{Seed: 6, N: size})
		if err != nil {
			return err
		}
		spec, advice, err := ts.EngineForRelation(r, []ts.Class{ts.GloballySequentialEvents})
		if err != nil {
			return err
		}
		if advice.Store != ts.VTOrderedStore {
			return fmt.Errorf("advice = %v", advice.Store)
		}
		heap := ts.NewHeapStore()
		for _, e := range r.Versions() {
			if err := heap.Insert(e); err != nil {
				return err
			}
		}
		gen := ts.NewQueryEngine(heap, nil)
		es := r.Versions()
		queries := make([]ts.Chronon, 0, 200)
		for i := 0; i < 200; i++ {
			queries = append(queries, es[(i*7919)%len(es)].VT.Start())
		}
		tSpec := timeQueries(func(q ts.Chronon) int { return spec.Timeslice(q).Touched }, queries)
		tGen := timeQueries(func(q ts.Chronon) int { return gen.Timeslice(q).Touched }, queries)
		fmt.Printf("%-10d %-26s %-26s %9.1fx\n", size,
			fmt.Sprintf("%v (%d touched/query)", tSpec.dur, tSpec.touched/len(queries)),
			fmt.Sprintf("%v (%d touched/query)", tGen.dur, tGen.touched/len(queries)),
			float64(tGen.dur)/float64(tSpec.dur))
		if tSpec.touched >= tGen.touched {
			return fmt.Errorf("specialized store touched more data than the general one")
		}
	}
	return nil
}

// runA1 prices the general relation's alternative to order sharing: a
// B-tree valid-time index. Insert cost and time-slice cost are measured
// for the bare heap, the indexed heap, and the vt-ordered log.
func runA1(n int) error {
	shuffledVT := func(i int) ts.Chronon { return ts.Chronon((int64(i)*7919 + 1) % (int64(n) * 13)) }
	orderedVT := func(i int) ts.Chronon { return ts.Chronon(int64(i) * 10) }
	mkElems := func(vt func(int) ts.Chronon) []*ts.Element {
		es := make([]*ts.Element, n)
		for i := range es {
			es[i] = &ts.Element{
				ES: ts.Surrogate(i + 1), OS: 1,
				TTStart: ts.Chronon(int64(i) * 10), TTEnd: ts.Forever,
				VT: ts.EventAt(vt(i)),
			}
		}
		return es
	}
	designs := []struct {
		name string
		mk   func() ts.Store
		es   []*ts.Element
	}{
		{"heap (no vt access path)", ts.NewHeapStore, mkElems(shuffledVT)},
		{"heap + B-tree vt index", ts.NewIndexedEventStore, mkElems(shuffledVT)},
		{"vt-ordered log (declared)", ts.NewVTLogStore, mkElems(orderedVT)},
	}
	fmt.Printf("%-28s %-16s %-22s %14s\n", "physical design", "insert (n rows)", "timeslice (200 q)", "touched/query")
	for _, d := range designs {
		st := d.mk()
		start := time.Now()
		for _, e := range d.es {
			if err := st.Insert(e); err != nil {
				return err
			}
		}
		insertDur := time.Since(start).Round(time.Microsecond)

		queries := make([]ts.Chronon, 200)
		for i := range queries {
			queries[i] = d.es[(i*7919)%n].VT.Start()
		}
		start = time.Now()
		touched := 0
		for _, q := range queries {
			got, tq := st.Timeslice(q)
			if len(got) == 0 {
				return fmt.Errorf("%s: query found nothing", d.name)
			}
			touched += tq
		}
		qDur := time.Since(start).Round(time.Microsecond)
		fmt.Printf("%-28s %-16v %-22v %14d\n", d.name, insertDur, qDur, touched/len(queries))
	}
	fmt.Println("\nshape: the index matches the log's query cost but pays tree maintenance on")
	fmt.Println("every insert; the declared ordering gets the same access path for free.")
	return nil
}

// runA2 measures the second specialization-driven strategy: a declared
// two-sided bound converts valid-time predicates into transaction-time
// windows, so the plain tt-ordered arrival log answers historical queries
// by binary search — no valid-time order or index needed.
func runA2(n int) error {
	r, err := ts.MonitoringWorkload(ts.WorkloadConfig{Seed: 9, N: n})
	if err != nil {
		return err
	}
	// The monitoring relation is declared delayed strongly retroactively
	// bounded with delays in [30 s, 300 s]: vt - tt in [-300, -30].
	spec, err := ts.DelayedStronglyRetroactivelyBoundedSpec(ts.Seconds(30), ts.Seconds(300))
	if err != nil {
		return err
	}
	ttlog := ts.NewTTLogStore()
	heap := ts.NewHeapStore()
	for _, e := range r.Versions() {
		if err := ttlog.Insert(e); err != nil {
			return err
		}
		if err := heap.Insert(e); err != nil {
			return err
		}
	}
	pushdown := ts.NewQueryEngine(ttlog, nil)
	if err := ts.EnableBoundedPushdown(pushdown, r, spec); err != nil {
		return err
	}
	scan := ts.NewQueryEngine(heap, nil)

	es := r.Versions()
	queries := make([]ts.Chronon, 200)
	for i := range queries {
		queries[i] = es[(i*7919)%len(es)].VT.Start()
	}
	tPush := timeQueries(func(q ts.Chronon) int { return pushdown.Timeslice(q).Touched }, queries)
	tScan := timeQueries(func(q ts.Chronon) int { return scan.Timeslice(q).Touched }, queries)
	for _, q := range queries[:20] {
		a := pushdown.Timeslice(q)
		b := scan.Timeslice(q)
		if len(a.Elements) != len(b.Elements) {
			return fmt.Errorf("pushdown disagrees with scan at %v", q)
		}
	}
	fmt.Printf("n=%d, bound window 270 s wide, 200 time-slice queries\n", n)
	fmt.Printf("%-34s %-12s %14s\n", "strategy", "total", "touched/query")
	fmt.Printf("%-34s %-12v %14d\n", "tt-window pushdown (declared)", tPush.dur, tPush.touched/len(queries))
	fmt.Printf("%-34s %-12v %14d\n", "heap scan (undeclared)", tScan.dur, tScan.touched/len(queries))
	fmt.Printf("speedup %.1fx\n", float64(tScan.dur)/float64(tPush.dur))
	if tPush.touched >= tScan.touched {
		return fmt.Errorf("pushdown touched more data than the scan")
	}
	return nil
}

type timing struct {
	dur     time.Duration
	touched int
}

func timeQueries(run func(ts.Chronon) int, queries []ts.Chronon) timing {
	start := time.Now()
	touched := 0
	for _, q := range queries {
		touched += run(q)
	}
	return timing{dur: time.Since(start).Round(time.Microsecond), touched: touched}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
