package main

// S1 — the serving path end to end: an in-process tsdbd (real catalog,
// real HTTP server on a loopback listener) hammered by N concurrent
// clients mixing insert transactions and time-slice queries through the
// typed client package. The result is both printed and written to
// BENCH_serving.json so runs can be compared across changes.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/catalog"
	"repro/internal/server"
)

// servingResult is the BENCH_serving.json document.
type servingResult struct {
	Experiment   string  `json:"experiment"`
	Clients      int     `json:"clients"`
	Inserts      int     `json:"inserts"`
	Timeslices   int     `json:"timeslices"`
	DurationMS   int64   `json:"duration_ms"`
	InsertsPerS  float64 `json:"inserts_per_sec"`
	QueriesPerS  float64 `json:"queries_per_sec"`
	MeanInsertUS int64   `json:"mean_insert_us"`
	MeanQueryUS  int64   `json:"mean_query_us"`
	// Server-side accounting, read back from /metrics.
	ServerRequests uint64 `json:"server_requests"`
	ServerErrors   uint64 `json:"server_errors"`
	ServerTouched  uint64 `json:"server_elements_touched"`
	Snapshotted    int    `json:"relations_snapshotted"`
	// PlanMix is the per-plan-kind query count from /metrics, verified
	// against the plan nodes the clients saw on their own responses.
	PlanMix map[string]uint64 `json:"plan_mix"`
}

// runS1 boots the server, runs the workload, verifies the books balance,
// and writes BENCH_serving.json.
func runS1(n int) error {
	const clients = 8
	// The serving path is request-bound, not data-bound; cap the per-run
	// volume so S1 stays a seconds-scale experiment at any -n.
	inserts := n
	if inserts > 4000 {
		inserts = 4000
	}
	perClient := inserts / clients
	inserts = perClient * clients
	timeslices := inserts // one query per insert, interleaved

	dir, err := os.MkdirTemp("", "tsdbd-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cat := catalog.New(catalog.Config{Dir: dir})
	if err := cat.Open(); err != nil {
		return err
	}
	srv := server.New(server.Config{Catalog: cat})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}()

	ctx := context.Background()
	admin := client.New("http://" + ln.Addr().String())
	if _, err := admin.Create(ctx, client.Schema{
		Name: "stream", ValidTime: "event", Granularity: 1,
	}); err != nil {
		return err
	}

	var (
		wg          sync.WaitGroup
		insertNanos atomic.Int64
		queryNanos  atomic.Int64
		failures    atomic.Int64
		// Client-side plan books: every query response carries its plan
		// node; count queries and touched per access-path kind so the
		// server's /metrics breakdown can be audited against what the
		// clients actually observed.
		bookMu      sync.Mutex
		planQueries = map[string]uint64{}
		planTouched = map[string]uint64{}
	)
	book := func(resp client.QueryResponse) {
		if resp.PlanNode == nil {
			failures.Add(1)
			return
		}
		kind := resp.PlanNode.Leaf().Kind
		bookMu.Lock()
		planQueries[kind]++
		planTouched[kind] += uint64(resp.Touched)
		bookMu.Unlock()
	}
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli := client.New("http://" + ln.Addr().String())
			for i := 0; i < perClient; i++ {
				vt := int64(c*perClient + i)
				t0 := time.Now()
				_, err := cli.Insert(ctx, "stream", client.InsertRequest{VT: client.EventAt(vt)})
				insertNanos.Add(int64(time.Since(t0)))
				if err != nil {
					failures.Add(1)
					continue
				}
				t0 = time.Now()
				resp, err := cli.Timeslice(ctx, "stream", vt)
				queryNanos.Add(int64(time.Since(t0)))
				if err != nil {
					failures.Add(1)
					continue
				}
				book(resp)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if f := failures.Load(); f > 0 {
		return fmt.Errorf("%d request(s) failed", f)
	}

	// The books must balance: every insert landed exactly once and the
	// server counted every request.
	cur, err := admin.Current(ctx, "stream")
	if err != nil {
		return err
	}
	if len(cur.Elements) != inserts {
		return fmt.Errorf("server holds %d elements, want %d", len(cur.Elements), inserts)
	}
	book(cur) // the audit query flows through the same plan accounting
	m, err := admin.Metrics(ctx)
	if err != nil {
		return err
	}
	if got := m.Endpoints["insert"].Requests; got != uint64(inserts) {
		return fmt.Errorf("server counted %d inserts, want %d", got, inserts)
	}
	// The plan books must balance: for every access-path kind, the server's
	// /metrics breakdown matches the queries and touched counts the clients
	// saw on their own responses — no query ran with an unreported plan.
	if len(m.Plans) != len(planQueries) {
		return fmt.Errorf("server reports %d plan kind(s), clients saw %d", len(m.Plans), len(planQueries))
	}
	for kind, want := range planQueries {
		got, ok := m.Plans[kind]
		if !ok {
			return fmt.Errorf("plan kind %q missing from /metrics", kind)
		}
		if got.Requests != want {
			return fmt.Errorf("plan %q: server counted %d quer(y/ies), clients saw %d", kind, got.Requests, want)
		}
		if got.Touched != planTouched[kind] {
			return fmt.Errorf("plan %q: server touched %d, clients saw %d", kind, got.Touched, planTouched[kind])
		}
	}
	saved, err := admin.Snapshot(ctx)
	if err != nil {
		return err
	}

	var touched uint64
	for _, ep := range m.Endpoints {
		touched += ep.Touched
	}
	planMix := make(map[string]uint64, len(m.Plans))
	for kind, pm := range m.Plans {
		planMix[kind] = pm.Requests
	}
	res := servingResult{
		Experiment:     "S1",
		Clients:        clients,
		Inserts:        inserts,
		Timeslices:     timeslices,
		DurationMS:     elapsed.Milliseconds(),
		InsertsPerS:    float64(inserts) / elapsed.Seconds(),
		QueriesPerS:    float64(timeslices) / elapsed.Seconds(),
		MeanInsertUS:   insertNanos.Load() / int64(inserts) / 1000,
		MeanQueryUS:    queryNanos.Load() / int64(timeslices) / 1000,
		ServerRequests: m.Requests,
		ServerErrors:   m.Errors,
		ServerTouched:  touched,
		Snapshotted:    saved,
		PlanMix:        planMix,
	}
	fmt.Printf("%d clients, %d inserts + %d timeslices over loopback HTTP in %v\n",
		res.Clients, res.Inserts, res.Timeslices, elapsed.Round(time.Millisecond))
	fmt.Printf("%-22s %10.0f req/s  (mean %d µs)\n", "insert throughput", res.InsertsPerS, res.MeanInsertUS)
	fmt.Printf("%-22s %10.0f req/s  (mean %d µs)\n", "timeslice throughput", res.QueriesPerS, res.MeanQueryUS)
	fmt.Printf("server: %d requests, %d errors, %d elements touched, %d relation(s) snapshotted\n",
		res.ServerRequests, res.ServerErrors, touched, saved)
	for kind, pm := range m.Plans {
		fmt.Printf("plan %-20s %6d quer(y/ies), %d touched (balanced against client books)\n",
			kind, pm.Requests, pm.Touched)
	}

	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_serving.json", append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_serving.json")
	return nil
}
