package main

// P1 — the planner itself: how long does it take to build and cost a typed
// plan, and does the chosen access path stay stable across store sizes?
// The planner runs on every query of every relation, so its cost must stay
// in the tens of nanoseconds — far below a single binary-search probe.

import (
	"fmt"
	"time"

	"repro/internal/plan"
)

// runP1 times plan.Build for each (store capability, query kind) pair at
// n ∈ {1k, 10k, 100k} and checks the chosen strategy never degrades as the
// store grows.
func runP1(int) error {
	shapes := []struct {
		name   string
		access func(n int) plan.Access
	}{
		{"heap", func(n int) plan.Access { return plan.Access{Org: plan.OrgHeap, N: n} }},
		{"tt-log", func(n int) plan.Access { return plan.Access{Org: plan.OrgTTLog, N: n} }},
		{"tt-log+bounds", func(n int) plan.Access {
			return plan.Access{Org: plan.OrgTTLog, N: n, HasOffsetBounds: true, OffsetLo: -300, OffsetHi: -30}
		}},
		{"vt-log", func(n int) plan.Access { return plan.Access{Org: plan.OrgVTLog, N: n} }},
		{"heap+vt-index", func(n int) plan.Access { return plan.Access{Org: plan.OrgHeap, N: n, VTIndex: true} }},
	}
	queries := []plan.Query{
		{Kind: plan.QCurrent},
		{Kind: plan.QTimeslice, VTLo: 500, VTHi: 501},
		{Kind: plan.QVTRange, VTLo: 500, VTHi: 600},
		{Kind: plan.QRollback, TT: 500},
		{Kind: plan.QAsOf, VTLo: 500, TT: 500},
	}
	const rounds = 200_000
	fmt.Printf("%-15s %-10s %12s %12s  %s\n", "store", "query", "n", "ns/plan", "chosen leaf")
	for _, shape := range shapes {
		for _, q := range queries {
			var prevLeaf plan.NodeKind
			for i, n := range []int{1_000, 10_000, 100_000} {
				a := shape.access(n)
				node := plan.Build(a, q)
				leaf := node.Leaf().Kind
				if node.Est > a.N {
					return fmt.Errorf("%s/%v n=%d: estimate %d exceeds the scan bound %d",
						shape.name, q.Kind, n, node.Est, a.N)
				}
				// A plan chosen at 1k must not flip at 100k: the capability,
				// not the size, licenses the strategy.
				if i > 0 && leaf != prevLeaf {
					return fmt.Errorf("%s/%v: leaf flipped from %v at n=%d to %v at n=%d",
						shape.name, q.Kind, prevLeaf, n/10, leaf, n)
				}
				prevLeaf = leaf
				t0 := time.Now()
				for r := 0; r < rounds; r++ {
					node = plan.Build(a, q)
				}
				perPlan := time.Since(t0).Nanoseconds() / rounds
				_ = node
				fmt.Printf("%-15s %-10v %12d %12d  %v\n", shape.name, q.Kind, n, perPlan, leaf)
			}
		}
	}
	return nil
}
