package main

// S3 — overload behavior: acked-writes throughput and tail latency at
// offered loads of 1×, 4×, and 16× the write-class admission limit, with
// shedding on (bounded queue + max wait) and off (admission disabled).
// The claim under test: with shedding the server holds its acked
// throughput and keeps the tail of *successful* requests flat by
// refusing excess load early with typed, retryable errors; without it,
// every request eventually lands but the tail stretches with the number
// of waiters. Results go to BENCH_overload.json.
//
// The write path is given a deterministic per-commit cost: the WAL runs
// SyncAlways over an in-memory FS whose Sync sleeps syncDelay. On the
// small CI boxes this benchmark runs on (often one CPU), real fsync cost
// is noisy enough that whether handlers ever overlap is scheduler luck;
// a sleeping Sync always yields, so offered concurrency reliably
// accumulates at the admission gate — the regime the gate exists for —
// and capacity is a known ~1/syncDelay commits/sec in every cell.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/catalog"
	"repro/internal/server"
	"repro/internal/wal"
)

// slowFS wraps a wal.FS so every file Sync costs a fixed sleep on top of
// whatever the underlying FS does.
type slowFS struct {
	wal.FS
	delay time.Duration
}

func (s *slowFS) Create(name string) (wal.File, error) {
	f, err := s.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &slowFile{File: f, delay: s.delay}, nil
}

func (s *slowFS) OpenAppend(name string, size int64) (wal.File, error) {
	f, err := s.FS.OpenAppend(name, size)
	if err != nil {
		return nil, err
	}
	return &slowFile{File: f, delay: s.delay}, nil
}

type slowFile struct {
	wal.File
	delay time.Duration
}

func (f *slowFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

// overloadCell is one (multiplier, shedding) measurement.
type overloadCell struct {
	Multiplier  int     `json:"multiplier"` // offered clients / write limit
	Shedding    bool    `json:"shedding"`
	Clients     int     `json:"clients"`
	Acked       uint64  `json:"acked"`
	Shed        uint64  `json:"shed"`
	Errors      uint64  `json:"errors"`
	AckedPerSec float64 `json:"acked_per_sec"`
	P50MS       float64 `json:"acked_p50_ms"`
	P99MS       float64 `json:"acked_p99_ms"`
	// Server-side admission accounting (zero when shedding is off).
	ServerShedOverload uint64 `json:"server_shed_overload"`
	ServerShedTimeout  uint64 `json:"server_shed_timeout"`
	MaxQueueDepth      int    `json:"server_max_queue_depth"`
}

type overloadResult struct {
	Experiment  string         `json:"experiment"`
	WriteLimit  int            `json:"write_limit"`
	WriteQueue  int            `json:"write_queue"`
	MaxWaitMS   int64          `json:"max_wait_ms"`
	SyncDelayMS float64        `json:"sync_delay_ms"`
	CellMS      int64          `json:"cell_duration_ms"`
	Cells       []overloadCell `json:"cells"`
}

// runS3 measures each cell on a fresh server so queue state and history
// size never bleed across measurements.
func runS3(int) error {
	const (
		writeLimit  = 8
		writeQueue  = 16
		maxWait     = 50 * time.Millisecond
		syncDelay   = time.Millisecond
		shedBackoff = 25 * time.Millisecond
		cellDur     = time.Second
	)
	res := overloadResult{
		Experiment:  "S3",
		WriteLimit:  writeLimit,
		WriteQueue:  writeQueue,
		MaxWaitMS:   maxWait.Milliseconds(),
		SyncDelayMS: float64(syncDelay.Microseconds()) / 1000,
		CellMS:      cellDur.Milliseconds(),
	}
	fmt.Printf("write limit %d, queue %d, max wait %v, sync delay %v, %v per cell\n",
		writeLimit, writeQueue, maxWait, syncDelay, cellDur)
	for _, shedding := range []bool{true, false} {
		for _, mult := range []int{1, 4, 16} {
			cell, err := runOverloadCell(mult, shedding, writeLimit, writeQueue,
				maxWait, syncDelay, shedBackoff, cellDur)
			if err != nil {
				return fmt.Errorf("cell %dx shedding=%v: %w", mult, shedding, err)
			}
			res.Cells = append(res.Cells, cell)
			fmt.Printf("%3dx offered, shedding %-5v: %8.0f acked/s, p50 %6.2f ms, p99 %7.2f ms, shed %d\n",
				cell.Multiplier, cell.Shedding, cell.AckedPerSec, cell.P50MS, cell.P99MS, cell.Shed)
		}
	}
	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_overload.json", append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_overload.json")
	return nil
}

func runOverloadCell(mult int, shedding bool, limit, queue int,
	maxWait, syncDelay, shedBackoff, dur time.Duration) (overloadCell, error) {
	cell := overloadCell{Multiplier: mult, Shedding: shedding, Clients: limit * mult}

	adm := server.AdmissionConfig{Disabled: true}
	if shedding {
		adm = server.AdmissionConfig{
			Write: server.ClassLimit{Limit: limit, Queue: queue, MaxWait: maxWait},
		}
	}
	wlog, err := wal.Open(wal.Options{
		FS:           &slowFS{FS: wal.NewErrFS(), delay: syncDelay},
		Sync:         wal.SyncAlways,
		SegmentBytes: 64 << 20,
	})
	if err != nil {
		return cell, err
	}
	defer wlog.Close()
	cat := catalog.New(catalog.Config{WAL: wlog})
	if err := cat.Open(); err != nil {
		return cell, err
	}
	srv := server.New(server.Config{Catalog: cat, Admission: adm})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return cell, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}()

	ctx := context.Background()
	// One pooled transport per cell: without enough idle conns per host
	// the load queues in connection churn instead of reaching the
	// server's admission gate.
	tr := &http.Transport{
		MaxIdleConns:        cell.Clients + 8,
		MaxIdleConnsPerHost: cell.Clients + 8,
	}
	defer tr.CloseIdleConnections()
	pooled := &http.Client{Transport: tr, Timeout: 30 * time.Second}
	admin := client.New("http://"+ln.Addr().String(), client.WithHTTPClient(pooled))
	if _, err := admin.Create(ctx, client.Schema{
		Name: "stream", ValidTime: "event", Granularity: 1,
	}); err != nil {
		return cell, err
	}

	var (
		wg      sync.WaitGroup
		vtSeq   atomic.Int64
		acked   atomic.Uint64
		shed    atomic.Uint64
		errs    atomic.Uint64
		latMu   sync.Mutex
		latency []time.Duration // acked requests only
	)
	deadline := time.Now().Add(dur)
	for c := 0; c < cell.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// No retry policy: each loop measures one raw attempt. A shed
			// still pauses the loop briefly — a client that hammers with
			// zero backoff measures retry-storm CPU, not admission.
			cli := client.New("http://"+ln.Addr().String(), client.WithHTTPClient(pooled))
			var mine []time.Duration
			for time.Now().Before(deadline) {
				vt := vtSeq.Add(1)
				t0 := time.Now()
				_, err := cli.Insert(ctx, "stream", client.InsertRequest{VT: client.EventAt(vt)})
				d := time.Since(t0)
				switch {
				case err == nil:
					acked.Add(1)
					mine = append(mine, d)
				case client.IsOverloaded(err) || client.IsUnavailable(err):
					shed.Add(1)
					time.Sleep(shedBackoff)
				default:
					errs.Add(1)
				}
			}
			latMu.Lock()
			latency = append(latency, mine...)
			latMu.Unlock()
		}()
	}
	wg.Wait()
	if errs.Load() > 0 {
		return cell, fmt.Errorf("%d request(s) failed with non-shed errors", errs.Load())
	}
	cell.Acked = acked.Load()
	cell.Shed = shed.Load()
	cell.AckedPerSec = float64(cell.Acked) / dur.Seconds()
	sort.Slice(latency, func(i, j int) bool { return latency[i] < latency[j] })
	if len(latency) > 0 {
		cell.P50MS = float64(latency[len(latency)/2].Microseconds()) / 1000
		cell.P99MS = float64(latency[len(latency)*99/100].Microseconds()) / 1000
	}
	if shedding {
		m, err := admin.Metrics(ctx)
		if err != nil {
			return cell, err
		}
		w := m.Admission["write"]
		cell.ServerShedOverload = w.ShedOverload
		cell.ServerShedTimeout = w.ShedTimeout
		cell.MaxQueueDepth = w.MaxQueueDepth
		if clientShed := cell.Shed; w.ShedOverload+w.ShedTimeout+w.ShedCanceled != clientShed {
			return cell, fmt.Errorf("books don't balance: server shed %d+%d+%d, clients saw %d",
				w.ShedOverload, w.ShedTimeout, w.ShedCanceled, clientShed)
		}
	}
	return cell, nil
}
