package main

// S6 — automatic physical design: the closed specialization loop measured
// end to end. Three undeclared workloads — degenerate (vt = tt),
// sequential (vt trails tt but stays ordered), and general (random valid
// times) — are loaded into heap/tt-log organizations, probed, then handed
// to one advisor pass (exactly what tsdbd -auto-specialize runs per
// tick). The degenerate and sequential relations must migrate to the
// inferred vt-ordered log and answer valid-time queries by binary search
// instead of scanning; the general relation is the control and must not
// migrate. Every probe is replayed after the migration and compared
// element by element: the loop may change plans, never answers. Results
// go to BENCH_physdesign.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"repro/internal/catalog"
	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/tx"
)

// physProbe is one side (before or after migration) of a workload's
// measurement: per-query latency quantiles and the cost-model's touched
// counts for the paper's two query kinds.
type physProbe struct {
	TimesliceP50US   float64 `json:"timeslice_p50_us"`
	TimesliceP99US   float64 `json:"timeslice_p99_us"`
	RollbackP50US    float64 `json:"rollback_p50_us"`
	RollbackP99US    float64 `json:"rollback_p99_us"`
	TimesliceTouched float64 `json:"timeslice_touched_avg"`
	RollbackTouched  float64 `json:"rollback_touched_avg"`
	StoreBytes       int64   `json:"store_bytes"`
	Org              string  `json:"org"`
}

// physRow is one workload's row in BENCH_physdesign.json.
type physRow struct {
	Workload         string    `json:"workload"`
	Elements         int       `json:"elements"`
	Migrated         bool      `json:"migrated"`
	Source           string    `json:"source,omitempty"`
	InferredClasses  []string  `json:"inferred_classes,omitempty"`
	Before           physProbe `json:"before"`
	After            physProbe `json:"after"`
	SealedElements   int       `json:"sealed_elements"`
	PackedBytes      int64     `json:"packed_bytes"`
	TouchedReduction float64   `json:"timeslice_touched_reduction"`
	LatencySpeedup   float64   `json:"timeslice_p50_speedup"`
	Divergence       int       `json:"result_divergence"` // probes whose answers changed; must be 0
}

// physdesignResult is the BENCH_physdesign.json document.
type physdesignResult struct {
	Experiment string    `json:"experiment"`
	Elements   int       `json:"elements"`
	Rows       []physRow `json:"rows"`
}

// physWorkload loads one undeclared relation: vt(i) decides the class the
// tracker will observe. The logical clock stamps tt = 10, 20, 30, ...
func physWorkload(name string, n int, vt func(i int) chronon.Chronon) (*catalog.Catalog, *catalog.Entry, func(), error) {
	dir, err := os.MkdirTemp("", "tsdbd-physdesign-")
	if err != nil {
		return nil, nil, nil, err
	}
	cleanup := func() { os.RemoveAll(dir) }
	cat := catalog.New(catalog.Config{
		Dir:      dir,
		NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
	})
	e, err := cat.Create(relation.Schema{
		Name: name, ValidTime: element.EventStamp, Granularity: chronon.Second,
	})
	if err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	for i := 1; i <= n; i++ {
		if _, err := e.Insert(relation.Insertion{VT: element.EventAt(vt(i))}); err != nil {
			cleanup()
			return nil, nil, nil, err
		}
	}
	return cat, e, cleanup, nil
}

// elementsKey canonicalizes a result's elements for divergence checks.
func elementsKey(res catalog.QueryResult) string {
	keys := make([]string, len(res.Elements))
	for i, el := range res.Elements {
		keys[i] = fmt.Sprintf("%v|%v|%v|%v", el.ES, el.VT, el.TTStart, el.TTEnd)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k + "\n"
	}
	return out
}

func quantileUS(durs []time.Duration, q float64) float64 {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx].Nanoseconds()) / 1e3
}

// probeEntry runs the probe set against the entry and records latencies,
// touched counts, and the canonical answers for the divergence check.
func probeEntry(e *catalog.Entry, probes []chronon.Chronon) (physProbe, []string, error) {
	ctx := context.Background()
	var p physProbe
	var tsDurs, rbDurs []time.Duration
	var tsTouched, rbTouched int
	answers := make([]string, 0, 2*len(probes))
	for _, vt := range probes {
		start := time.Now()
		res, err := e.TimesliceCtx(ctx, vt)
		if err != nil {
			return p, nil, fmt.Errorf("timeslice: %w", err)
		}
		tsDurs = append(tsDurs, time.Since(start))
		tsTouched += res.Touched
		answers = append(answers, elementsKey(res))

		start = time.Now()
		res, err = e.RollbackCtx(ctx, vt)
		if err != nil {
			return p, nil, fmt.Errorf("rollback: %w", err)
		}
		rbDurs = append(rbDurs, time.Since(start))
		rbTouched += res.Touched
		answers = append(answers, elementsKey(res))
	}
	phys := e.Physical()
	p.TimesliceP50US = quantileUS(tsDurs, 0.50)
	p.TimesliceP99US = quantileUS(tsDurs, 0.99)
	p.RollbackP50US = quantileUS(rbDurs, 0.50)
	p.RollbackP99US = quantileUS(rbDurs, 0.99)
	p.TimesliceTouched = float64(tsTouched) / float64(len(probes))
	p.RollbackTouched = float64(rbTouched) / float64(len(probes))
	p.StoreBytes = phys.StoreBytes
	p.Org = phys.Org.String()
	return p, answers, nil
}

// runS6 measures each workload before and after one advisor pass.
func runS6(n int) error {
	if n > 8000 {
		// Three full workload loads at the default size would dominate the
		// whole suite's runtime (every insert republishes an O(n) snapshot
		// view); 8k elements already separates binary search from scans by
		// three orders of magnitude in elements touched.
		n = 8000
	}
	const probeCount = 512
	rng := rand.New(rand.NewSource(6))
	workloads := []struct {
		name        string
		vt          func(i int) chronon.Chronon
		wantMigrate bool
	}{
		// vt = tt: the degenerate class — one shared order serves both
		// query kinds (§3.1's limit case).
		{"degenerate", func(i int) chronon.Chronon { return chronon.Chronon(10 * i) }, true},
		// vt trails tt by a bounded lag but stays globally ordered and
		// non-overlapping: globally sequential events (§3.2).
		{"sequential", func(i int) chronon.Chronon { return chronon.Chronon(10*i - 3) }, true},
		// Random valid times: no order to infer; the control must keep
		// its general organization.
		{"general", func(i int) chronon.Chronon { return chronon.Chronon(1 + rng.Intn(10*n)) }, false},
	}

	result := physdesignResult{Experiment: "S6", Elements: n}
	fmt.Printf("%-12s %-16s %-16s %12s %12s %10s %10s %8s\n",
		"workload", "org before", "org after", "ts-touch pre", "ts-touch post", "p50 pre", "p50 post", "sealed")
	for _, w := range workloads {
		cat, e, cleanup, err := physWorkload(w.name, n, w.vt)
		if err != nil {
			return err
		}
		probes := make([]chronon.Chronon, probeCount)
		for i := range probes {
			probes[i] = chronon.Chronon(10 * (1 + rng.Intn(n)))
		}

		before, beforeAnswers, err := probeEntry(e, probes)
		if err != nil {
			cleanup()
			return fmt.Errorf("%s before: %w", w.name, err)
		}
		rep, err := cat.AdvisePass(catalog.AdvisorConfig{}) // zero thresholds: always look
		if err != nil {
			cleanup()
			return fmt.Errorf("%s advise: %w", w.name, err)
		}
		after, afterAnswers, err := probeEntry(e, probes)
		if err != nil {
			cleanup()
			return fmt.Errorf("%s after: %w", w.name, err)
		}
		phys := e.Physical()
		cleanup()

		divergence := 0
		for i := range beforeAnswers {
			if beforeAnswers[i] != afterAnswers[i] {
				divergence++
			}
		}
		row := physRow{
			Workload:       w.name,
			Elements:       n,
			Migrated:       len(rep.Migrations) > 0,
			Source:         phys.Source,
			Before:         before,
			After:          after,
			SealedElements: phys.Compaction.Sealed,
			PackedBytes:    phys.Compaction.PackedBytes,
			Divergence:     divergence,
		}
		for _, cl := range phys.Inferred {
			row.InferredClasses = append(row.InferredClasses, cl.String())
		}
		if after.TimesliceTouched > 0 {
			row.TouchedReduction = before.TimesliceTouched / after.TimesliceTouched
		}
		if after.TimesliceP50US > 0 {
			row.LatencySpeedup = before.TimesliceP50US / after.TimesliceP50US
		}
		result.Rows = append(result.Rows, row)

		fmt.Printf("%-12s %-16s %-16s %12.0f %12.0f %9.1fµ %9.1fµ %8d\n",
			w.name, before.Org, after.Org,
			before.TimesliceTouched, after.TimesliceTouched,
			before.TimesliceP50US, after.TimesliceP50US, phys.Compaction.Sealed)

		if divergence != 0 {
			return fmt.Errorf("%s: %d probes diverged across the migration", w.name, divergence)
		}
		if w.wantMigrate != row.Migrated {
			return fmt.Errorf("%s: migrated=%v, want %v", w.name, row.Migrated, w.wantMigrate)
		}
		if w.wantMigrate {
			if after.Org != storage.VTOrdered.String() {
				return fmt.Errorf("%s: post-migration org %s", w.name, after.Org)
			}
			if after.TimesliceTouched >= before.TimesliceTouched {
				return fmt.Errorf("%s: migration did not reduce elements touched (%.0f -> %.0f)",
					w.name, before.TimesliceTouched, after.TimesliceTouched)
			}
		}
	}

	doc, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_physdesign.json", append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_physdesign.json")
	return nil
}
