package main

// S2 — the durability path: acknowledged-writes/sec through the catalog
// under the three durability configurations (snapshot-only, -wal-sync=always,
// -wal-sync=group), plus the boot-time replay rate for a large log. The
// group-commit column is the experiment's point: concurrent committers
// share fsyncs, so group approaches snapshot-only throughput while keeping
// the always policy's crash guarantee. Results go to BENCH_wal.json.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/tx"
	"repro/internal/wal"
)

// walConfigResult is one durability configuration's row in BENCH_wal.json.
type walConfigResult struct {
	Name          string  `json:"name"`
	AckedWrites   int     `json:"acked_writes"`
	DurationMS    int64   `json:"duration_ms"`
	WritesPerSec  float64 `json:"acked_writes_per_sec"`
	Fsyncs        uint64  `json:"fsyncs"`
	MeanBatch     float64 `json:"mean_batch"`
	MaxBatch      uint64  `json:"max_batch"`
	MeanAckUS     int64   `json:"mean_ack_us"`
	DurableRecord uint64  `json:"durable_lsn"`
}

// durabilityResult is the BENCH_wal.json document.
type durabilityResult struct {
	Experiment       string            `json:"experiment"`
	Writers          int               `json:"writers"`
	WritesPerConfig  int               `json:"writes_per_config"`
	Configs          []walConfigResult `json:"configs"`
	ReplayRecords    int               `json:"replay_records"`
	ReplayMS         int64             `json:"replay_ms"`
	ReplayRecsPerSec float64           `json:"replay_records_per_sec"`
}

func logicalClocks() func() tx.Clock {
	return func() tx.Clock { return tx.NewLogicalClock(0, 10) }
}

// runS2Config measures one durability configuration: writers concurrent
// goroutines, each appending into its own relation, every write
// acknowledged per the configuration's policy.
func runS2Config(name string, writers, perWriter int, policy wal.SyncPolicy, useWAL bool) (walConfigResult, error) {
	out := walConfigResult{Name: name, AckedWrites: writers * perWriter}
	dir, err := os.MkdirTemp("", "tsdb-walbench-")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(dir)

	var w *wal.Log
	if useWAL {
		w, err = wal.Open(wal.Options{Dir: filepath.Join(dir, "wal"), Sync: policy})
		if err != nil {
			return out, err
		}
		defer w.Close()
	}
	cat := catalog.New(catalog.Config{Dir: filepath.Join(dir, "data"), NewClock: logicalClocks(), WAL: w})
	if err := cat.Open(); err != nil {
		return out, err
	}
	entries := make([]*catalog.Entry, writers)
	for i := range entries {
		e, err := cat.Create(relation.Schema{
			Name:        fmt.Sprintf("stream_%02d", i),
			ValidTime:   element.EventStamp,
			Granularity: 1,
		})
		if err != nil {
			return out, err
		}
		entries[i] = e
	}

	errc := make(chan error, writers)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			e := entries[g]
			for i := 0; i < perWriter; i++ {
				if _, err := e.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(i))}); err != nil {
					errc <- fmt.Errorf("writer %d insert %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		return out, err
	}
	elapsed := time.Since(start)

	out.DurationMS = elapsed.Milliseconds()
	out.WritesPerSec = float64(out.AckedWrites) / elapsed.Seconds()
	out.MeanAckUS = int64(elapsed) / int64(out.AckedWrites) / 1000 * int64(writers)
	if w != nil {
		st := w.Stats()
		out.Fsyncs = st.Fsyncs
		out.MeanBatch = st.MeanBatch()
		out.MaxBatch = st.MaxBatch
		out.DurableRecord = st.DurableLSN
		// Every acknowledged write (plus each create) must be durable.
		if want := uint64(out.AckedWrites + writers); st.DurableLSN < want {
			return out, fmt.Errorf("%s: durable lsn %d < %d acked records", name, st.DurableLSN, want)
		}
	}
	if err := cat.Close(); err != nil {
		return out, err
	}
	return out, nil
}

// runS2 runs the three durability configurations and the replay benchmark,
// prints the table, and writes BENCH_wal.json.
func runS2(n int) error {
	const writers = 8
	perWriter := n / writers
	// The always column fsyncs once per write; keep it seconds-scale.
	if perWriter > 500 {
		perWriter = 500
	}
	if perWriter < 10 {
		perWriter = 10
	}
	total := writers * perWriter

	res := durabilityResult{Experiment: "S2", Writers: writers, WritesPerConfig: total}
	configs := []struct {
		name   string
		policy wal.SyncPolicy
		useWAL bool
	}{
		{"snapshot-only (no wal)", wal.SyncGroup, false},
		{"wal-sync=always", wal.SyncAlways, true},
		{"wal-sync=group", wal.SyncGroup, true},
	}
	fmt.Printf("%d writers × %d acked writes per configuration\n", writers, perWriter)
	fmt.Printf("%-24s %12s %10s %12s %10s\n", "configuration", "writes/s", "fsyncs", "mean batch", "total")
	for _, cfg := range configs {
		row, err := runS2Config(cfg.name, writers, perWriter, cfg.policy, cfg.useWAL)
		if err != nil {
			return err
		}
		res.Configs = append(res.Configs, row)
		fmt.Printf("%-24s %12.0f %10d %12.1f %10s\n",
			row.Name, row.WritesPerSec, row.Fsyncs, row.MeanBatch,
			time.Duration(row.DurationMS*int64(time.Millisecond)).Round(time.Millisecond))
	}
	// Group commit must not fsync once per write when writers overlap; the
	// mean batch is the proof (ratio of records to fsyncs).
	group := res.Configs[len(res.Configs)-1]
	always := res.Configs[1]
	if group.Fsyncs >= always.Fsyncs && group.MeanBatch <= 1.0 {
		fmt.Println("note: group commit found no overlapping committers on this machine")
	}

	// Replay: a large log with no snapshot coverage, rebooted cold.
	replayRecords := 100_000
	if n < 20_000 {
		replayRecords = 5 * n
	}
	dir, err := os.MkdirTemp("", "tsdb-walreplay-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	walDir := filepath.Join(dir, "wal")
	// Build the log with the interval policy: acks don't wait, so the build
	// is write-bound, and Close flushes the tail.
	w, err := wal.Open(wal.Options{Dir: walDir, Sync: wal.SyncInterval})
	if err != nil {
		return err
	}
	cat := catalog.New(catalog.Config{NewClock: logicalClocks(), WAL: w})
	if err := cat.Open(); err != nil {
		return err
	}
	e, err := cat.Create(relation.Schema{Name: "big", ValidTime: element.EventStamp, Granularity: 1})
	if err != nil {
		return err
	}
	for i := 0; i < replayRecords; i++ {
		if _, err := e.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(i))}); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}

	start := time.Now()
	w2, err := wal.Open(wal.Options{Dir: walDir, Sync: wal.SyncGroup})
	if err != nil {
		return err
	}
	cat2 := catalog.New(catalog.Config{NewClock: logicalClocks(), WAL: w2})
	if err := cat2.Open(); err != nil {
		return err
	}
	replayDur := time.Since(start)
	defer w2.Close()
	e2, err := cat2.Get("big")
	if err != nil {
		return err
	}
	if got := e2.Info().Versions; got != replayRecords {
		return fmt.Errorf("replay recovered %d records, want %d", got, replayRecords)
	}
	res.ReplayRecords = replayRecords
	res.ReplayMS = replayDur.Milliseconds()
	res.ReplayRecsPerSec = float64(replayRecords) / replayDur.Seconds()
	fmt.Printf("replay: %d records (create + %d inserts) rebooted in %v (%.0f records/s)\n",
		replayRecords, replayRecords-1, replayDur.Round(time.Millisecond), res.ReplayRecsPerSec)

	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_wal.json", append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_wal.json")
	return nil
}
