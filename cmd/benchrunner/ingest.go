package main

// S9 — firehose ingest: the batched WAL frame against one-element
// inserts, all under the group-commit sync policy a production tsdbd
// runs. Three measurements back the claim:
//
//  1. Sustained acked elements/sec at batch sizes 1, 32, 256 — batch=256
//     must clear 10x the single-insert rate (one frame, one fsync quorum,
//     one epoch publish, one Merkle leaf per 256 elements instead of per
//     element).
//  2. Cold-boot replay rate of a log built entirely from batch frames.
//  3. Follower catch-up on the same batched log: the frame ships as-is,
//     so the replication feed gets the identical amortization.
//
// Results go to BENCH_ingest.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/client"
	"repro/internal/catalog"
	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/wal"
)

// ingestConfigResult is one batch-size row of BENCH_ingest.json.
type ingestConfigResult struct {
	Name        string  `json:"name"`
	BatchSize   int     `json:"batch_size"`
	Elements    int     `json:"elements"`
	DurationMS  int64   `json:"duration_ms"`
	ElemsPerSec float64 `json:"elements_per_sec"`
	WALRecords  uint64  `json:"wal_records"`
	Fsyncs      uint64  `json:"fsyncs"`
	Epochs      uint64  `json:"epoch_publishes"`
}

// ingestResult is the BENCH_ingest.json document.
type ingestResult struct {
	Experiment        string               `json:"experiment"`
	Configs           []ingestConfigResult `json:"configs"`
	SpeedupAt256      float64              `json:"speedup_at_256"`
	ReplayElements    int                  `json:"replay_elements"`
	ReplayBatches     int                  `json:"replay_batches"`
	ReplayMS          int64                `json:"replay_ms"`
	ReplayElemsPerSec float64              `json:"replay_elements_per_sec"`
	ShipElements      int                  `json:"follower_elements"`
	ShipMS            int64                `json:"follower_catchup_ms"`
	ShipElemsPerSec   float64              `json:"follower_elements_per_sec"`
}

// runS9Config drives one sequential ingest stream — the shape of a bulk
// loader — at the given batch size and reports the acked rate plus the
// per-element costs the batch amortizes.
func runS9Config(name string, batch, elements int) (ingestConfigResult, error) {
	out := ingestConfigResult{Name: name, BatchSize: batch, Elements: elements}
	dir, err := os.MkdirTemp("", "tsdb-ingestbench-")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(dir)
	w, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "wal"), Sync: wal.SyncGroup})
	if err != nil {
		return out, err
	}
	defer w.Close()
	cat := catalog.New(catalog.Config{Dir: filepath.Join(dir, "data"), NewClock: logicalClocks(), WAL: w})
	if err := cat.Open(); err != nil {
		return out, err
	}
	e, err := cat.Create(relation.Schema{Name: "fire", ValidTime: element.EventStamp, Granularity: 1})
	if err != nil {
		return out, err
	}

	ctx := context.Background()
	records0, fsyncs0 := w.Stats().Appended, w.Stats().Fsyncs
	epoch0 := e.Epoch()
	start := time.Now()
	if batch <= 1 {
		for i := 0; i < elements; i++ {
			if _, err := e.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(i))}); err != nil {
				return out, err
			}
		}
	} else {
		ins := make([]relation.Insertion, 0, batch)
		for i := 0; i < elements; i += len(ins) {
			ins = ins[:0]
			for j := i; j < elements && len(ins) < batch; j++ {
				ins = append(ins, relation.Insertion{VT: element.EventAt(chronon.Chronon(j))})
			}
			res, err := e.InsertBatch(ctx, ins, nil, false)
			if err != nil {
				return out, err
			}
			if res.Stored != len(ins) {
				return out, fmt.Errorf("%s: batch stored %d of %d", name, res.Stored, len(ins))
			}
		}
	}
	elapsed := time.Since(start)
	out.DurationMS = elapsed.Milliseconds()
	out.ElemsPerSec = float64(elements) / elapsed.Seconds()
	out.WALRecords = w.Stats().Appended - records0
	out.Fsyncs = w.Stats().Fsyncs - fsyncs0
	out.Epochs = e.Epoch() - epoch0
	if got := e.Info().Versions; got != elements {
		return out, fmt.Errorf("%s: relation holds %d versions, want %d", name, got, elements)
	}
	return out, cat.Close()
}

// runS9 measures the three ingest claims and writes BENCH_ingest.json.
func runS9(n int) error {
	// The single-insert stream acks one fsync'd frame per element; keep it
	// seconds-scale and normalize everything to elements/sec.
	single := n / 10
	if single > 2000 {
		single = 2000
	}
	if single < 100 {
		single = 100
	}
	res := ingestResult{Experiment: "S9"}
	configs := []struct {
		name     string
		batch    int
		elements int
	}{
		{"single insert", 1, single},
		{"batch=32", 32, n},
		{"batch=256", 256, n},
	}
	fmt.Printf("%-16s %12s %12s %12s %10s %10s\n", "configuration", "elements", "elems/s", "wal records", "fsyncs", "epochs")
	for _, cfg := range configs {
		row, err := runS9Config(cfg.name, cfg.batch, cfg.elements)
		if err != nil {
			return err
		}
		res.Configs = append(res.Configs, row)
		fmt.Printf("%-16s %12d %12.0f %12d %10d %10d\n",
			row.Name, row.Elements, row.ElemsPerSec, row.WALRecords, row.Fsyncs, row.Epochs)
	}
	res.SpeedupAt256 = res.Configs[2].ElemsPerSec / res.Configs[0].ElemsPerSec
	fmt.Printf("batch=256 vs single insert: %.1fx sustained elements/sec\n", res.SpeedupAt256)
	if res.SpeedupAt256 < 10 {
		return fmt.Errorf("batch=256 speedup %.1fx < 10x claim", res.SpeedupAt256)
	}
	// One frame per full batch: the WAL record count is the proof the
	// amortization is structural, not a timing artifact.
	if want := uint64((n + 255) / 256); res.Configs[2].WALRecords != want {
		return fmt.Errorf("batch=256 wrote %d WAL records for %d elements, want %d",
			res.Configs[2].WALRecords, n, want)
	}

	// Replay: a log of nothing but batch frames, rebooted cold.
	dir, err := os.MkdirTemp("", "tsdb-ingestreplay-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	walDir := filepath.Join(dir, "wal")
	w, err := wal.Open(wal.Options{Dir: walDir, Sync: wal.SyncInterval})
	if err != nil {
		return err
	}
	cat := catalog.New(catalog.Config{NewClock: logicalClocks(), WAL: w})
	if err := cat.Open(); err != nil {
		return err
	}
	e, err := cat.Create(relation.Schema{Name: "fire", ValidTime: element.EventStamp, Granularity: 1})
	if err != nil {
		return err
	}
	ctx := context.Background()
	batches := 0
	for i := 0; i < n; i += 256 {
		ins := make([]relation.Insertion, 0, 256)
		for j := i; j < n && len(ins) < 256; j++ {
			ins = append(ins, relation.Insertion{VT: element.EventAt(chronon.Chronon(j))})
		}
		if _, err := e.InsertBatch(ctx, ins, nil, false); err != nil {
			return err
		}
		batches++
	}
	if err := w.Close(); err != nil {
		return err
	}
	start := time.Now()
	w2, err := wal.Open(wal.Options{Dir: walDir, Sync: wal.SyncGroup})
	if err != nil {
		return err
	}
	defer w2.Close()
	cat2 := catalog.New(catalog.Config{NewClock: logicalClocks(), WAL: w2})
	if err := cat2.Open(); err != nil {
		return err
	}
	replay := time.Since(start)
	e2, err := cat2.Get("fire")
	if err != nil {
		return err
	}
	if got := e2.Info().Versions; got != n {
		return fmt.Errorf("replay recovered %d elements, want %d", got, n)
	}
	res.ReplayElements = n
	res.ReplayBatches = batches
	res.ReplayMS = replay.Milliseconds()
	res.ReplayElemsPerSec = float64(n) / replay.Seconds()
	fmt.Printf("replay: %d elements in %d batch frames rebooted in %v (%.0f elements/s)\n",
		n, batches, replay.Round(time.Millisecond), res.ReplayElemsPerSec)

	// Follower catch-up over the batched feed: frames ship as-is, so the
	// follower pays one apply per 256 elements too.
	root, err := os.MkdirTemp("", "tsdb-ingestship-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	primary, pcat, err := bootClusterPrimary(root + "/primary")
	if err != nil {
		return err
	}
	defer primary.stop()
	pcli := client.New(primary.url)
	if _, err := pcli.Create(ctx, client.Schema{Name: "fire", ValidTime: "event", Granularity: 1}); err != nil {
		return err
	}
	reqs := make([]client.InsertRequest, 0, 256)
	for i := 0; i < n; i += len(reqs) {
		reqs = reqs[:0]
		for j := i; j < n && len(reqs) < 256; j++ {
			reqs = append(reqs, client.InsertRequest{VT: client.EventAt(int64(j))})
		}
		if _, err := pcli.InsertBatch(ctx, "fire", reqs, false); err != nil {
			return err
		}
	}
	durable := pcat.WAL().DurableLSN()
	f, catchup, err := bootClusterFollower(root+"/follower", primary.url)
	if err != nil {
		return err
	}
	defer f.stop()
	res.ShipElements = n
	res.ShipMS = catchup.Milliseconds()
	res.ShipElemsPerSec = float64(n) / catchup.Seconds()
	fmt.Printf("follower: caught up %d elements (%d durable WAL records) in %v (%.0f elements/s)\n",
		n, durable, catchup.Round(time.Millisecond), res.ShipElemsPerSec)

	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_ingest.json", append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_ingest.json")
	return nil
}
