package main

// S4 — the read path at scale: epoch-stamped snapshot reads vs the
// shared-lock read path under a steady writer, and the plan-keyed result
// cache's hit latency vs executing every query. Both phases run at the
// catalog level (in-process, WAL off) so the numbers isolate the read
// path itself from HTTP and durability costs. Results are printed and
// written to BENCH_readpath.json.
//
// Phase 1 (throughput): an undeclared relation — heap store, so every
// time-slice scans — preloaded with n elements, a steady paced writer,
// and 1/2/4/8 readers cycling over a small hot set of time-slices (the
// dashboard shape: the same few queries re-asked continuously while
// writes trickle in). Pacing the writer keeps data growth identical
// across modes (an unpaced writer starves under the lock but runs free
// under snapshots, which would compare scans over different
// extensions). Three read paths are measured: the pre-epoch shared-lock
// baseline (Config.LockedReads — scans, and fences behind every
// exclusive acquisition), bare snapshot reads (scans against the pinned
// view, no lock), and the full read path with the result cache (hot
// queries are answered from the (relation, fingerprint, epoch) entry
// until the writer's next epoch bump). On a multi-core host the
// snapshot column additionally scales with readers, since scans
// parallelize; on a single-CPU host scans are compute-bound, so the
// bare-snapshot and locked columns converge and the throughput win
// comes from the cache doing less work per query.
//
// Phase 2 (cache): a larger relation, no writer, one query repeated.
// With the cache off every repetition re-executes the scan; with it on,
// the first execution fills the cache and the rest are lookups.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/relation"
)

// readpathRow is one reader-count measurement of phase 1.
type readpathRow struct {
	Readers       int     `json:"readers"`
	LockedQPS     float64 `json:"locked_qps"`
	SnapshotQPS   float64 `json:"snapshot_qps"`
	SnapCacheQPS  float64 `json:"snapshot_cache_qps"`
	SnapSpeedup   float64 `json:"snapshot_over_locked"`
	CacheSpeedup  float64 `json:"cached_over_locked"`
	LockedWrites  float64 `json:"locked_writes_per_sec"`
	SnapshotWrite float64 `json:"snapshot_writes_per_sec"`
}

// cacheResult is phase 2 of BENCH_readpath.json.
type cacheResult struct {
	Elements  int     `json:"elements"`
	MissUS    float64 `json:"miss_us"`
	HitUS     float64 `json:"hit_us"`
	Speedup   float64 `json:"hit_speedup"`
	Hits      uint64  `json:"cache_hits"`
	Misses    uint64  `json:"cache_misses"`
	BytesUsed int64   `json:"cache_bytes"`
}

// readpathResult is the BENCH_readpath.json document.
type readpathResult struct {
	Experiment string        `json:"experiment"`
	Elements   int           `json:"elements"`
	MeasureMS  int64         `json:"measure_ms"`
	Throughput []readpathRow `json:"throughput"`
	SpeedupAt8 float64       `json:"readpath_speedup_at_8_readers"` // full read path (snapshot+cache) over the locked baseline
	Cache      cacheResult   `json:"cache"`
}

// buildRelation makes a catalog under cfg and preloads one undeclared
// event relation (heap store: time-slices scan the extension).
func buildRelation(cfg catalog.Config, name string, elements int) (*catalog.Catalog, *catalog.Entry, func(), error) {
	dir, err := os.MkdirTemp("", "tsdbd-readpath-")
	if err != nil {
		return nil, nil, nil, err
	}
	cleanup := func() { os.RemoveAll(dir) }
	cfg.Dir = dir
	cat := catalog.New(cfg)
	e, err := cat.Create(relation.Schema{
		Name: name, ValidTime: element.EventStamp, Granularity: chronon.Second,
	})
	if err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	for vt := 0; vt < elements; vt++ {
		if _, err := e.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(vt))}); err != nil {
			cleanup()
			return nil, nil, nil, err
		}
	}
	return cat, e, cleanup, nil
}

// hammer runs `readers` query goroutines plus one steady writer against
// the entry for the measurement window and reports both rates.
func hammer(e *catalog.Entry, elements, readers int, window time.Duration) (qps, wps float64, err error) {
	ctx := context.Background()
	var stop atomic.Bool
	var queries, writes atomic.Int64
	var firstErr atomic.Value
	fail := func(err error) {
		stop.Store(true)
		firstErr.CompareAndSwap(nil, err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the steady writer, paced so growth is equal across modes
		defer wg.Done()
		vt := int64(elements)
		for !stop.Load() {
			if _, err := e.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(vt))}); err != nil {
				fail(fmt.Errorf("writer: %w", err))
				return
			}
			vt++
			writes.Add(1)
			time.Sleep(5 * time.Millisecond)
		}
	}()
	const hotSet = 16 // distinct time-slices the readers cycle over
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := r
			for !stop.Load() {
				vt := chronon.Chronon((i * 7919) % hotSet * (elements / hotSet))
				res, err := e.TimesliceCtx(ctx, vt)
				if err != nil {
					fail(fmt.Errorf("reader: %w", err))
					return
				}
				if len(res.Elements) == 0 {
					fail(fmt.Errorf("timeslice at %d found nothing", vt))
					return
				}
				i++
				queries.Add(1)
			}
		}(r)
	}
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return 0, 0, err
	}
	secs := window.Seconds()
	return float64(queries.Load()) / secs, float64(writes.Load()) / secs, nil
}

// runS4 measures both phases and writes BENCH_readpath.json.
func runS4(n int) error {
	elements := n
	if elements > 20000 {
		elements = 20000
	}
	const window = 300 * time.Millisecond

	modes := []struct {
		name string
		cfg  catalog.Config
	}{
		{"locked", catalog.Config{LockedReads: true}},
		{"snapshot", catalog.Config{}},
		{"snapshot+cache", catalog.Config{CacheBytes: 64 << 20}},
	}

	fmt.Printf("phase 1: %d-element relation, steady writer, %v per cell\n", elements, window)
	fmt.Printf("%-8s %14s %14s %16s %13s\n", "readers", "locked q/s", "snapshot q/s", "snap+cache q/s", "cached/locked")
	var rows []readpathRow
	for _, readers := range []int{1, 2, 4, 8} {
		row := readpathRow{Readers: readers}
		for _, m := range modes {
			_, e, cleanup, err := buildRelation(m.cfg, "events", elements)
			if err != nil {
				return err
			}
			qps, wps, err := hammer(e, elements, readers, window)
			cleanup()
			if err != nil {
				return fmt.Errorf("%s/%d readers: %w", m.name, readers, err)
			}
			switch m.name {
			case "locked":
				row.LockedQPS, row.LockedWrites = qps, wps
			case "snapshot":
				row.SnapshotQPS, row.SnapshotWrite = qps, wps
			case "snapshot+cache":
				row.SnapCacheQPS = qps
			}
		}
		row.SnapSpeedup = row.SnapshotQPS / row.LockedQPS
		row.CacheSpeedup = row.SnapCacheQPS / row.LockedQPS
		rows = append(rows, row)
		fmt.Printf("%-8d %14.0f %14.0f %16.0f %8.1fx\n",
			readers, row.LockedQPS, row.SnapshotQPS, row.SnapCacheQPS, row.CacheSpeedup)
	}

	// Phase 2: repeated time-slice against an idle relation, cache off vs on.
	cacheElems := 2 * elements
	const reps = 400
	ctx := context.Background()
	fixed := chronon.Chronon(cacheElems / 2)

	measure := func(cfg catalog.Config) (meanUS float64, cat *catalog.Catalog, cleanup func(), err error) {
		cat, e, cleanup, err := buildRelation(cfg, "archive", cacheElems)
		if err != nil {
			return 0, nil, nil, err
		}
		if _, err := e.TimesliceCtx(ctx, fixed); err != nil { // warm: fills the cache when one is on
			cleanup()
			return 0, nil, nil, err
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			res, err := e.TimesliceCtx(ctx, fixed)
			if err != nil {
				cleanup()
				return 0, nil, nil, err
			}
			if len(res.Elements) == 0 {
				cleanup()
				return 0, nil, nil, fmt.Errorf("cache-phase timeslice found nothing")
			}
		}
		return float64(time.Since(start).Microseconds()) / reps, cat, cleanup, nil
	}

	missUS, _, cleanOff, err := measure(catalog.Config{})
	if err != nil {
		return err
	}
	cleanOff()
	hitCfg := catalog.Config{CacheBytes: 64 << 20}
	hitUS, catOn, cleanOn, err := measure(hitCfg)
	if err != nil {
		return err
	}
	stats := catOn.Cache().Stats()
	cleanOn()
	if stats.Hits < reps {
		return fmt.Errorf("cache counted %d hits, want >= %d", stats.Hits, reps)
	}

	cache := cacheResult{
		Elements:  cacheElems,
		MissUS:    missUS,
		HitUS:     hitUS,
		Speedup:   missUS / hitUS,
		Hits:      stats.Hits,
		Misses:    stats.Misses,
		BytesUsed: stats.Bytes,
	}
	fmt.Printf("\nphase 2: %d-element relation, %d repeated time-slices\n", cacheElems, reps)
	fmt.Printf("%-26s %10.1f µs/query\n", "cache off (re-executed)", cache.MissUS)
	fmt.Printf("%-26s %10.1f µs/query\n", "cache on (served hits)", cache.HitUS)
	fmt.Printf("hit speedup %.1fx  (%d hits, %d misses, %d bytes resident)\n",
		cache.Speedup, cache.Hits, cache.Misses, cache.BytesUsed)

	res := readpathResult{
		Experiment: "S4",
		Elements:   elements,
		MeasureMS:  window.Milliseconds(),
		Throughput: rows,
		SpeedupAt8: rows[len(rows)-1].CacheSpeedup,
		Cache:      cache,
	}
	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_readpath.json", append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_readpath.json")
	return nil
}
