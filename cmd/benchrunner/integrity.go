package main

// S8 — the integrity tax and the scrub rate. First the write path:
// acked-writes/sec through the WAL-backed catalog with the per-relation
// Merkle accounting on vs off, at the always and group sync policies.
// Group commit is the shipping default, so its overhead percentage is
// the headline number (the leaf hash rides inside an fsync batch; the
// budget is <=15%). Then the read-back path: one unpaced scrub pass over
// a sealed corpus — WAL segments, snapshot shards, frozen runs — timed
// end to end, in MB/s. Results go to BENCH_integrity.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/wal"
)

// integrityRow is one write-path configuration in BENCH_integrity.json.
type integrityRow struct {
	Name         string  `json:"name"`
	Sync         string  `json:"sync"`
	Integrity    bool    `json:"integrity"`
	AckedWrites  int     `json:"acked_writes"`
	DurationMS   int64   `json:"duration_ms"`
	WritesPerSec float64 `json:"acked_writes_per_sec"`
	MerkleLeaves uint64  `json:"merkle_leaves,omitempty"`
}

// scrubResult is the scrub-throughput half of BENCH_integrity.json.
type scrubResult struct {
	Artifacts      int     `json:"artifacts"`
	Failures       int     `json:"failures"`
	Bytes          uint64  `json:"bytes"`
	SealedElements int     `json:"sealed_elements"`
	DurationMS     int64   `json:"duration_ms"`
	MBPerSec       float64 `json:"mb_per_sec"`
}

// integrityResult is the BENCH_integrity.json document.
type integrityResult struct {
	Experiment        string         `json:"experiment"`
	Writers           int            `json:"writers"`
	WritesPerConfig   int            `json:"writes_per_config"`
	Repetitions       int            `json:"repetitions"`
	Configs           []integrityRow `json:"configs"`
	OverheadAlwaysPct float64        `json:"overhead_always_pct"`
	OverheadGroupPct  float64        `json:"overhead_group_pct"`
	Scrub             scrubResult    `json:"scrub"`
}

// runS8Config measures one write-path configuration: writers concurrent
// goroutines appending into their own relations through the WAL, with
// Merkle accounting toggled by on.
func runS8Config(name string, writers, perWriter int, policy wal.SyncPolicy, on bool) (integrityRow, error) {
	out := integrityRow{Name: name, Sync: policy.String(), Integrity: on, AckedWrites: writers * perWriter}
	dir, err := os.MkdirTemp("", "tsdb-igbench-")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(dir)

	w, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "wal"), Sync: policy})
	if err != nil {
		return out, err
	}
	defer w.Close()
	cat := catalog.New(catalog.Config{
		Dir: filepath.Join(dir, "data"), NewClock: logicalClocks(), WAL: w,
		DisableIntegrity: !on,
	})
	if err := cat.Open(); err != nil {
		return out, err
	}
	entries := make([]*catalog.Entry, writers)
	for i := range entries {
		e, err := cat.Create(relation.Schema{
			Name:        fmt.Sprintf("stream_%02d", i),
			ValidTime:   element.EventStamp,
			Granularity: 1,
		})
		if err != nil {
			return out, err
		}
		entries[i] = e
	}

	errc := make(chan error, writers)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			e := entries[g]
			for i := 0; i < perWriter; i++ {
				if _, err := e.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(i))}); err != nil {
					errc <- fmt.Errorf("writer %d insert %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		return out, err
	}
	elapsed := time.Since(start)

	out.DurationMS = elapsed.Milliseconds()
	out.WritesPerSec = float64(out.AckedWrites) / elapsed.Seconds()
	if on {
		st := cat.IntegrityStats()
		out.MerkleLeaves = st.Leaves
		// Every acknowledged write (plus each create) must be a leaf.
		if want := uint64(out.AckedWrites + writers); st.Leaves < want {
			return out, fmt.Errorf("%s: %d merkle leaves < %d acked records", name, st.Leaves, want)
		}
	}
	return out, cat.Close()
}

// buildScrubCorpus loads a sealed catalog under dir: small WAL segments
// so several seal, snapshot shards for every relation, and frozen runs
// compacted over the stable prefix. Returns the open catalog and the
// elements sealed into runs.
func buildScrubCorpus(dir string, rels, perRel int) (*catalog.Catalog, int, error) {
	w, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "wal"), Sync: wal.SyncInterval, SegmentBytes: 1 << 18})
	if err != nil {
		return nil, 0, err
	}
	cat := catalog.New(catalog.Config{Dir: filepath.Join(dir, "data"), NewClock: logicalClocks(), WAL: w})
	if err := cat.Open(); err != nil {
		return nil, 0, err
	}
	for r := 0; r < rels; r++ {
		e, err := cat.Create(relation.Schema{
			Name:        fmt.Sprintf("corpus_%02d", r),
			ValidTime:   element.EventStamp,
			Granularity: 1,
		})
		if err != nil {
			return nil, 0, err
		}
		for i := 0; i < perRel; i++ {
			if _, err := e.Insert(relation.Insertion{VT: element.EventAt(chronon.Chronon(10 * (i + 1)))}); err != nil {
				return nil, 0, err
			}
		}
	}
	// Zero thresholds: migrate to the advised store and seal frozen runs
	// over every stable prefix, so the scrub corpus has all three artifact
	// kinds.
	rep, err := cat.AdvisePass(catalog.AdvisorConfig{})
	if err != nil {
		return nil, 0, err
	}
	if _, err := cat.Snapshot(); err != nil {
		return nil, 0, err
	}
	return cat, rep.Sealed, nil
}

// runS8 measures the integrity write tax and the scrub rate, prints the
// table, and writes BENCH_integrity.json.
func runS8(n int) error {
	const writers, reps = 8, 3
	perWriter := n / writers
	// The always columns fsync once per write; keep them seconds-scale.
	if perWriter > 500 {
		perWriter = 500
	}
	if perWriter < 10 {
		perWriter = 10
	}
	res := integrityResult{Experiment: "S8", Writers: writers, WritesPerConfig: writers * perWriter, Repetitions: reps}

	configs := []struct {
		name   string
		policy wal.SyncPolicy
		on     bool
	}{
		{"always, integrity off", wal.SyncAlways, false},
		{"always, integrity on", wal.SyncAlways, true},
		{"group, integrity off", wal.SyncGroup, false},
		{"group, integrity on", wal.SyncGroup, true},
	}
	fmt.Printf("%d writers × %d acked writes per configuration, best of %d\n", writers, perWriter, reps)
	fmt.Printf("%-24s %12s %14s\n", "configuration", "writes/s", "merkle leaves")
	for _, cfg := range configs {
		var best integrityRow
		for r := 0; r < reps; r++ {
			row, err := runS8Config(cfg.name, writers, perWriter, cfg.policy, cfg.on)
			if err != nil {
				return err
			}
			if row.WritesPerSec > best.WritesPerSec {
				best = row
			}
		}
		res.Configs = append(res.Configs, best)
		fmt.Printf("%-24s %12.0f %14d\n", best.Name, best.WritesPerSec, best.MerkleLeaves)
	}
	overhead := func(off, on integrityRow) float64 {
		return 100 * (off.WritesPerSec - on.WritesPerSec) / off.WritesPerSec
	}
	res.OverheadAlwaysPct = overhead(res.Configs[0], res.Configs[1])
	res.OverheadGroupPct = overhead(res.Configs[2], res.Configs[3])
	fmt.Printf("integrity overhead: %.1f%% at always, %.1f%% at group (budget 15%%)\n",
		res.OverheadAlwaysPct, res.OverheadGroupPct)

	// Scrub throughput over a sealed corpus.
	dir, err := os.MkdirTemp("", "tsdb-igscrub-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	perRel := n / 4
	if perRel < 100 {
		perRel = 100
	}
	cat, sealed, err := buildScrubCorpus(dir, 4, perRel)
	if err != nil {
		return err
	}
	scr := cat.NewScrubber(0) // unpaced: measure the verify rate itself
	start := time.Now()
	checked, failed, err := scr.RunOnce(context.Background())
	if err != nil {
		return err
	}
	dur := time.Since(start)
	if failed != 0 {
		return fmt.Errorf("scrub found %d corrupt artifact(s) in a pristine corpus", failed)
	}
	st := scr.Stats()
	res.Scrub = scrubResult{
		Artifacts:      checked,
		Failures:       failed,
		Bytes:          st.Bytes,
		SealedElements: sealed,
		DurationMS:     dur.Milliseconds(),
		MBPerSec:       float64(st.Bytes) / (1 << 20) / dur.Seconds(),
	}
	fmt.Printf("scrub: %d artifact(s), %d byte(s), %d element(s) in frozen runs, %v (%.1f MB/s)\n",
		checked, st.Bytes, sealed, dur.Round(time.Millisecond), res.Scrub.MBPerSec)
	if err := cat.Close(); err != nil {
		return err
	}

	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_integrity.json", append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_integrity.json")
	return nil
}
