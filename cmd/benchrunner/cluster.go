package main

// S5 — replication: a WAL-backed primary with followers tailing its
// shipping feed, all in-process on loopback HTTP. Measures (a) how long
// a cold follower takes to catch up to a preloaded primary, and (b)
// aggregate read throughput through the fan-out router as the node
// count grows 1 → 2 → 3, with mutations still flowing to the primary.
// Results go to BENCH_cluster.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/catalog"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wal"
)

// clusterTopology is one node-count row of BENCH_cluster.json.
type clusterTopology struct {
	Nodes     int     `json:"nodes"`
	Reads     int     `json:"reads"`
	ReadsPerS float64 `json:"reads_per_sec"`
	// FollowerServed counts reads whose ring owner was a follower; with
	// every follower synced these never touch the primary.
	FollowerServed int64 `json:"follower_served"`
	// PrimaryShare is the fraction of the read storm the primary itself
	// had to serve (from its own /metrics delta). This is the quantity
	// that scales with node count even on a single-core host, where
	// aggregate QPS is pinned by the shared CPU: each added follower
	// takes its owned relations' reads off the primary entirely.
	PrimaryShare float64 `json:"primary_share"`
}

// clusterResult is the BENCH_cluster.json document.
type clusterResult struct {
	Experiment string `json:"experiment"`
	Relations  int    `json:"relations"`
	RowsPerRel int    `json:"rows_per_relation"`
	// CatchupMS is each follower's time from boot to first sync against
	// the fully preloaded primary.
	CatchupMS  []int64           `json:"catchup_ms"`
	Topologies []clusterTopology `json:"topologies"`
}

// clusterNode is one running server plus its teardown.
type clusterNode struct {
	url  string
	stop func()
}

func bootClusterPrimary(dir string) (*clusterNode, *catalog.Catalog, error) {
	w, err := wal.Open(wal.Options{Dir: dir + "/wal", Sync: wal.SyncGroup})
	if err != nil {
		return nil, nil, err
	}
	cat := catalog.New(catalog.Config{Dir: dir + "/data", WAL: w})
	if err := cat.Open(); err != nil {
		return nil, nil, err
	}
	srv := server.New(server.Config{Catalog: cat})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	node := &clusterNode{
		url: "http://" + ln.Addr().String(),
		stop: func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			hs.Shutdown(ctx)
			cat.Close()
		},
	}
	return node, cat, nil
}

// bootClusterFollower starts a replica tailing primary and blocks until
// its first sync, returning how long the catch-up took.
func bootClusterFollower(dir, primary string) (*clusterNode, time.Duration, error) {
	cat := catalog.New(catalog.Config{Dir: dir, Follower: true})
	if err := cat.Open(); err != nil {
		return nil, 0, err
	}
	fol := repl.NewFollower(repl.FollowerConfig{
		Primary: primary, Catalog: cat, Wait: 50 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	start := time.Now()
	go func() { defer close(done); fol.Run(ctx) }()
	for !fol.Stats().Synced {
		if time.Since(start) > 30*time.Second {
			cancel()
			return nil, 0, fmt.Errorf("follower failed to sync within 30s: %+v", fol.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	catchup := time.Since(start)
	srv := server.New(server.Config{Catalog: cat, Follower: fol})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cancel()
		return nil, 0, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	node := &clusterNode{
		url: "http://" + ln.Addr().String(),
		stop: func() {
			cancel()
			<-done
			sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer scancel()
			hs.Shutdown(sctx)
			cat.Close()
		},
	}
	return node, catchup, nil
}

// runS5 preloads a primary, attaches two followers, and drives the
// router at each topology size.
func runS5(n int) error {
	// Enough relations that the consistent-hash split across ephemeral
	// node URLs concentrates near its expectation (primary owns ~1/nodes
	// of them) instead of being all-or-nothing.
	const (
		relations = 24
		readers   = 32
		window    = 600 * time.Millisecond
	)
	rows := n / relations
	if rows > 150 {
		rows = 150 // the read side is request-bound; keep preload seconds-scale
	}

	root, err := os.MkdirTemp("", "tsdbd-cluster-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	primary, pcat, err := bootClusterPrimary(root + "/primary")
	if err != nil {
		return err
	}
	defer primary.stop()

	ctx := context.Background()
	pcli := client.New(primary.url)
	rels := make([]string, relations)
	for i := range rels {
		rels[i] = fmt.Sprintf("rel%02d", i)
		if _, err := pcli.Create(ctx, client.Schema{
			Name: rels[i], ValidTime: "event", Granularity: 1,
		}); err != nil {
			return err
		}
		for j := 0; j < rows; j++ {
			if _, err := pcli.Insert(ctx, rels[i], client.InsertRequest{VT: client.EventAt(int64(j))}); err != nil {
				return err
			}
		}
	}
	durable := pcat.WAL().DurableLSN()
	fmt.Printf("primary preloaded: %d relations x %d rows (%d WAL records durable)\n", relations, rows, durable)

	res := clusterResult{Experiment: "S5", Relations: relations, RowsPerRel: rows}
	var followers []*clusterNode
	for i := 0; i < 2; i++ {
		f, catchup, err := bootClusterFollower(fmt.Sprintf("%s/follower%d", root, i), primary.url)
		if err != nil {
			return err
		}
		defer f.stop()
		followers = append(followers, f)
		res.CatchupMS = append(res.CatchupMS, catchup.Milliseconds())
		fmt.Printf("follower %d caught up %d records in %v\n", i+1, durable, catchup.Round(time.Millisecond))
	}

	// Drive the same read mix through the router at each topology size.
	// Reads carry a generous staleness budget so a synced follower always
	// qualifies; the router pins each relation to its ring owner.
	for nodes := 1; nodes <= 1+len(followers); nodes++ {
		var urls []string
		for _, f := range followers[:nodes-1] {
			urls = append(urls, f.url)
		}
		r := client.NewRouter(primary.url, urls, client.WithMaxStaleness(time.Minute))
		before, err := pcli.Metrics(ctx)
		if err != nil {
			return err
		}
		var (
			wg    sync.WaitGroup
			reads atomic.Int64
			stale atomic.Int64
			fails atomic.Int64
		)
		stop := time.Now().Add(window)
		for w := 0; w < readers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; time.Now().Before(stop); i++ {
					rel := rels[i%len(rels)]
					q, err := r.Query(ctx, rel, client.QueryRequest{Kind: client.QueryCurrent})
					if err != nil || len(q.Elements) != rows {
						fails.Add(1)
						continue
					}
					reads.Add(1)
					if r.Owner(rel) != primary.url {
						stale.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		if f := fails.Load(); f > 0 {
			return fmt.Errorf("%d routed read(s) failed at %d node(s)", f, nodes)
		}
		after, err := pcli.Metrics(ctx)
		if err != nil {
			return err
		}
		// The primary's query-endpoint delta, minus the two /metrics probes
		// themselves (they are booked under "metrics", not "query").
		primaryReads := after.Endpoints["query"].Requests - before.Endpoints["query"].Requests
		top := clusterTopology{
			Nodes:          nodes,
			Reads:          int(reads.Load()),
			ReadsPerS:      float64(reads.Load()) / window.Seconds(),
			FollowerServed: stale.Load(),
		}
		if reads.Load() > 0 {
			top.PrimaryShare = float64(primaryReads) / float64(reads.Load())
		}
		res.Topologies = append(res.Topologies, top)
		fmt.Printf("%d node(s): %6.0f reads/s  (%d reads, %d follower-owned, primary served %.0f%%)\n",
			nodes, top.ReadsPerS, top.Reads, top.FollowerServed, 100*top.PrimaryShare)
	}

	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_cluster.json", append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_cluster.json")
	return nil
}
