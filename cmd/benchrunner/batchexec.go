package main

// S7 — batch execution: the columnar window-aggregate engine measured
// against the row reference engine on a frozen vt-ordered relation. The
// workload is the archival shape the batch representation targets: a full
// history is loaded in valid-time order, the early 90% is closed by
// retention deletes, and one advisor pass migrates the relation to the
// vt-ordered log and seals it into packed runs. Aggregates then run twice
// per probe — USING ROW and USING COLUMNAR — and must answer identically;
// the columnar engine's run envelopes let it skip fully-closed and
// out-of-asof runs that the row engine must visit element by element.
// Results go to BENCH_batchexec.json; the gated probes must show the
// columnar engine at ≥5x the row engine's throughput.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"time"

	"repro/internal/catalog"
	"repro/internal/chronon"
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/tsql"
	"repro/internal/tx"
)

// batchRow is one probe's row in BENCH_batchexec.json.
type batchRow struct {
	Probe         string  `json:"probe"`
	Query         string  `json:"query"`
	RowP50US      float64 `json:"row_p50_us"`
	ColP50US      float64 `json:"columnar_p50_us"`
	RowTouched    int     `json:"row_touched"`
	ColTouched    int     `json:"columnar_touched"`
	RowRowsPerSec float64 `json:"row_rows_per_sec"`
	ColRowsPerSec float64 `json:"columnar_rows_per_sec"`
	Speedup       float64 `json:"speedup"`
	Windows       int     `json:"windows"`
	Divergence    int     `json:"divergence"` // iterations whose answers differed; must be 0
	Gated         bool    `json:"gated"`      // probe counts against the ≥5x requirement
}

// batchexecResult is the BENCH_batchexec.json document.
type batchexecResult struct {
	Experiment     string     `json:"experiment"`
	Elements       int        `json:"elements"`
	LiveElements   int        `json:"live_elements"`
	SealedElements int        `json:"sealed_elements"`
	Org            string     `json:"org"`
	Rows           []batchRow `json:"rows"`
}

// runS7 measures row vs columnar window aggregation on a frozen relation.
func runS7(n int) error {
	// The gate needs the scan asymmetry to dominate per-query constants:
	// a deep history with a thin live tail. Loading is quadratic in n
	// (every mutation republishes an O(n) snapshot view), so the range is
	// pinned regardless of -n.
	if n < 40000 {
		n = 40000
	}
	if n > 80000 {
		n = 80000
	}
	dir, err := os.MkdirTemp("", "tsdbd-batchexec-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cat := catalog.New(catalog.Config{
		Dir:      dir,
		NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
	})
	e, err := cat.Create(relation.Schema{
		Name: "frozen", ValidTime: element.EventStamp, Granularity: chronon.Second,
		Varying: []relation.Column{{Name: "v", Type: element.KindInt}},
	})
	if err != nil {
		return err
	}
	// Sequential history: vt tracks arrival, the shape the vt-ordered log
	// is inferred from.
	esList := make([]*element.Element, 0, n)
	for i := 1; i <= n; i++ {
		el, err := e.Insert(relation.Insertion{
			VT:      element.EventAt(chronon.Chronon(10 * i)),
			Varying: []element.Value{element.Int(int64(i % 1000))},
		})
		if err != nil {
			return err
		}
		esList = append(esList, el)
	}
	// Freeze: retention closes the early 99%, then one advisor pass
	// migrates to the inferred vt-ordered log and seals the history into
	// packed runs. Runs whose every element is closed prune under
	// current-state; run tt-envelopes prune under AS OF.
	live := n / 100
	for _, el := range esList[:n-live] {
		if err := e.Delete(el.ES); err != nil {
			return err
		}
	}
	if _, err := cat.AdvisePass(catalog.AdvisorConfig{}); err != nil {
		return err
	}
	phys := e.Physical()
	if phys.Org != storage.VTOrdered {
		return fmt.Errorf("frozen relation organized as %v, want %v", phys.Org, storage.VTOrdered)
	}
	if phys.Compaction.Sealed == 0 {
		return fmt.Errorf("advisor pass sealed nothing")
	}

	asofEarly := 10 * (n / 100) // 1% into the insert history
	clampLo, clampHi := 10*(n/2), 10*(n/2)+10*(n/8)
	probes := []struct {
		name  string
		base  string
		gated bool
	}{
		// Current state over the frozen history: the row engine visits all
		// n versions; the columnar engine skips every fully-closed run and
		// counts the live tail without dereferencing an element.
		{"current", "select count(*) from frozen group by window(2500)", true},
		// Historical AS OF near the start: run tt-envelopes prune the 99%
		// of the history that did not exist yet.
		{"asof-early", fmt.Sprintf("select count(*) from frozen as of %d group by window(2500)", asofEarly), true},
		// Rolling windows exercise the merge-heavy emitter on both sides.
		{"rolling", "select count(*) from frozen group by window(2500, rolling 3)", true},
		// Value aggregates gather from elements on both sides, so the gap
		// is pruning only; equality is the assertion, not the gate.
		{"sum-live", "select count(*), sum(v) from frozen group by window(2500)", false},
		// Valid-time clamp: both engines have a fast path (binary search vs
		// vt zone maps), so this probe checks equality, not the gate.
		{"vt-clamp", fmt.Sprintf("select sum(v) from frozen when valid during [%d, %d) group by window(500)", clampLo, clampHi), false},
	}

	const iters = 50
	ctx := context.Background()
	result := batchexecResult{
		Experiment:     "S7",
		Elements:       n,
		LiveElements:   live,
		SealedElements: phys.Compaction.Sealed,
		Org:            phys.Org.String(),
	}
	fmt.Printf("%-12s %10s %10s %12s %12s %9s %8s\n",
		"probe", "row p50", "col p50", "row touched", "col touched", "speedup", "windows")
	for _, p := range probes {
		qRow, err := tsql.Parse(p.base + " using row")
		if err != nil {
			return fmt.Errorf("%s: %w", p.name, err)
		}
		qCol, err := tsql.Parse(p.base + " using columnar")
		if err != nil {
			return fmt.Errorf("%s: %w", p.name, err)
		}
		var rowDurs, colDurs []time.Duration
		rowTouched, colTouched, windows, divergence := 0, 0, 0, 0
		for it := 0; it < iters+2; it++ {
			start := time.Now()
			rRes, _, rT, err := e.SelectCtx(ctx, qRow)
			rowDur := time.Since(start)
			if err != nil {
				return fmt.Errorf("%s row: %w", p.name, err)
			}
			start = time.Now()
			cRes, _, cT, err := e.SelectCtx(ctx, qCol)
			colDur := time.Since(start)
			if err != nil {
				return fmt.Errorf("%s columnar: %w", p.name, err)
			}
			if !reflect.DeepEqual(rRes, cRes) {
				divergence++
			}
			if it < 2 {
				continue // warmup
			}
			rowDurs = append(rowDurs, rowDur)
			colDurs = append(colDurs, colDur)
			rowTouched, colTouched, windows = rT, cT, len(rRes.Rows)
		}
		row := batchRow{
			Probe: p.name, Query: p.base,
			RowP50US: quantileUS(rowDurs, 0.50), ColP50US: quantileUS(colDurs, 0.50),
			RowTouched: rowTouched, ColTouched: colTouched,
			Windows: windows, Divergence: divergence, Gated: p.gated,
		}
		if row.RowP50US > 0 {
			row.RowRowsPerSec = float64(rowTouched) / (row.RowP50US / 1e6)
		}
		if row.ColP50US > 0 {
			// Throughput over the same logical input: the columnar engine
			// answers for all rowTouched candidate versions, it just never
			// materializes the pruned ones.
			row.ColRowsPerSec = float64(rowTouched) / (row.ColP50US / 1e6)
			row.Speedup = row.RowP50US / row.ColP50US
		}
		result.Rows = append(result.Rows, row)
		fmt.Printf("%-12s %9.1fµ %9.1fµ %12d %12d %8.1fx %8d\n",
			p.name, row.RowP50US, row.ColP50US, rowTouched, colTouched, row.Speedup, windows)

		if divergence != 0 {
			return fmt.Errorf("%s: %d iterations diverged between engines", p.name, divergence)
		}
		if p.gated && row.Speedup < 5 {
			return fmt.Errorf("%s: columnar speedup %.1fx on the frozen relation, want >= 5x", p.name, row.Speedup)
		}
	}

	doc, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_batchexec.json", append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_batchexec.json")
	return nil
}
