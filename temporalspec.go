// Package temporalspec is a bitemporal relation engine with declarable,
// enforced, and inferable temporal specializations, reproducing
//
//	C. S. Jensen and R. T. Snodgrass, "Temporal Specialization",
//	Proc. 8th International Conference on Data Engineering (ICDE), 1992.
//
// A temporal relation carries two system-interpreted times per stored
// element: valid time (when a fact is true in the modeled reality) and
// transaction time (when the fact was stored). The paper's contribution is
// a taxonomy of *specialized* temporal relations, whose extensions are
// restricted to limited regions of the two-dimensional (transaction time,
// valid time) space or whose elements interrelate in restricted ways — a
// retroactive relation stores facts only after they become true, a
// predictive one only before, a degenerate one exactly as they do, and so
// on through thirty-odd classes.
//
// This package provides:
//
//   - the time domain (Chronon, Duration, Granularity) with a proleptic
//     Gregorian calendar for calendric bounds such as "one month";
//   - half-open intervals and Allen's thirteen interval relations with
//     their composition algebra;
//   - the temporal relation engine: elements with surrogates, backlog,
//     historical states, and the current/historical/rollback query kinds;
//   - the taxonomy itself: specialization classes, parameterized specs,
//     the generalization/specialization lattice of Figures 2-5, the
//     region model and completeness enumeration of Figure 1;
//   - enforcement: declared specializations validated on every
//     transaction, per relation or per partition;
//   - inference: classification of an extension into the taxonomy with
//     tightest-parameter synthesis;
//   - exploitation: a storage advisor and query engine that turn declared
//     specializations into better physical designs, as the paper proposes;
//   - deterministic workload generators for the paper's motivating
//     applications.
//
// The facade in this package re-exports the full public API; see the
// examples directory for runnable programs.
package temporalspec

import (
	"repro/internal/chronon"
	"repro/internal/interval"
)

// Chronon is a point on the discrete time line (seconds since 1970-01-01
// on the proleptic Gregorian calendar).
type Chronon = chronon.Chronon

// Duration is a fixed or calendric span of time, used for specialization
// bounds (Δt) and regularity units.
type Duration = chronon.Duration

// Granularity is the tick length at which a relation quantizes its
// time-stamps.
type Granularity = chronon.Granularity

// Civil is a broken-down calendar date-time.
type Civil = chronon.Civil

// Distinguished chronons and named granularities.
const (
	MinChronon = chronon.MinChronon
	MaxChronon = chronon.MaxChronon
	Forever    = chronon.Forever
	Epoch      = chronon.Epoch

	Second = chronon.Second
	Minute = chronon.Minute
	Hour   = chronon.Hour
	Day    = chronon.Day
	Week   = chronon.Week
)

// Date builds the chronon for a calendar date at midnight.
func Date(y, m, d int) Chronon { return chronon.Date(y, m, d) }

// DateTime builds the chronon for a calendar date and time of day.
func DateTime(y, mo, d, h, mi, s int) Chronon { return chronon.DateTime(y, mo, d, h, mi, s) }

// ParseCivil parses "YYYY-MM-DD" or "YYYY-MM-DD HH:MM:SS".
func ParseCivil(s string) (Civil, error) { return chronon.ParseCivil(s) }

// Duration constructors.
func Seconds(n int64) Duration { return chronon.Seconds(n) }
func Minutes(n int64) Duration { return chronon.Minutes(n) }
func Hours(n int64) Duration   { return chronon.Hours(n) }
func Days(n int64) Duration    { return chronon.Days(n) }
func Weeks(n int64) Duration   { return chronon.Weeks(n) }
func Months(n int64) Duration  { return chronon.Months(n) }
func Years(n int64) Duration   { return chronon.Years(n) }

// ParseDuration parses a compact duration such as "30s", "1mo", or "1mo2d".
func ParseDuration(s string) (Duration, error) { return chronon.ParseDuration(s) }

// ParseGranularity parses a granularity name or literal tick length.
func ParseGranularity(s string) (Granularity, error) { return chronon.ParseGranularity(s) }

// GCD returns the greatest common divisor of two second counts — the unit
// composition of the paper's regularity claim (§3.2).
func GCD(a, b int64) int64 { return chronon.GCD(a, b) }

// Interval is a half-open span of time [Start, End).
type Interval = interval.Interval

// AllenRelation is one of Allen's thirteen relations between two intervals.
type AllenRelation = interval.Relation

// AllenRelationSet is a set of Allen relations (composition results).
type AllenRelationSet = interval.RelationSet

// The thirteen Allen relations.
const (
	Before       = interval.Before
	Meets        = interval.Meets
	Overlaps     = interval.Overlaps
	Starts       = interval.Starts
	During       = interval.During
	Finishes     = interval.Finishes
	Equal        = interval.Equal
	After        = interval.After
	MetBy        = interval.MetBy
	OverlappedBy = interval.OverlappedBy
	StartedBy    = interval.StartedBy
	Contains     = interval.Contains
	FinishedBy   = interval.FinishedBy
)

// MakeInterval constructs [start, end); it panics if end < start.
func MakeInterval(start, end Chronon) Interval { return interval.Make(start, end) }

// Relate classifies a pair of non-empty intervals into exactly one Allen
// relation.
func Relate(a, b Interval) AllenRelation { return interval.Relate(a, b) }

// Compose returns Allen's composition of two relations.
func Compose(r, s AllenRelation) AllenRelationSet { return interval.Compose(r, s) }

// AllenRelations lists the thirteen relations.
func AllenRelations() []AllenRelation { return interval.Relations() }
