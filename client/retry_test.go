package client

// Retry-layer behavior against scripted httptest servers: typed sheds
// retry with a stable idempotency key, Retry-After floors the backoff,
// read_only and other typed errors do not retry, transport errors retry
// only for keyed mutations and safe reads, and the deadline budget
// header reflects the caller's context.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

func fastRetry() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Budget:      5 * time.Second,
	}
}

func writeShed(w http.ResponseWriter, status int, code string) {
	if w.Header().Get(wire.HeaderRetryAfter) == "" {
		w.Header().Set(wire.HeaderRetryAfter, "0")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	var eb wire.ErrorBody
	eb.Error.Code = code
	eb.Error.Message = "scripted " + code
	json.NewEncoder(w).Encode(eb)
}

func TestRetryOnOverloadedKeepsIdempotencyKey(t *testing.T) {
	var mu sync.Mutex
	var keys []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		keys = append(keys, r.Header.Get(wire.HeaderIdempotencyKey))
		n := len(keys)
		mu.Unlock()
		if n < 3 {
			writeShed(w, http.StatusTooManyRequests, wire.CodeOverloaded)
			return
		}
		json.NewEncoder(w).Encode(wire.ElementResponse{Element: wire.Element{ES: 42}})
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(fastRetry()))
	el, err := c.Insert(context.Background(), "emp", InsertRequest{})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if el.ES != 42 {
		t.Fatalf("ES = %d, want 42", el.ES)
	}
	if len(keys) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(keys))
	}
	if keys[0] == "" || len(keys[0]) != 32 {
		t.Fatalf("idempotency key %q, want 32 hex chars", keys[0])
	}
	if keys[0] != keys[1] || keys[1] != keys[2] {
		t.Fatalf("key changed across retries: %v", keys)
	}
}

func TestNoRetryOnReadOnlyOrConflict(t *testing.T) {
	for _, c := range []struct {
		code   string
		status int
		check  func(error) bool
	}{
		{wire.CodeReadOnly, http.StatusServiceUnavailable, IsReadOnly},
		{wire.CodeConflict, http.StatusConflict, nil},
	} {
		attempts := 0
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			attempts++
			writeShed(w, c.status, c.code)
		}))
		cli := New(ts.URL, WithRetry(fastRetry()))
		_, err := cli.Insert(context.Background(), "emp", InsertRequest{})
		ts.Close()
		if err == nil {
			t.Fatalf("%s: Insert succeeded", c.code)
		}
		if attempts != 1 {
			t.Fatalf("%s: %d attempts, want 1 (not retryable)", c.code, attempts)
		}
		if c.check != nil && !c.check(err) {
			t.Fatalf("%s: predicate rejected %v", c.code, err)
		}
		var ae *APIError
		if !errors.As(err, &ae) || ae.Code != c.code {
			t.Fatalf("%s: error = %v", c.code, err)
		}
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		writeShed(w, http.StatusServiceUnavailable, wire.CodeUnavailable)
	}))
	defer ts.Close()
	cli := New(ts.URL, WithRetry(fastRetry()))
	_, err := cli.Current(context.Background(), "emp")
	if !IsUnavailable(err) {
		t.Fatalf("err = %v, want unavailable", err)
	}
	if attempts != 4 {
		t.Fatalf("%d attempts, want MaxAttempts=4", attempts)
	}
}

// failFirstTransport fails the first N round trips at the transport
// layer, then passes through.
type failFirstTransport struct {
	mu    sync.Mutex
	fails int
	calls int
	rt    http.RoundTripper
}

func (f *failFirstTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.calls++
	fail := f.calls <= f.fails
	f.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("simulated connection reset")
	}
	return f.rt.RoundTrip(r)
}

func TestTransportErrorRetriesKeyedMutationNotCreate(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(wire.ElementResponse{Element: wire.Element{ES: 7}})
	}))
	defer ts.Close()

	// Keyed insert: the transport error is retried and succeeds.
	ft := &failFirstTransport{fails: 1, rt: http.DefaultTransport}
	cli := New(ts.URL, WithRetry(fastRetry()), WithHTTPClient(&http.Client{Transport: ft}))
	if _, err := cli.Insert(context.Background(), "emp", InsertRequest{}); err != nil {
		t.Fatalf("keyed Insert after transport error: %v", err)
	}
	if ft.calls != 2 {
		t.Fatalf("insert made %d calls, want 2", ft.calls)
	}

	// Create carries no idempotency key: a transport error is NOT
	// retried (the relation may exist server-side).
	ft2 := &failFirstTransport{fails: 1, rt: http.DefaultTransport}
	cli2 := New(ts.URL, WithRetry(fastRetry()), WithHTTPClient(&http.Client{Transport: ft2}))
	if _, err := cli2.Create(context.Background(), Schema{Name: "emp"}); err == nil {
		t.Fatal("Create after transport error succeeded; must not be retried")
	}
	if ft2.calls != 1 {
		t.Fatalf("create made %d calls, want 1", ft2.calls)
	}
}

func TestDeadlineHeaderSent(t *testing.T) {
	var got string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get(wire.HeaderDeadline)
		json.NewEncoder(w).Encode(wire.QueryResponse{})
	}))
	defer ts.Close()
	cli := New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := cli.Current(ctx, "emp"); err != nil {
		t.Fatalf("Current: %v", err)
	}
	ms, err := strconv.ParseInt(got, 10, 64)
	if err != nil || ms <= 0 || ms > 2000 {
		t.Fatalf("deadline header = %q, want 0 < ms <= 2000", got)
	}
}

func TestReadyDecodesNotReadyBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(wire.ReadyResponse{
			Ready:   false,
			Status:  "degraded",
			Reasons: []string{"wal poisoned"},
		})
	}))
	defer ts.Close()
	rr, err := New(ts.URL).Ready(context.Background())
	if err != nil {
		t.Fatalf("Ready: %v", err)
	}
	if rr.Ready || rr.Status != "degraded" || len(rr.Reasons) != 1 {
		t.Fatalf("Ready = %+v, want not-ready degraded", rr)
	}
}

func TestRetryAfterFloorsBackoff(t *testing.T) {
	attempts := 0
	var gaps []time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		gaps = append(gaps, time.Now())
		if attempts == 1 {
			w.Header().Set(wire.HeaderRetryAfter, "1")
			writeShed(w, http.StatusTooManyRequests, wire.CodeOverloaded)
			return
		}
		json.NewEncoder(w).Encode(wire.QueryResponse{})
	}))
	defer ts.Close()
	cli := New(ts.URL, WithRetry(fastRetry()))
	if _, err := cli.Current(context.Background(), "emp"); err != nil {
		t.Fatalf("Current: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("%d attempts, want 2", attempts)
	}
	if gap := gaps[1].Sub(gaps[0]); gap < time.Second {
		t.Fatalf("retried after %v, want >= 1s (Retry-After floor)", gap)
	}
}
