package client

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

// relOwnedBy finds a relation name the ring assigns to the node with
// base URL url, so a test can aim traffic at a specific node.
func relOwnedBy(t *testing.T, r *Router, url string) string {
	t.Helper()
	for _, rel := range []string{"emp", "dept", "proj", "sal", "mgr", "loc", "grp", "job", "acl", "idx", "log", "tag"} {
		if r.Owner(rel) == url {
			return rel
		}
	}
	t.Fatalf("no candidate relation hashes to %s", url)
	return ""
}

// queryHandler answers every POST query with a fixed plan marker and,
// when staleness is non-empty, the follower's staleness header.
func queryHandler(marker, staleness string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if staleness != "" {
			w.Header().Set(wire.HeaderStaleness, staleness)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(wire.QueryResponse{Plan: marker})
	})
}

func TestRouterOwnerDeterministicAcrossInstances(t *testing.T) {
	nodes := []string{"http://primary:7070", "http://f1:7071", "http://f2:7072"}
	a := NewRouter(nodes[0], nodes[1:])
	b := NewRouter(nodes[0], nodes[1:])

	owned := map[string]int{}
	for _, rel := range []string{"emp", "dept", "proj", "sal", "mgr", "loc", "grp", "job", "acl", "idx", "log", "tag"} {
		oa, ob := a.Owner(rel), b.Owner(rel)
		if oa != ob {
			t.Fatalf("Owner(%s) differs across instances: %q vs %q", rel, oa, ob)
		}
		owned[oa]++
	}
	// With 64 vnodes per node, 12 relations should not all land on one
	// node — the ring actually spreads load.
	if len(owned) < 2 {
		t.Fatalf("all relations hash to one node: %v", owned)
	}
	// Candidate order is a permutation of all nodes starting at the owner.
	for _, rel := range []string{"emp", "dept", "proj"} {
		c := a.candidates(rel)
		if len(c) != 3 {
			t.Fatalf("candidates(%s) = %v, want all 3 nodes", rel, c)
		}
		if a.nodes[c[0]].BaseURL() != a.Owner(rel) {
			t.Fatalf("candidates(%s) starts at %s, want owner %s", rel, a.nodes[c[0]].BaseURL(), a.Owner(rel))
		}
		seen := map[int]bool{}
		for _, n := range c {
			if seen[n] {
				t.Fatalf("candidates(%s) repeats node %d: %v", rel, n, c)
			}
			seen[n] = true
		}
	}
}

// deadAddr reserves a loopback port and closes it, yielding a URL that
// refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return "http://" + addr
}

func TestRouterConnRefusedFailsOverToNextNode(t *testing.T) {
	primary := httptest.NewServer(queryHandler("primary", ""))
	defer primary.Close()
	dead := deadAddr(t)

	r := NewRouter(primary.URL, []string{dead})
	rel := relOwnedBy(t, r, dead)

	q, err := r.Query(context.Background(), rel, QueryRequest{Kind: QueryCurrent})
	if err != nil {
		t.Fatalf("Query with dead owner = %v, want failover to primary", err)
	}
	if q.Plan != "primary" {
		t.Fatalf("answer came from %q, want primary", q.Plan)
	}
}

func TestRouterStaleFollowerFallsBackToPrimary(t *testing.T) {
	primary := httptest.NewServer(queryHandler("primary", ""))
	defer primary.Close()
	// The follower answers, but admits to trailing by 5 seconds.
	stale := httptest.NewServer(queryHandler("follower", "5000"))
	defer stale.Close()

	r := NewRouter(primary.URL, []string{stale.URL}, WithMaxStaleness(time.Second))
	rel := relOwnedBy(t, r, stale.URL)

	q, err := r.Query(context.Background(), rel, QueryRequest{Kind: QueryCurrent})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if q.Plan != "primary" {
		t.Fatalf("stale follower answer served from %q, want primary fallback", q.Plan)
	}

	// A follower that has never synced sends no staleness header at all;
	// that too falls back, even with no explicit budget.
	unsynced := httptest.NewServer(queryHandler("follower", ""))
	defer unsynced.Close()
	r2 := NewRouter(primary.URL, []string{unsynced.URL})
	rel2 := relOwnedBy(t, r2, unsynced.URL)
	if q, err := r2.Query(context.Background(), rel2, QueryRequest{Kind: QueryCurrent}); err != nil || q.Plan != "primary" {
		t.Fatalf("unsynced follower: plan %q err %v, want primary fallback", q.Plan, err)
	}

	// Within budget, the follower's answer stands.
	fresh := httptest.NewServer(queryHandler("follower", "10"))
	defer fresh.Close()
	r3 := NewRouter(primary.URL, []string{fresh.URL}, WithMaxStaleness(time.Second))
	rel3 := relOwnedBy(t, r3, fresh.URL)
	if q, err := r3.Query(context.Background(), rel3, QueryRequest{Kind: QueryCurrent}); err != nil || q.Plan != "follower" {
		t.Fatalf("fresh follower: plan %q err %v, want follower answer", q.Plan, err)
	}
}

func TestRouterMutationsAlwaysHitPrimary(t *testing.T) {
	var primaryHits int
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		primaryHits++
		w.Header().Set("Content-Type", "application/json")
		if strings.HasSuffix(r.URL.Path, "/insert") {
			json.NewEncoder(w).Encode(wire.ElementResponse{})
			return
		}
		json.NewEncoder(w).Encode(wire.RelationInfo{})
	}))
	defer primary.Close()
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Errorf("mutation reached follower: %s %s", r.Method, r.URL.Path)
	}))
	defer follower.Close()

	r := NewRouter(primary.URL, []string{follower.URL})
	ctx := context.Background()
	// Aim at relations owned by the follower: mutations must still go to
	// the primary.
	rel := relOwnedBy(t, r, follower.URL)
	if _, err := r.Insert(ctx, rel, InsertRequest{VT: EventAt(1)}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if _, err := r.Create(ctx, Schema{Name: rel}); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if primaryHits != 2 {
		t.Fatalf("primary served %d mutations, want 2", primaryHits)
	}
}
