package client

// Router fans a multi-node tsdbd deployment out behind the single-node
// client API. Relation names are consistent-hashed over the node set, so
// each relation has a stable owner whose cache and published views stay
// hot for it; single-relation reads pin to that owner and walk the ring
// (then the primary) when a node refuses connections; multi-relation
// work fans out concurrently, one owner per relation; and mutations
// always go to the primary — followers are read-only and answer writes
// with the typed "read_only" refusal.
//
// Staleness is explicit, never silent: followers stamp every response
// with X-Tsdbd-Staleness-Ms (the bound on how far they may trail the
// primary), and a Router built WithMaxStaleness re-issues any read whose
// bound exceeds the budget — or carries no bound at all — against the
// primary, which is never stale.

import (
	"context"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/tsql"
	"repro/internal/wire"
)

// ringVnodes is how many virtual points each node contributes to the
// hash ring. 64 keeps the relation spread within a few percent of even
// for small clusters without making ring construction noticeable.
const ringVnodes = 64

// Router routes requests across one primary and any number of follower
// nodes. Safe for concurrent use.
type Router struct {
	primary *Client
	nodes   []*Client // index 0 is the primary, then followers
	ring    hashRing
	// maxStaleness bounds how stale a follower read may be; 0 accepts
	// any synced follower.
	maxStaleness time.Duration
	clientOpts   []Option
}

// RouterOption customizes a Router.
type RouterOption func(*Router)

// WithMaxStaleness makes every routed read enforce a freshness budget:
// a follower response whose staleness bound exceeds d (or that carries
// no bound — the follower has never synced) is discarded and the read
// re-issued against the primary.
func WithMaxStaleness(d time.Duration) RouterOption {
	return func(r *Router) { r.maxStaleness = d }
}

// WithClientOptions passes client options (transport, retry policy) to
// every per-node client the router builds.
func WithClientOptions(opts ...Option) RouterOption {
	return func(r *Router) { r.clientOpts = opts }
}

// NewRouter builds a router over the primary and follower base URLs.
func NewRouter(primary string, followers []string, opts ...RouterOption) *Router {
	r := &Router{}
	for _, o := range opts {
		o(r)
	}
	r.primary = New(primary, r.clientOpts...)
	r.nodes = append(r.nodes, r.primary)
	for _, f := range followers {
		r.nodes = append(r.nodes, New(f, r.clientOpts...))
	}
	r.ring = buildRing(r.nodes)
	return r
}

// Primary exposes the primary's client — the write side of the topology.
func (r *Router) Primary() *Client { return r.primary }

// Owner reports the base URL of the node that owns rel on the ring.
// Deterministic for a fixed node set, so every router instance over the
// same topology pins a relation to the same node.
func (r *Router) Owner(rel string) string {
	return r.nodes[r.ring.owner(rel)].BaseURL()
}

// hashRing is a consistent-hash ring of virtual node points.
type hashRing struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node int // index into Router.nodes
}

func buildRing(nodes []*Client) hashRing {
	ring := hashRing{points: make([]ringPoint, 0, len(nodes)*ringVnodes)}
	for i, n := range nodes {
		for v := 0; v < ringVnodes; v++ {
			ring.points = append(ring.points, ringPoint{
				hash: hash64(n.BaseURL() + "#" + strconv.Itoa(v)),
				node: i,
			})
		}
	}
	sort.Slice(ring.points, func(a, b int) bool { return ring.points[a].hash < ring.points[b].hash })
	return ring
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// splitmix64 finalizer: raw fnv of short, similar keys ("…#0", "…#1")
	// avalanches so poorly that all vnodes land in one narrow band of the
	// ring and a single node ends up owning every relation.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// owner maps a relation to its owning node index.
func (r hashRing) owner(rel string) int {
	return r.points[r.at(rel)].node
}

// at finds the first ring point at or after the relation's hash.
func (r hashRing) at(rel string) int {
	h := hash64(rel)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// candidates orders the node indexes to try for a read of rel: the
// owner first, then each distinct node walking the ring clockwise, with
// the primary guaranteed present (it ends up last unless the ring walk
// reaches it earlier). Every router over the same topology produces the
// same order, so the fallback load stays as pinned as the primary path.
func (r *Router) candidates(rel string) []int {
	out := make([]int, 0, len(r.nodes))
	seen := make(map[int]bool, len(r.nodes))
	for i, n := r.ring.at(rel), 0; n < len(r.ring.points) && len(out) < len(r.nodes); i, n = (i+1)%len(r.ring.points), n+1 {
		if p := r.ring.points[i]; !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	if !seen[0] {
		out = append(out, 0)
	}
	return out
}

// read runs fn against each candidate node for rel until one answers.
// A refused connection hops to the next node (nothing executed, so the
// hop is free); any other error is the answer. A follower response
// violating the staleness budget falls back to the primary.
func (r *Router) read(ctx context.Context, rel string, fn func(c *Client, hdr *http.Header) error) error {
	var lastErr error
	for _, n := range r.candidates(rel) {
		node := r.nodes[n]
		var hdr http.Header
		err := fn(node, &hdr)
		if err != nil {
			if IsConnRefused(err) {
				lastErr = err
				continue
			}
			return err
		}
		if node != r.primary && !r.freshEnough(hdr) {
			// Too stale (or unsynced): the primary is the only node whose
			// answer is current by construction.
			var phdr http.Header
			if perr := fn(r.primary, &phdr); !IsConnRefused(perr) {
				return perr
			}
			// Primary down: the bounded-staleness answer already decoded
			// into out is the best available; serve it.
		}
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("tsdbd: router has no nodes")
	}
	return lastErr
}

// freshEnough checks a follower response's staleness bound against the
// router's budget. No budget accepts any bounded response; no header
// means the node never synced, which no budget accepts.
func (r *Router) freshEnough(hdr http.Header) bool {
	s := hdr.Get(wire.HeaderStaleness)
	if s == "" {
		return false
	}
	if r.maxStaleness <= 0 {
		return true
	}
	ms, err := strconv.ParseInt(s, 10, 64)
	return err == nil && ms <= r.maxStaleness.Milliseconds()
}

// Query routes one of the four temporal query kinds to the relation's
// owner, falling back across the ring and to the primary as needed.
func (r *Router) Query(ctx context.Context, rel string, req QueryRequest) (QueryResponse, error) {
	var out QueryResponse
	err := r.read(ctx, rel, func(c *Client, hdr *http.Header) error {
		return c.call(ctx, http.MethodPost, "/v1/relations/"+rel+"/query", req, &out,
			callOpts{safe: true, hdr: hdr, failFast: true})
	})
	return out, err
}

// Current answers the conventional query via the relation's owner.
func (r *Router) Current(ctx context.Context, rel string) (QueryResponse, error) {
	return r.Query(ctx, rel, QueryRequest{Kind: QueryCurrent})
}

// Timeslice answers the historical query via the relation's owner.
func (r *Router) Timeslice(ctx context.Context, rel string, vt int64) (QueryResponse, error) {
	return r.Query(ctx, rel, QueryRequest{Kind: QueryTimeslice, VT: vt})
}

// Rollback answers the rollback query via the relation's owner.
func (r *Router) Rollback(ctx context.Context, rel string, tt int64) (QueryResponse, error) {
	return r.Query(ctx, rel, QueryRequest{Kind: QueryRollback, TT: tt})
}

// TimesliceAsOf answers the bitemporal query via the relation's owner.
func (r *Router) TimesliceAsOf(ctx context.Context, rel string, vt, tt int64) (QueryResponse, error) {
	return r.Query(ctx, rel, QueryRequest{Kind: QueryAsOf, VT: vt, TT: tt})
}

// Select parses the statement for its relation and routes it to that
// relation's owner.
func (r *Router) Select(ctx context.Context, query string) (SelectResponse, error) {
	q, err := tsql.Parse(query)
	if err != nil {
		return SelectResponse{}, fmt.Errorf("tsdbd: routing select: %w", err)
	}
	var out SelectResponse
	err = r.read(ctx, q.Rel, func(c *Client, hdr *http.Header) error {
		return c.call(ctx, http.MethodPost, "/v1/select", wire.SelectRequest{Query: query}, &out,
			callOpts{safe: true, hdr: hdr, failFast: true})
	})
	return out, err
}

// FanOut runs several tsql SELECTs concurrently, each routed to its
// relation's owner, and returns the responses in input order. The first
// error (if any) is returned alongside whatever completed; a caller that
// needs all-or-nothing checks err before touching the slice.
func (r *Router) FanOut(ctx context.Context, queries []string) ([]SelectResponse, error) {
	out := make([]SelectResponse, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q string) {
			defer wg.Done()
			out[i], errs[i] = r.Select(ctx, q)
		}(i, q)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Insert routes the mutation to the primary (followers are read-only).
func (r *Router) Insert(ctx context.Context, rel string, req InsertRequest) (Element, error) {
	return r.primary.Insert(ctx, rel, req)
}

// Delete routes the mutation to the primary.
func (r *Router) Delete(ctx context.Context, rel string, es uint64) error {
	return r.primary.Delete(ctx, rel, es)
}

// Modify routes the mutation to the primary.
func (r *Router) Modify(ctx context.Context, rel string, es uint64, vt Timestamp, varying []Value) (Element, error) {
	return r.primary.Modify(ctx, rel, es, vt, varying)
}

// Create routes the DDL to the primary; the new relation reaches the
// followers through the replication feed like any other mutation.
func (r *Router) Create(ctx context.Context, schema Schema) (RelationInfo, error) {
	return r.primary.Create(ctx, schema)
}

// Declare routes the DDL to the primary.
func (r *Router) Declare(ctx context.Context, rel string, descs ...Descriptor) (DeclareResponse, error) {
	return r.primary.Declare(ctx, rel, descs...)
}
