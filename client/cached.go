package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/wire"
)

// CachedResponse is a query answer together with its freshness metadata.
type CachedResponse struct {
	QueryResponse
	// ETag is the server's validator for this result — the relation's
	// mutation epoch. The client stores it and revalidates with
	// If-None-Match on the next identical query.
	ETag string
	// NotModified reports that the server answered 304 and the body was
	// served from the client's local cache without the query running.
	NotModified bool
}

// cachedEntry is one locally retained result keyed by its request path.
type cachedEntry struct {
	etag string
	resp QueryResponse
}

// queryCache is the client-side conditional-request cache. It retains the
// last response per distinct query path plus the server's ETag; entries
// are only ever used to answer a 304, so a stale entry costs nothing but
// memory and is overwritten by the next 200.
type queryCache struct {
	mu      sync.Mutex
	entries map[string]cachedEntry
}

func (qc *queryCache) get(path string) (cachedEntry, bool) {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	ce, ok := qc.entries[path]
	return ce, ok
}

func (qc *queryCache) put(path string, ce cachedEntry) {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	if qc.entries == nil {
		qc.entries = make(map[string]cachedEntry)
	}
	qc.entries[path] = ce
}

// CachedSelectResponse is a SELECT answer together with its freshness
// metadata, mirroring CachedResponse for the statement endpoint.
type CachedSelectResponse struct {
	SelectResponse
	// ETag is the server's validator — the relation's mutation epoch.
	ETag string
	// NotModified reports a 304 served from the client's local cache.
	NotModified bool
}

// cachedSelectEntry is one locally retained SELECT result.
type cachedSelectEntry struct {
	etag string
	resp SelectResponse
}

// selectCache is the conditional-request cache for SelectCached, keyed by
// the full request path (relation + statement).
type selectCache struct {
	mu      sync.Mutex
	entries map[string]cachedSelectEntry
}

func (sc *selectCache) get(path string) (cachedSelectEntry, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	ce, ok := sc.entries[path]
	return ce, ok
}

func (sc *selectCache) put(path string, ce cachedSelectEntry) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.entries == nil {
		sc.entries = make(map[string]cachedSelectEntry)
	}
	sc.entries[path] = ce
}

// SelectCached runs a tsql SELECT through the server's conditional GET
// endpoint. Like QueryCached, the first call fetches and remembers the
// result with its ETag; repeats revalidate with If-None-Match and an
// unmutated relation answers 304 from the local copy. Window aggregates
// are the intended tenant: their result sets are small (windows, not
// elements) but recomputation folds the whole relation, so a 304 saves
// the most where it matters. rel must name the relation the statement
// queries; the server rejects a mismatch.
func (c *Client) SelectCached(ctx context.Context, rel, query string) (CachedSelectResponse, error) {
	path := "/v1/relations/" + rel + "/select?query=" + url.QueryEscape(query)

	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return CachedSelectResponse{}, fmt.Errorf("tsdbd: building request: %w", err)
	}
	cached, haveCached := c.scache.get(path)
	if haveCached {
		httpReq.Header.Set(wire.HeaderIfNoneMatch, cached.etag)
	}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			httpReq.Header.Set(wire.HeaderDeadline, strconv.FormatInt(ms, 10))
		}
	}

	resp, err := c.http.Do(httpReq)
	if err != nil {
		return CachedSelectResponse{}, fmt.Errorf("tsdbd: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return CachedSelectResponse{}, fmt.Errorf("tsdbd: reading response: %w", err)
	}

	switch {
	case resp.StatusCode == http.StatusNotModified && haveCached:
		return CachedSelectResponse{
			SelectResponse: cached.resp,
			ETag:           resp.Header.Get(wire.HeaderETag),
			NotModified:    true,
		}, nil
	case resp.StatusCode >= 300:
		var eb wire.ErrorBody
		if json.Unmarshal(payload, &eb) == nil && eb.Error.Code != "" {
			return CachedSelectResponse{}, &APIError{Status: resp.StatusCode, Code: eb.Error.Code, Message: eb.Error.Message}
		}
		return CachedSelectResponse{}, &APIError{
			Status:  resp.StatusCode,
			Code:    CodeInternal,
			Message: strings.TrimSpace(string(payload)),
		}
	}

	var out SelectResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		return CachedSelectResponse{}, fmt.Errorf("tsdbd: decoding response: %w", err)
	}
	etag := resp.Header.Get(wire.HeaderETag)
	if etag != "" {
		c.scache.put(path, cachedSelectEntry{etag: etag, resp: out})
	}
	return CachedSelectResponse{SelectResponse: out, ETag: etag}, nil
}

// QueryCached runs one of the temporal query kinds through the server's
// conditional GET endpoint. The first call fetches and remembers the
// result with its ETag; subsequent identical calls revalidate with
// If-None-Match, so an unmutated relation answers 304 and the body comes
// from the client's cache — no query executes and no result set crosses
// the wire. A mutation changes the relation's epoch, the validator stops
// matching, and the next call fetches fresh.
func (c *Client) QueryCached(ctx context.Context, name string, req QueryRequest) (CachedResponse, error) {
	path := fmt.Sprintf("/v1/relations/%s/query?kind=%s&vt=%d&tt=%d",
		name, req.Kind, req.VT, req.TT)

	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return CachedResponse{}, fmt.Errorf("tsdbd: building request: %w", err)
	}
	cached, haveCached := c.qcache.get(path)
	if haveCached {
		httpReq.Header.Set(wire.HeaderIfNoneMatch, cached.etag)
	}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			httpReq.Header.Set(wire.HeaderDeadline, strconv.FormatInt(ms, 10))
		}
	}

	resp, err := c.http.Do(httpReq)
	if err != nil {
		return CachedResponse{}, fmt.Errorf("tsdbd: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return CachedResponse{}, fmt.Errorf("tsdbd: reading response: %w", err)
	}

	switch {
	case resp.StatusCode == http.StatusNotModified && haveCached:
		return CachedResponse{
			QueryResponse: cached.resp,
			ETag:          resp.Header.Get(wire.HeaderETag),
			NotModified:   true,
		}, nil
	case resp.StatusCode >= 300:
		var eb wire.ErrorBody
		if json.Unmarshal(payload, &eb) == nil && eb.Error.Code != "" {
			return CachedResponse{}, &APIError{Status: resp.StatusCode, Code: eb.Error.Code, Message: eb.Error.Message}
		}
		return CachedResponse{}, &APIError{
			Status:  resp.StatusCode,
			Code:    CodeInternal,
			Message: strings.TrimSpace(string(payload)),
		}
	}

	var out QueryResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		return CachedResponse{}, fmt.Errorf("tsdbd: decoding response: %w", err)
	}
	etag := resp.Header.Get(wire.HeaderETag)
	if etag != "" {
		c.qcache.put(path, cachedEntry{etag: etag, resp: out})
	}
	return CachedResponse{QueryResponse: out, ETag: etag}, nil
}
