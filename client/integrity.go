package client

// Client-side history verification: the server proves, the client
// checks. Integrity/IntegrityProof/IntegrityConsistency/Verify are the
// raw endpoint calls; HistoryVerifier composes them into the trust
// protocol — pin the primary's signing key on first contact (or preset
// it out of band), anchor a (size, root) pair, and from then on accept
// a new root only with a consistency proof that the anchored history
// is a prefix of it. A server that rewrote committed history cannot
// produce that proof, signed or not, so verification fails closed.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/integrity"
	"repro/internal/wire"
)

// Integrity wire re-exports.
type (
	IntegrityResponse   = wire.IntegrityResponse
	ProofResponse       = wire.ProofResponse
	ConsistencyResponse = wire.ConsistencyResponse
	VerifyResponse      = wire.VerifyResponse
	SignedRootInfo      = wire.SignedRootInfo
	IntegrityMetrics    = wire.IntegrityMetrics
)

// ErrHistoryRewritten is returned when a server's root cannot be
// reconciled with the verifier's anchor: the committed prefix the
// client has already verified is not a prefix of what the server now
// serves. This is the tamper signal, not a transient fault.
var ErrHistoryRewritten = errors.New("client: server history is inconsistent with verified anchor")

// ErrKeyChanged is returned when a signed root verifies under a
// different key than the one pinned — a server impersonation or an
// unannounced key rotation; either way, not silently acceptable.
var ErrKeyChanged = errors.New("client: signing key does not match pinned key")

// Integrity fetches a relation's integrity state: tree size, current
// root, signature (on primaries), and quarantine cause when degraded.
func (c *Client) Integrity(ctx context.Context, name string) (IntegrityResponse, error) {
	var out IntegrityResponse
	err := c.do(ctx, http.MethodGet, "/v1/relations/"+name+"/integrity", nil, &out)
	return out, err
}

// IntegrityProof fetches an inclusion proof for the index-th committed
// frame. Most callers want HistoryVerifier.VerifyCommit, which also
// checks the proof.
func (c *Client) IntegrityProof(ctx context.Context, name string, index uint64) (ProofResponse, error) {
	var out ProofResponse
	err := c.do(ctx, http.MethodGet,
		"/v1/relations/"+name+"/integrity/proof?index="+strconv.FormatUint(index, 10), nil, &out)
	return out, err
}

// IntegrityConsistency fetches a proof that the current tree extends
// its size-from prefix.
func (c *Client) IntegrityConsistency(ctx context.Context, name string, from uint64) (ConsistencyResponse, error) {
	var out ConsistencyResponse
	err := c.do(ctx, http.MethodGet,
		"/v1/relations/"+name+"/integrity/consistency?from="+strconv.FormatUint(from, 10), nil, &out)
	return out, err
}

// Verify asks the server to synchronously scrub and repair every
// artifact covering the relation.
func (c *Client) Verify(ctx context.Context, name string) (VerifyResponse, error) {
	var out VerifyResponse
	err := c.do(ctx, http.MethodPost, "/v1/relations/"+name+"/verify", nil, &out)
	return out, err
}

// HistoryVerifier tracks one relation's verified history across calls.
// It is safe for concurrent use; all methods advance a single shared
// anchor. The zero trust state is TOFU: the first signed root pins the
// signing key and the first accepted root anchors (size, root). Callers
// who obtained the primary's public key out of band should PinKey it
// before the first call to close the first-contact gap.
type HistoryVerifier struct {
	c   *Client
	rel string

	mu       sync.Mutex
	key      []byte
	anchored bool
	size     uint64
	root     integrity.Hash
}

// HistoryVerifier builds a verifier for one relation. The client may
// point at a primary (signed roots) or a follower (unsigned roots —
// trust then rests entirely on consistency with a previously anchored
// root, so anchor against the primary first for end-to-end guarantees).
func (c *Client) HistoryVerifier(rel string) *HistoryVerifier {
	return &HistoryVerifier{c: c, rel: rel}
}

// PinKey fixes the Ed25519 public key signed roots must verify under,
// replacing trust-on-first-use.
func (v *HistoryVerifier) PinKey(key []byte) {
	v.mu.Lock()
	v.key = append([]byte(nil), key...)
	v.mu.Unlock()
}

// Anchor reports the currently anchored (size, root), if any.
func (v *HistoryVerifier) Anchor() (size uint64, root []byte, ok bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.anchored {
		return 0, nil, false
	}
	r := v.root
	return v.size, r[:], true
}

// checkSig verifies a signed root's signature under the pinned key,
// pinning on first use. Unsigned roots (followers) pass — their trust
// comes from the consistency check against the anchor. Caller holds mu.
func (v *HistoryVerifier) checkSig(sr SignedRootInfo) error {
	if len(sr.Sig) == 0 && len(sr.Key) == 0 {
		return nil
	}
	if v.key == nil {
		v.key = append([]byte(nil), sr.Key...)
	} else if !bytes.Equal(v.key, sr.Key) {
		return fmt.Errorf("%w: relation %q", ErrKeyChanged, v.rel)
	}
	root, err := toHash(sr.Root)
	if err != nil {
		return err
	}
	if !integrity.VerifyRoot(v.key, integrity.SignedRoot{
		Rel: sr.Rel, Size: sr.Size, Root: root, Sig: sr.Sig, Key: sr.Key,
	}) {
		return fmt.Errorf("client: bad signature on root of %q at size %d", v.rel, sr.Size)
	}
	return nil
}

// reconcile accepts a served root only if it extends the anchor: equal
// size must mean equal root, larger size must come with a consistency
// proof from the anchor, and a smaller size is a served tree behind
// verified history (a stale follower or a rewrite — fail either way).
// On success the anchor advances to sr. Caller holds mu; the lock is
// held across the consistency fetch deliberately, so two goroutines
// cannot interleave anchor movements.
func (v *HistoryVerifier) reconcile(ctx context.Context, sr SignedRootInfo) error {
	if sr.Rel != v.rel {
		return fmt.Errorf("client: root is for %q, verifying %q", sr.Rel, v.rel)
	}
	if err := v.checkSig(sr); err != nil {
		return err
	}
	newRoot, err := toHash(sr.Root)
	if err != nil {
		return err
	}
	switch {
	case !v.anchored:
		// First contact: adopt. With a pinned key the signature already
		// vouches for this root; pure-TOFU callers trust first sight.
	case sr.Size == v.size:
		if newRoot != v.root {
			return fmt.Errorf("%w: %q root changed at size %d", ErrHistoryRewritten, v.rel, v.size)
		}
	case sr.Size > v.size:
		cr, err := v.c.IntegrityConsistency(ctx, v.rel, v.size)
		if err != nil {
			return err
		}
		p, err := integrity.DecodeProof(cr.Proof)
		if err != nil {
			return fmt.Errorf("client: consistency proof for %q: %w", v.rel, err)
		}
		if p.Kind != integrity.ProofConsistency || p.A != v.size || p.N != sr.Size {
			return fmt.Errorf("%w: %q served a proof for (%d,%d), want (%d,%d)",
				ErrHistoryRewritten, v.rel, p.A, p.N, v.size, sr.Size)
		}
		if !p.Verify(integrity.Hash{}, v.root, newRoot) {
			return fmt.Errorf("%w: %q size %d -> %d", ErrHistoryRewritten, v.rel, v.size, sr.Size)
		}
	default:
		return fmt.Errorf("%w: %q serves size %d behind verified size %d",
			ErrHistoryRewritten, v.rel, sr.Size, v.size)
	}
	v.anchored, v.size, v.root = true, sr.Size, newRoot
	return nil
}

// Advance fetches the relation's current root and verifies it extends
// the anchored history, moving the anchor forward. Call it after a
// batch of writes to extend the verified prefix, or periodically
// against a follower to audit that replication never rewrote history.
func (v *HistoryVerifier) Advance(ctx context.Context) (size uint64, err error) {
	ir, err := v.c.Integrity(ctx, v.rel)
	if err != nil {
		return 0, err
	}
	if !ir.Tracked {
		return 0, fmt.Errorf("client: integrity tracking is disabled for %q", v.rel)
	}
	if ir.Signed == nil {
		return 0, fmt.Errorf("client: %q served no root", v.rel)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.reconcile(ctx, *ir.Signed); err != nil {
		return 0, err
	}
	return v.size, nil
}

// VerifyCommit proves the index-th committed frame is part of the
// relation's verified history: the server's inclusion proof must land
// on a root that extends the anchor. On success the returned leaf hash
// identifies the exact frame bytes the server committed to, and the
// anchor has advanced to the proof's root.
func (v *HistoryVerifier) VerifyCommit(ctx context.Context, index uint64) (leaf []byte, err error) {
	pr, err := v.c.IntegrityProof(ctx, v.rel, index)
	if err != nil {
		return nil, err
	}
	p, err := integrity.DecodeProof(pr.Proof)
	if err != nil {
		return nil, fmt.Errorf("client: inclusion proof for %q: %w", v.rel, err)
	}
	leafHash, err := toHash(pr.Leaf)
	if err != nil {
		return nil, err
	}
	root, err := toHash(pr.Signed.Root)
	if err != nil {
		return nil, err
	}
	if p.Kind != integrity.ProofInclusion || p.A != index || p.N != pr.Signed.Size {
		return nil, fmt.Errorf("client: %q served a proof for (%d,%d), want leaf %d in size-%d tree",
			v.rel, p.A, p.N, index, pr.Signed.Size)
	}
	if !p.Verify(leafHash, integrity.Hash{}, root) {
		return nil, fmt.Errorf("client: inclusion proof for %q leaf %d does not verify", v.rel, index)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.reconcile(ctx, pr.Signed); err != nil {
		return nil, err
	}
	return leafHash[:], nil
}

// toHash converts a wire hash, insisting on the exact digest size.
func toHash(b []byte) (integrity.Hash, error) {
	var h integrity.Hash
	if len(b) != integrity.HashSize {
		return h, fmt.Errorf("client: bad hash length %d, want %d", len(b), integrity.HashSize)
	}
	copy(h[:], b)
	return h, nil
}
