package client_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/client"
	"repro/internal/catalog"
	"repro/internal/server"
	"repro/internal/tx"
)

func newTestClient(t *testing.T) *client.Client {
	t.Helper()
	cat := catalog.New(catalog.Config{
		NewClock: func() tx.Clock { return tx.NewLogicalClock(0, 10) },
	})
	srv := server.New(server.Config{Catalog: cat})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return client.New(hs.URL)
}

func TestClientRoundTrip(t *testing.T) {
	ctx := context.Background()
	cli := newTestClient(t)
	if _, err := cli.Create(ctx, client.Schema{
		Name: "m", ValidTime: "event", Granularity: 1,
	}); err != nil {
		t.Fatalf("Create: %v", err)
	}
	el, err := cli.Insert(ctx, "m", client.InsertRequest{VT: client.EventAt(5)})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if el.ES != 1 || el.TTStart != 10 {
		t.Fatalf("element = %+v", el)
	}
	q, err := cli.Timeslice(ctx, "m", 5)
	if err != nil || len(q.Elements) != 1 {
		t.Fatalf("Timeslice = %d elements, %v", len(q.Elements), err)
	}
	if err := cli.Delete(ctx, "m", el.ES); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if q, _ := cli.Current(ctx, "m"); len(q.Elements) != 0 {
		t.Fatalf("Current after delete = %d elements", len(q.Elements))
	}
	rels, err := cli.List(ctx)
	if err != nil || len(rels) != 1 || rels[0].Name != "m" {
		t.Fatalf("List = %+v, %v", rels, err)
	}
	h, err := cli.Health(ctx)
	if err != nil || h.Status != "ok" || h.Relations != 1 {
		t.Fatalf("Health = %+v, %v", h, err)
	}
}

func TestClientErrorTyping(t *testing.T) {
	ctx := context.Background()
	cli := newTestClient(t)

	_, err := cli.Current(ctx, "ghost")
	if !client.IsNotFound(err) {
		t.Fatalf("Current(ghost) err = %v, want not_found", err)
	}
	var ae *client.APIError
	if ok := asAPIError(err, &ae); !ok || ae.Status != http.StatusNotFound {
		t.Fatalf("err = %#v, want APIError with 404", err)
	}
	if client.IsRejected(err) {
		t.Fatal("not_found classified as rejected")
	}

	// A double delete is a conflict, not a rejection.
	if _, err := cli.Create(ctx, client.Schema{Name: "m", ValidTime: "event", Granularity: 1}); err != nil {
		t.Fatalf("Create: %v", err)
	}
	el, err := cli.Insert(ctx, "m", client.InsertRequest{VT: client.EventAt(5)})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := cli.Delete(ctx, "m", el.ES); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	err = cli.Delete(ctx, "m", el.ES)
	if !asAPIError(err, &ae) || ae.Code != client.CodeConflict {
		t.Fatalf("double delete err = %v, want conflict", err)
	}
}

// TestClientNonJSONError covers servers answering with plain text (e.g. a
// proxy in front of tsdbd): the client still returns a typed APIError.
func TestClientNonJSONError(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer hs.Close()
	cli := client.New(hs.URL)
	_, err := cli.Health(context.Background())
	var ae *client.APIError
	if !asAPIError(err, &ae) || ae.Status != http.StatusBadGateway {
		t.Fatalf("err = %v, want APIError with 502", err)
	}
}

func asAPIError(err error, into **client.APIError) bool {
	ae, ok := err.(*client.APIError)
	if ok {
		*into = ae
	}
	return ok
}
