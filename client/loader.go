package client

// Loader is the client-side firehose: callers Add single insertions and
// the loader coalesces them into InsertBatch calls — a bounded buffer
// with a background flusher, so a tight producer loop rides the batched
// WAL path (one frame, one epoch per batch) instead of one round-trip
// per element. Backpressure is the buffer: when batches are in flight
// and the buffer is full, Add blocks. Every element gets its own
// idempotency key (minted inside InsertBatch), held constant across the
// batch's retries, so transport-level replays never double-insert.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// LoaderConfig tunes a Loader. Zero values take the defaults.
type LoaderConfig struct {
	// BatchSize is the flush threshold. Default 256 — the same as the
	// server's streaming CSV loader.
	BatchSize int
	// FlushInterval bounds how long a partially-filled batch may wait
	// for more elements. Default 50ms.
	FlushInterval time.Duration
	// Buffer is the Add queue's capacity in elements; a full buffer
	// blocks Add (backpressure). Default 4 * BatchSize.
	Buffer int
	// OnError, when set, observes each failed batch flush (after the
	// client's own retries are exhausted). The loader keeps running
	// either way; the first error is also remembered for Close.
	OnError func(error)
}

// LoaderStats is a point-in-time snapshot of a loader's counters.
type LoaderStats struct {
	Added    int64 // elements accepted by Add
	Stored   int64 // elements the server stored
	Deduped  int64 // elements the server recognized as replays
	Rejected int64 // elements a constraint rejected
	Batches  int64 // InsertBatch calls issued
	Failed   int64 // batches whose flush errored (elements not accounted above)
}

// Loader batches inserts to one relation in the background.
type Loader struct {
	c   *Client
	rel string
	cfg LoaderConfig

	in   chan loaderMsg
	done chan struct{}

	added, stored, deduped, rejected, batches, failed atomic.Int64

	// sendMu serializes channel sends against Close (which closes the
	// channel); closed is guarded by it.
	sendMu sync.Mutex
	closed bool

	mu       sync.Mutex // guards firstErr
	firstErr error
}

type loaderMsg struct {
	req InsertRequest
	// barrier, when non-nil, requests a flush of everything buffered
	// before it and receives the flush's error (nil on success).
	barrier chan error
}

// NewLoader starts a loader for the relation. Callers must Close it to
// flush the tail and release the flusher goroutine.
func (c *Client) NewLoader(rel string, cfg LoaderConfig) *Loader {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 50 * time.Millisecond
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 4 * cfg.BatchSize
	}
	l := &Loader{
		c:    c,
		rel:  rel,
		cfg:  cfg,
		in:   make(chan loaderMsg, cfg.Buffer),
		done: make(chan struct{}),
	}
	go l.run()
	return l
}

// Add queues one insertion. It blocks when the buffer is full until the
// flusher catches up or ctx is done; after Close it returns an error.
// Sends hold sendMu so a concurrent Close never closes the channel out
// from under a blocked Add.
func (l *Loader) Add(ctx context.Context, req InsertRequest) error {
	if err := l.enqueue(ctx, loaderMsg{req: req}); err != nil {
		return fmt.Errorf("tsdbd: loader add: %w", err)
	}
	l.added.Add(1)
	return nil
}

// Flush forces everything Added so far onto the wire and waits for it,
// returning that flush's error.
func (l *Loader) Flush(ctx context.Context) error {
	barrier := make(chan error, 1)
	if err := l.enqueue(ctx, loaderMsg{barrier: barrier}); err != nil {
		return fmt.Errorf("tsdbd: loader flush: %w", err)
	}
	select {
	case err := <-barrier:
		return err
	case <-ctx.Done():
		return fmt.Errorf("tsdbd: loader flush: %w", ctx.Err())
	}
}

func (l *Loader) enqueue(ctx context.Context, msg loaderMsg) error {
	l.sendMu.Lock()
	defer l.sendMu.Unlock()
	if l.closed {
		return errors.New("loader is closed")
	}
	select {
	case l.in <- msg:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close flushes the tail, stops the flusher, and returns the first
// flush error observed over the loader's lifetime (nil if every batch
// landed).
func (l *Loader) Close() error {
	l.sendMu.Lock()
	if !l.closed {
		l.closed = true
		close(l.in)
	}
	l.sendMu.Unlock()
	<-l.done
	return l.Err()
}

// Err returns the first flush error observed so far.
func (l *Loader) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstErr
}

// Stats snapshots the loader's counters.
func (l *Loader) Stats() LoaderStats {
	return LoaderStats{
		Added:    l.added.Load(),
		Stored:   l.stored.Load(),
		Deduped:  l.deduped.Load(),
		Rejected: l.rejected.Load(),
		Batches:  l.batches.Load(),
		Failed:   l.failed.Load(),
	}
}

func (l *Loader) run() {
	defer close(l.done)
	buf := make([]InsertRequest, 0, l.cfg.BatchSize)
	timer := time.NewTimer(l.cfg.FlushInterval)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	armed := false
	flush := func() error {
		if armed {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			armed = false
		}
		if len(buf) == 0 {
			return nil
		}
		err := l.send(buf)
		buf = buf[:0]
		return err
	}
	for {
		var timeout <-chan time.Time
		if armed {
			timeout = timer.C
		}
		select {
		case msg, ok := <-l.in:
			if !ok {
				flush()
				return
			}
			if msg.barrier != nil {
				msg.barrier <- flush()
				continue
			}
			buf = append(buf, msg.req)
			if len(buf) >= l.cfg.BatchSize {
				flush()
			} else if !armed {
				timer.Reset(l.cfg.FlushInterval)
				armed = true
			}
		case <-timeout:
			armed = false
			flush()
		}
	}
}

// send issues one InsertBatch (under the client's retry policy) and
// folds the result into the counters.
func (l *Loader) send(batch []InsertRequest) error {
	l.batches.Add(1)
	res, err := l.c.InsertBatch(context.Background(), l.rel, batch, false)
	if err != nil {
		l.failed.Add(1)
		l.mu.Lock()
		if l.firstErr == nil {
			l.firstErr = err
		}
		l.mu.Unlock()
		if l.cfg.OnError != nil {
			l.cfg.OnError(err)
		}
		return err
	}
	l.stored.Add(int64(res.Stored))
	l.deduped.Add(int64(res.Deduped))
	l.rejected.Add(int64(res.Rejected))
	return nil
}
