// Package client is the typed Go client for tsdbd, the temporal-
// specialization database server. It mirrors the server's wire vocabulary
// (repro/internal/wire is re-exported through type aliases here so callers
// never import an internal package) and turns structured error responses
// back into *APIError values that carry the HTTP status and machine-
// readable code — a caller can distinguish a specialization-violating
// transaction (code "rejected") from a concurrency conflict or a bad
// request without string matching.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/wire"
)

// Wire vocabulary re-exports: the client speaks exactly the server's types.
type (
	Value            = wire.Value
	Timestamp        = wire.Timestamp
	Element          = wire.Element
	Column           = wire.Column
	Schema           = wire.Schema
	Duration         = wire.Duration
	Descriptor       = wire.Descriptor
	InsertRequest    = wire.InsertRequest
	QueryRequest     = wire.QueryRequest
	QueryResponse    = wire.QueryResponse
	SelectResponse   = wire.SelectResponse
	PlanNode         = wire.PlanNode
	PlanMetrics      = wire.PlanMetrics
	ExplainResponse  = wire.ExplainResponse
	RelationSummary  = wire.RelationSummary
	RelationInfo     = wire.RelationInfo
	ClassifyResponse = wire.ClassifyResponse
	HealthResponse   = wire.HealthResponse
	MetricsResponse  = wire.MetricsResponse
	WALMetrics       = wire.WALMetrics
	DeclareResponse  = wire.DeclareResponse
)

// Value constructors, re-exported for ergonomic insert payloads.
var (
	Null   = wire.Null
	String = wire.String
	Int    = wire.Int
	Float  = wire.Float
	Bool   = wire.Bool
	Time   = wire.Time

	EventAt = wire.EventAt
	SpanOf  = wire.SpanOf
)

// Query kinds.
const (
	QueryCurrent   = wire.QueryCurrent
	QueryTimeslice = wire.QueryTimeslice
	QueryRollback  = wire.QueryRollback
	QueryAsOf      = wire.QueryAsOf
)

// Error codes a server may return in an APIError.
const (
	CodeBadRequest = wire.CodeBadRequest
	CodeNotFound   = wire.CodeNotFound
	CodeConflict   = wire.CodeConflict
	CodeRejected   = wire.CodeRejected
	CodeTooLarge   = wire.CodeTooLarge
	CodeInternal   = wire.CodeInternal
)

// APIError is a structured error response from the server.
type APIError struct {
	Status  int    // HTTP status
	Code    string // machine-readable code, e.g. "rejected"
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("tsdbd: %s (%s, http %d)", e.Message, e.Code, e.Status)
}

// IsRejected reports whether err is a transaction rejection by a declared
// specialization — the expected failure mode under enforcement.
func IsRejected(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == CodeRejected
}

// IsNotFound reports whether err is a missing relation or element.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == CodeNotFound
}

// Client talks to one tsdbd server.
type Client struct {
	base string
	http *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (e.g. for
// httptest servers or custom transports).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New builds a client for the server at base, e.g. "http://127.0.0.1:7070".
func New(base string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Timeout: 30 * time.Second},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL reports the server base URL the client was built with.
func (c *Client) BaseURL() string { return c.base }

// do issues one request and decodes the JSON response into out (when out is
// non-nil). Non-2xx responses become *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("tsdbd: encoding request: %w", err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("tsdbd: building request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("tsdbd: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("tsdbd: reading response: %w", err)
	}
	if resp.StatusCode >= 300 {
		var eb wire.ErrorBody
		if json.Unmarshal(payload, &eb) == nil && eb.Error.Code != "" {
			return &APIError{Status: resp.StatusCode, Code: eb.Error.Code, Message: eb.Error.Message}
		}
		return &APIError{
			Status:  resp.StatusCode,
			Code:    CodeInternal,
			Message: strings.TrimSpace(string(payload)),
		}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(payload, out); err != nil {
		return fmt.Errorf("tsdbd: decoding response: %w", err)
	}
	return nil
}

// Health probes the server.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var out HealthResponse
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// Metrics fetches the server's request metrics.
func (c *Client) Metrics(ctx context.Context) (MetricsResponse, error) {
	var out MetricsResponse
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &out)
	return out, err
}

// List enumerates the relations in the catalog.
func (c *Client) List(ctx context.Context) ([]RelationSummary, error) {
	var out wire.ListResponse
	if err := c.do(ctx, http.MethodGet, "/v1/relations", nil, &out); err != nil {
		return nil, err
	}
	return out.Relations, nil
}

// Create makes a new relation from the schema.
func (c *Client) Create(ctx context.Context, schema Schema) (RelationInfo, error) {
	var out RelationInfo
	err := c.do(ctx, http.MethodPost, "/v1/relations", wire.CreateRequest{Schema: schema}, &out)
	return out, err
}

// Info fetches a relation's schema, declarations, and storage advice.
func (c *Client) Info(ctx context.Context, name string) (RelationInfo, error) {
	var out RelationInfo
	err := c.do(ctx, http.MethodGet, "/v1/relations/"+name, nil, &out)
	return out, err
}

// Declare attaches specialization constraints to a relation. The server
// validates the relation's existing history against each declaration and
// rejects (409, code "rejected") any the history already violates.
func (c *Client) Declare(ctx context.Context, name string, descs ...Descriptor) (DeclareResponse, error) {
	var out DeclareResponse
	err := c.do(ctx, http.MethodPost, "/v1/relations/"+name+"/declare",
		wire.DeclareRequest{Constraints: descs}, &out)
	return out, err
}

// Insert runs one insert transaction against the relation.
func (c *Client) Insert(ctx context.Context, name string, req InsertRequest) (Element, error) {
	var out wire.ElementResponse
	err := c.do(ctx, http.MethodPost, "/v1/relations/"+name+"/insert", req, &out)
	return out.Element, err
}

// Delete runs one logical-delete transaction against the element.
func (c *Client) Delete(ctx context.Context, name string, es uint64) error {
	return c.do(ctx, http.MethodPost, "/v1/relations/"+name+"/delete",
		wire.DeleteRequest{ES: es}, nil)
}

// Modify rewrites an element's valid time and varying attributes as a
// delete+insert pair under one transaction.
func (c *Client) Modify(ctx context.Context, name string, es uint64, vt Timestamp, varying []Value) (Element, error) {
	var out wire.ElementResponse
	err := c.do(ctx, http.MethodPost, "/v1/relations/"+name+"/modify",
		wire.ModifyRequest{ES: es, VT: vt, Varying: varying}, &out)
	return out.Element, err
}

// Query runs one of the four temporal query kinds.
func (c *Client) Query(ctx context.Context, name string, req QueryRequest) (QueryResponse, error) {
	var out QueryResponse
	err := c.do(ctx, http.MethodPost, "/v1/relations/"+name+"/query", req, &out)
	return out, err
}

// Current answers the conventional query: the relation's current state.
func (c *Client) Current(ctx context.Context, name string) (QueryResponse, error) {
	return c.Query(ctx, name, QueryRequest{Kind: QueryCurrent})
}

// Timeslice answers the historical query: current elements valid at vt.
func (c *Client) Timeslice(ctx context.Context, name string, vt int64) (QueryResponse, error) {
	return c.Query(ctx, name, QueryRequest{Kind: QueryTimeslice, VT: vt})
}

// Rollback answers the rollback query: elements present at transaction
// time tt.
func (c *Client) Rollback(ctx context.Context, name string, tt int64) (QueryResponse, error) {
	return c.Query(ctx, name, QueryRequest{Kind: QueryRollback, TT: tt})
}

// TimesliceAsOf answers the bitemporal query: elements valid at vt as the
// database stood at transaction time tt.
func (c *Client) TimesliceAsOf(ctx context.Context, name string, vt, tt int64) (QueryResponse, error) {
	return c.Query(ctx, name, QueryRequest{Kind: QueryAsOf, VT: vt, TT: tt})
}

// Select runs a raw tsql SELECT, e.g.
// "SELECT name, salary FROM emp WHEN AT 1500".
func (c *Client) Select(ctx context.Context, query string) (SelectResponse, error) {
	var out SelectResponse
	err := c.do(ctx, http.MethodPost, "/v1/select", wire.SelectRequest{Query: query}, &out)
	return out, err
}

// Explain plans one of the four temporal query kinds against the
// relation without executing it, returning the structured plan tree.
func (c *Client) Explain(ctx context.Context, name string, req QueryRequest) (ExplainResponse, error) {
	var out ExplainResponse
	path := fmt.Sprintf("/v1/relations/%s/explain?kind=%s&vt=%d&tt=%d",
		name, req.Kind, req.VT, req.TT)
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// ExplainSelect plans a tsql statement without executing it. The
// statement may, but need not, start with EXPLAIN.
func (c *Client) ExplainSelect(ctx context.Context, query string) (ExplainResponse, error) {
	if !strings.HasPrefix(strings.ToLower(strings.TrimSpace(query)), "explain") {
		query = "explain " + query
	}
	var out ExplainResponse
	err := c.do(ctx, http.MethodPost, "/v1/select", wire.SelectRequest{Query: query}, &out)
	return out, err
}

// Classify infers which specializations the relation's stored history
// satisfies.
func (c *Client) Classify(ctx context.Context, name string) (ClassifyResponse, error) {
	var out ClassifyResponse
	err := c.do(ctx, http.MethodGet, "/v1/relations/"+name+"/classify", nil, &out)
	return out, err
}

// Snapshot asks the server to flush dirty relations to its data directory;
// it returns how many were written.
func (c *Client) Snapshot(ctx context.Context) (int, error) {
	var out wire.SnapshotResponse
	if err := c.do(ctx, http.MethodPost, "/v1/snapshot", nil, &out); err != nil {
		return 0, err
	}
	return out.Saved, nil
}
