// Package client is the typed Go client for tsdbd, the temporal-
// specialization database server. It mirrors the server's wire vocabulary
// (repro/internal/wire is re-exported through type aliases here so callers
// never import an internal package) and turns structured error responses
// back into *APIError values that carry the HTTP status and machine-
// readable code — a caller can distinguish a specialization-violating
// transaction (code "rejected") from a concurrency conflict or a bad
// request without string matching.
package client

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/wire"
)

// Wire vocabulary re-exports: the client speaks exactly the server's types.
type (
	Value            = wire.Value
	Timestamp        = wire.Timestamp
	Element          = wire.Element
	Column           = wire.Column
	Schema           = wire.Schema
	Duration         = wire.Duration
	Descriptor       = wire.Descriptor
	InsertRequest    = wire.InsertRequest
	QueryRequest     = wire.QueryRequest
	QueryResponse    = wire.QueryResponse
	SelectResponse   = wire.SelectResponse
	PlanNode         = wire.PlanNode
	PlanMetrics      = wire.PlanMetrics
	ExplainResponse  = wire.ExplainResponse
	RelationSummary  = wire.RelationSummary
	RelationInfo     = wire.RelationInfo
	ClassifyResponse = wire.ClassifyResponse
	HealthResponse   = wire.HealthResponse
	ReadyResponse    = wire.ReadyResponse
	MetricsResponse  = wire.MetricsResponse
	WALMetrics       = wire.WALMetrics
	DeclareResponse  = wire.DeclareResponse
	PhysicalInfo     = wire.PhysicalInfo
	MigrationInfo    = wire.MigrationInfo
	TrackerInfo      = wire.TrackerInfo

	BatchInsertRequest  = wire.BatchInsertRequest
	BatchItem           = wire.BatchItem
	BatchInsertResponse = wire.BatchInsertResponse
	IngestResponse      = wire.IngestResponse
	IngestMetrics       = wire.IngestMetrics
)

// Value constructors, re-exported for ergonomic insert payloads.
var (
	Null   = wire.Null
	String = wire.String
	Int    = wire.Int
	Float  = wire.Float
	Bool   = wire.Bool
	Time   = wire.Time

	EventAt = wire.EventAt
	SpanOf  = wire.SpanOf
)

// Query kinds.
const (
	QueryCurrent   = wire.QueryCurrent
	QueryTimeslice = wire.QueryTimeslice
	QueryRollback  = wire.QueryRollback
	QueryAsOf      = wire.QueryAsOf
)

// Error codes a server may return in an APIError.
const (
	CodeBadRequest  = wire.CodeBadRequest
	CodeNotFound    = wire.CodeNotFound
	CodeConflict    = wire.CodeConflict
	CodeRejected    = wire.CodeRejected
	CodeTooLarge    = wire.CodeTooLarge
	CodeInternal    = wire.CodeInternal
	CodeOverloaded  = wire.CodeOverloaded
	CodeUnavailable = wire.CodeUnavailable
	CodeReadOnly    = wire.CodeReadOnly
)

// APIError is a structured error response from the server.
type APIError struct {
	Status  int    // HTTP status
	Code    string // machine-readable code, e.g. "rejected"
	Message string
	// RetryAfter is the server's Retry-After hint, when it sent one
	// (shed and unavailable responses do). Zero means no hint.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("tsdbd: %s (%s, http %d)", e.Message, e.Code, e.Status)
}

// IsRejected reports whether err is a transaction rejection by a declared
// specialization — the expected failure mode under enforcement.
func IsRejected(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == CodeRejected
}

// IsNotFound reports whether err is a missing relation or element.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == CodeNotFound
}

// IsOverloaded reports whether err is an admission-control shed: the
// server bounced the request on arrival because the class's wait queue
// was full. Retryable after backoff.
func IsOverloaded(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == CodeOverloaded
}

// IsUnavailable reports whether err is a clean pre-execution refusal —
// the server is draining, or the request waited out its admission
// budget. Retryable (possibly against another replica).
func IsUnavailable(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == CodeUnavailable
}

// IsReadOnly reports whether err is the typed read-only refusal: the
// process cannot accept writes, because its WAL has poisoned or because
// it is a follower replica. Not retryable against the same process —
// route the mutation to the primary instead.
func IsReadOnly(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == CodeReadOnly
}

// IsConnRefused reports whether err is a refused TCP connection — the
// node is down or not yet listening. For reads through a Router this is
// the signal to try the next node on the ring; nothing reached the
// server, so nothing executed.
func IsConnRefused(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED)
}

// RetryPolicy configures automatic retries for requests that fail with
// a retryable signal: typed "overloaded"/"unavailable" responses always;
// transport errors only for reads and for mutations carrying an
// idempotency key (which the client attaches automatically, so a replay
// of an already-applied mutation returns the original element instead
// of minting a second event in transaction time). When the client is a
// node of a Router, a connection-refused read does not retry here at
// all — it surfaces immediately so the router can retry it against the
// next node on the ring, where the attempt can actually succeed.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first.
	// <= 1 disables retries.
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff (doubled per attempt,
	// then full-jittered). Default 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps a single backoff sleep. Default 2s.
	MaxBackoff time.Duration
	// Budget bounds the total time spent across all attempts of one
	// call, backoffs included. Default 15s.
	Budget time.Duration
}

// DefaultRetryPolicy is a sensible starting point: 4 attempts, 50ms
// base backoff with full jitter capped at 2s, 15s total budget.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
		Budget:      15 * time.Second,
	}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.Budget <= 0 {
		p.Budget = 15 * time.Second
	}
	return p
}

// Client talks to one tsdbd server.
type Client struct {
	base  string
	http  *http.Client
	retry RetryPolicy
	// qcache holds the conditional-request state for QueryCached: the
	// last response and ETag per distinct query path.
	qcache queryCache
	// scache does the same for SelectCached, per distinct statement.
	scache selectCache
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (e.g. for
// httptest servers or custom transports).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithRetry enables automatic retries under the policy. Without this
// option every call makes exactly one attempt (idempotency keys are
// still attached to mutations, so a caller-level retry is safe too).
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p.withDefaults() }
}

// New builds a client for the server at base, e.g. "http://127.0.0.1:7070".
func New(base string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Timeout: 30 * time.Second},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL reports the server base URL the client was built with.
func (c *Client) BaseURL() string { return c.base }

// callOpts classifies one call for the retry layer.
type callOpts struct {
	// idemKey, when non-empty, is sent as the Idempotency-Key header;
	// the server dedups replays, making transport-error retries safe.
	idemKey string
	// safe marks calls with no server-side effect (reads, probes),
	// retryable on transport errors even without a key.
	safe bool
	// hdr, when non-nil, receives the response headers of the decisive
	// attempt — the router reads the follower staleness bound from it.
	hdr *http.Header
	// failFast makes a connection-refused transport error return
	// immediately instead of burning retry attempts against the same
	// dead node. The router sets it on per-node reads: the productive
	// retry for a refused connection is the next node on the ring, not
	// the same socket after backoff.
	failFast bool
}

// newIdemKey mints a 128-bit random idempotency key. One key is minted
// per logical mutation and reused verbatim across its retries.
func newIdemKey() string {
	var b [16]byte
	crand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// do issues a single-effect request (reads and probes) with the default
// safe retry classification.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.call(ctx, method, path, in, out, callOpts{safe: true})
}

// doIdem issues a mutation carrying a fresh idempotency key, held
// constant across retries.
func (c *Client) doIdem(ctx context.Context, method, path string, in, out any) error {
	return c.call(ctx, method, path, in, out, callOpts{idemKey: newIdemKey()})
}

// call runs the request under the client's retry policy: typed
// overloaded/unavailable responses retry after jittered backoff
// (honoring the server's Retry-After hint); transport errors retry only
// when the call is safe or idempotency-keyed; everything else returns
// immediately.
func (c *Client) call(ctx context.Context, method, path string, in, out any, o callOpts) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("tsdbd: encoding request: %w", err)
		}
	}
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var budget time.Time // zero when retries are off
	if attempts > 1 {
		budget = time.Now().Add(c.retry.Budget)
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			d := c.backoff(attempt, lastErr)
			if !budget.IsZero() && time.Now().Add(d).After(budget) {
				break // would blow the budget; return the last error
			}
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return fmt.Errorf("tsdbd: %s %s: %w", method, path, ctx.Err())
			}
		}
		lastErr = c.once(ctx, method, path, body, out, o)
		if lastErr == nil || !retryable(lastErr, o) || ctx.Err() != nil {
			return lastErr
		}
		if o.failFast && IsConnRefused(lastErr) {
			return lastErr
		}
	}
	return lastErr
}

// backoff computes the sleep before retry #attempt: exponential from
// BaseBackoff, capped at MaxBackoff, full jitter, floored at the
// server's Retry-After hint when the last error carried one.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	d := c.retry.BaseBackoff << (attempt - 1)
	if d <= 0 || d > c.retry.MaxBackoff {
		d = c.retry.MaxBackoff
	}
	d = time.Duration(mrand.Int64N(int64(d) + 1))
	var ae *APIError
	if errors.As(lastErr, &ae) && ae.RetryAfter > d {
		d = ae.RetryAfter
	}
	return d
}

// retryable decides whether one failed attempt may be replayed.
func retryable(err error, o callOpts) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		// A typed shed/unavailable is a pre-execution refusal: always
		// retryable. read_only, conflicts, rejections etc. are not.
		return ae.Code == CodeOverloaded || ae.Code == CodeUnavailable
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// Transport error: the request may or may not have executed. Reads
	// are harmless to replay; mutations only when idempotency-keyed.
	return o.safe || o.idemKey != ""
}

// once issues exactly one HTTP attempt and decodes the JSON response
// into out (when out is non-nil). Non-2xx responses become *APIError.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any, o callOpts) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("tsdbd: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if o.idemKey != "" {
		req.Header.Set(wire.HeaderIdempotencyKey, o.idemKey)
	}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Header.Set(wire.HeaderDeadline, strconv.FormatInt(ms, 10))
		}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("tsdbd: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if o.hdr != nil {
		*o.hdr = resp.Header.Clone()
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("tsdbd: reading response: %w", err)
	}
	if resp.StatusCode >= 300 {
		var ra time.Duration
		if s := resp.Header.Get(wire.HeaderRetryAfter); s != "" {
			if secs, perr := strconv.Atoi(s); perr == nil && secs > 0 {
				ra = time.Duration(secs) * time.Second
			}
		}
		var eb wire.ErrorBody
		if json.Unmarshal(payload, &eb) == nil && eb.Error.Code != "" {
			return &APIError{Status: resp.StatusCode, Code: eb.Error.Code, Message: eb.Error.Message, RetryAfter: ra}
		}
		return &APIError{
			Status:     resp.StatusCode,
			Code:       CodeInternal,
			Message:    strings.TrimSpace(string(payload)),
			RetryAfter: ra,
		}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(payload, out); err != nil {
		return fmt.Errorf("tsdbd: decoding response: %w", err)
	}
	return nil
}

// Health probes the server.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var out HealthResponse
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// Ready probes /readyz. Unlike the other calls a not-ready server is
// not an error: the server answers 503 with the same ReadyResponse
// body, and Ready returns it with a nil error so callers can inspect
// Status and Reasons. The error is non-nil only for transport or
// decoding failures.
func (c *Client) Ready(ctx context.Context) (ReadyResponse, error) {
	var out ReadyResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return out, fmt.Errorf("tsdbd: building request: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return out, fmt.Errorf("tsdbd: GET /readyz: %w", err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return out, fmt.Errorf("tsdbd: reading response: %w", err)
	}
	if err := json.Unmarshal(payload, &out); err != nil {
		return out, fmt.Errorf("tsdbd: decoding /readyz: %w", err)
	}
	return out, nil
}

// Metrics fetches the server's request metrics.
func (c *Client) Metrics(ctx context.Context) (MetricsResponse, error) {
	var out MetricsResponse
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &out)
	return out, err
}

// List enumerates the relations in the catalog.
func (c *Client) List(ctx context.Context) ([]RelationSummary, error) {
	var out wire.ListResponse
	if err := c.do(ctx, http.MethodGet, "/v1/relations", nil, &out); err != nil {
		return nil, err
	}
	return out.Relations, nil
}

// Create makes a new relation from the schema. Not retried on transport
// errors (creation is not idempotency-keyed); typed shed responses
// still retry under the client's policy.
func (c *Client) Create(ctx context.Context, schema Schema) (RelationInfo, error) {
	var out RelationInfo
	err := c.call(ctx, http.MethodPost, "/v1/relations", wire.CreateRequest{Schema: schema}, &out, callOpts{})
	return out, err
}

// Info fetches a relation's schema, declarations, and storage advice.
func (c *Client) Info(ctx context.Context, name string) (RelationInfo, error) {
	var out RelationInfo
	err := c.do(ctx, http.MethodGet, "/v1/relations/"+name, nil, &out)
	return out, err
}

// Physical fetches a relation's live physical design: its organization
// with provenance, the declared / inferred / adopted class sets, the
// migration history, and the compaction gauges.
func (c *Client) Physical(ctx context.Context, name string) (PhysicalInfo, error) {
	info, err := c.Info(ctx, name)
	if err != nil {
		return PhysicalInfo{}, err
	}
	if info.Physical == nil {
		return PhysicalInfo{}, fmt.Errorf("tsdbd: server reported no physical design for %q", name)
	}
	return *info.Physical, nil
}

// Declare attaches specialization constraints to a relation. The server
// validates the relation's existing history against each declaration and
// rejects (409, code "rejected") any the history already violates.
func (c *Client) Declare(ctx context.Context, name string, descs ...Descriptor) (DeclareResponse, error) {
	var out DeclareResponse
	err := c.call(ctx, http.MethodPost, "/v1/relations/"+name+"/declare",
		wire.DeclareRequest{Constraints: descs}, &out, callOpts{})
	return out, err
}

// Insert runs one insert transaction against the relation. The client
// attaches a fresh idempotency key, held constant across retries, so a
// replay of an already-applied insert returns the original element.
func (c *Client) Insert(ctx context.Context, name string, req InsertRequest) (Element, error) {
	var out wire.ElementResponse
	err := c.doIdem(ctx, http.MethodPost, "/v1/relations/"+name+"/insert", req, &out)
	return out.Element, err
}

// InsertBatch runs one batched insert transaction: the whole batch is
// journaled as a single WAL frame and published under a single epoch,
// with a per-element status report. The client mints one idempotency key
// per element, carried in the request body and held constant across
// retries, so a replayed batch dedups element-by-element instead of
// double-inserting a prefix. With atomic set, any constraint rejection
// fails the whole batch (code "rejected") and stores nothing.
func (c *Client) InsertBatch(ctx context.Context, name string, reqs []InsertRequest, atomic bool) (BatchInsertResponse, error) {
	keys := make([]string, len(reqs))
	for i := range keys {
		keys[i] = newIdemKey()
	}
	body := wire.BatchInsertRequest{Elements: reqs, Keys: keys, Atomic: atomic}
	var out BatchInsertResponse
	// The per-element keys in the body make replays idempotent; the
	// header key just marks the call transport-retryable.
	err := c.call(ctx, http.MethodPost, "/v1/relations/"+name+"/elements:batch", body, &out,
		callOpts{idemKey: newIdemKey()})
	return out, err
}

// IngestCSV streams header-driven CSV from r into the relation via the
// server-side bulk loader; the server batches rows as they arrive (one
// WAL frame per batch) without materializing the upload. The stream is
// consumed, so transport failures are not retried — the response reports
// exactly what landed. Malformed rows are reported line-by-line in the
// response, not as an error.
func (c *Client) IngestCSV(ctx context.Context, name string, r io.Reader) (IngestResponse, error) {
	var out IngestResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/ingest/csv?relation="+url.QueryEscape(name), r)
	if err != nil {
		return out, fmt.Errorf("tsdbd: building request: %w", err)
	}
	req.Header.Set("Content-Type", "text/csv")
	resp, err := c.http.Do(req)
	if err != nil {
		return out, fmt.Errorf("tsdbd: POST /v1/ingest/csv: %w", err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return out, fmt.Errorf("tsdbd: reading response: %w", err)
	}
	if resp.StatusCode >= 300 {
		var eb wire.ErrorBody
		if json.Unmarshal(payload, &eb) == nil && eb.Error.Code != "" {
			return out, &APIError{Status: resp.StatusCode, Code: eb.Error.Code, Message: eb.Error.Message}
		}
		return out, &APIError{Status: resp.StatusCode, Code: CodeInternal, Message: strings.TrimSpace(string(payload))}
	}
	if err := json.Unmarshal(payload, &out); err != nil {
		return out, fmt.Errorf("tsdbd: decoding response: %w", err)
	}
	return out, nil
}

// Delete runs one logical-delete transaction against the element.
// Idempotency-keyed like Insert.
func (c *Client) Delete(ctx context.Context, name string, es uint64) error {
	return c.doIdem(ctx, http.MethodPost, "/v1/relations/"+name+"/delete",
		wire.DeleteRequest{ES: es}, nil)
}

// Modify rewrites an element's valid time and varying attributes as a
// delete+insert pair under one transaction. Idempotency-keyed like
// Insert.
func (c *Client) Modify(ctx context.Context, name string, es uint64, vt Timestamp, varying []Value) (Element, error) {
	var out wire.ElementResponse
	err := c.doIdem(ctx, http.MethodPost, "/v1/relations/"+name+"/modify",
		wire.ModifyRequest{ES: es, VT: vt, Varying: varying}, &out)
	return out.Element, err
}

// Query runs one of the four temporal query kinds.
func (c *Client) Query(ctx context.Context, name string, req QueryRequest) (QueryResponse, error) {
	var out QueryResponse
	err := c.do(ctx, http.MethodPost, "/v1/relations/"+name+"/query", req, &out)
	return out, err
}

// Current answers the conventional query: the relation's current state.
func (c *Client) Current(ctx context.Context, name string) (QueryResponse, error) {
	return c.Query(ctx, name, QueryRequest{Kind: QueryCurrent})
}

// Timeslice answers the historical query: current elements valid at vt.
func (c *Client) Timeslice(ctx context.Context, name string, vt int64) (QueryResponse, error) {
	return c.Query(ctx, name, QueryRequest{Kind: QueryTimeslice, VT: vt})
}

// Rollback answers the rollback query: elements present at transaction
// time tt.
func (c *Client) Rollback(ctx context.Context, name string, tt int64) (QueryResponse, error) {
	return c.Query(ctx, name, QueryRequest{Kind: QueryRollback, TT: tt})
}

// TimesliceAsOf answers the bitemporal query: elements valid at vt as the
// database stood at transaction time tt.
func (c *Client) TimesliceAsOf(ctx context.Context, name string, vt, tt int64) (QueryResponse, error) {
	return c.Query(ctx, name, QueryRequest{Kind: QueryAsOf, VT: vt, TT: tt})
}

// Select runs a raw tsql SELECT, e.g.
// "SELECT name, salary FROM emp WHEN AT 1500".
func (c *Client) Select(ctx context.Context, query string) (SelectResponse, error) {
	var out SelectResponse
	err := c.do(ctx, http.MethodPost, "/v1/select", wire.SelectRequest{Query: query}, &out)
	return out, err
}

// Explain plans one of the four temporal query kinds against the
// relation without executing it, returning the structured plan tree.
func (c *Client) Explain(ctx context.Context, name string, req QueryRequest) (ExplainResponse, error) {
	var out ExplainResponse
	path := fmt.Sprintf("/v1/relations/%s/explain?kind=%s&vt=%d&tt=%d",
		name, req.Kind, req.VT, req.TT)
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// ExplainSelect plans a tsql statement without executing it. The
// statement may, but need not, start with EXPLAIN.
func (c *Client) ExplainSelect(ctx context.Context, query string) (ExplainResponse, error) {
	if !strings.HasPrefix(strings.ToLower(strings.TrimSpace(query)), "explain") {
		query = "explain " + query
	}
	var out ExplainResponse
	err := c.do(ctx, http.MethodPost, "/v1/select", wire.SelectRequest{Query: query}, &out)
	return out, err
}

// Classify infers which specializations the relation's stored history
// satisfies.
func (c *Client) Classify(ctx context.Context, name string) (ClassifyResponse, error) {
	var out ClassifyResponse
	err := c.do(ctx, http.MethodGet, "/v1/relations/"+name+"/classify", nil, &out)
	return out, err
}

// Snapshot asks the server to flush dirty relations to its data directory;
// it returns how many were written.
func (c *Client) Snapshot(ctx context.Context) (int, error) {
	var out wire.SnapshotResponse
	if err := c.do(ctx, http.MethodPost, "/v1/snapshot", nil, &out); err != nil {
		return 0, err
	}
	return out.Saved, nil
}
