package temporalspec

import "repro/internal/query"

// TimelineStep is one piece of the valid-time profile: Count facts are
// valid throughout Span.
type TimelineStep = query.TimelineStep

// Timeline computes the valid-time profile of an extension — the classic
// temporal COUNT aggregation as a step function.
func Timeline(es []*Element) []TimelineStep { return query.Timeline(es) }

// CoverageSet returns the set of chronons during which at least one
// element is valid, as a canonical interval set.
func CoverageSet(es []*Element) IntervalSet { return query.CoverageSet(es) }

// MaxConcurrent reports the largest number of simultaneously valid
// elements and one span where it occurs.
func MaxConcurrent(es []*Element) (int, Interval) { return query.MaxConcurrent(es) }

// JoinedPair is one result of a valid-time join.
type JoinedPair = query.JoinedPair

// TemporalJoin computes the valid-time join of two extensions: pairs whose
// valid times intersect and satisfy the match predicate (nil matches every
// overlapping pair), with the intersection span.
func TemporalJoin(left, right []*Element, match func(l, r *Element) bool) []JoinedPair {
	return query.TemporalJoin(left, right, match)
}

// CoalescedFact is one group of value-equivalent elements with the
// canonical set of chronons during which the fact holds.
type CoalescedFact = query.CoalescedFact

// Coalesce performs temporal coalescing: value-equivalent elements merge
// and their valid times union into maximal intervals. A nil key groups by
// attribute values.
func Coalesce(es []*Element, key func(*Element) string) []CoalescedFact {
	return query.Coalesce(es, key)
}
