package temporalspec

import (
	"repro/internal/core"
)

// Class identifies a specialization in the taxonomy of §3.
type Class = core.Class

// The isolated-event classes (§3.1, Figures 1 and 2).
const (
	General                             = core.General
	Retroactive                         = core.Retroactive
	DelayedRetroactive                  = core.DelayedRetroactive
	Predictive                          = core.Predictive
	EarlyPredictive                     = core.EarlyPredictive
	RetroactivelyBounded                = core.RetroactivelyBounded
	StronglyRetroactivelyBounded        = core.StronglyRetroactivelyBounded
	DelayedStronglyRetroactivelyBounded = core.DelayedStronglyRetroactivelyBounded
	PredictivelyBounded                 = core.PredictivelyBounded
	StronglyPredictivelyBounded         = core.StronglyPredictivelyBounded
	EarlyStronglyPredictivelyBounded    = core.EarlyStronglyPredictivelyBounded
	StronglyBounded                     = core.StronglyBounded
	Degenerate                          = core.Degenerate
)

// The inter-event classes (§3.2, Figures 3 and 4).
const (
	GloballyNonDecreasingEvents = core.GloballyNonDecreasingEvents
	GloballyNonIncreasingEvents = core.GloballyNonIncreasingEvents
	GloballySequentialEvents    = core.GloballySequentialEvents

	TTEventRegular             = core.TTEventRegular
	VTEventRegular             = core.VTEventRegular
	TemporalEventRegular       = core.TemporalEventRegular
	StrictTTEventRegular       = core.StrictTTEventRegular
	StrictVTEventRegular       = core.StrictVTEventRegular
	StrictTemporalEventRegular = core.StrictTemporalEventRegular
)

// The isolated-interval regularity classes (§3.3).
const (
	TTIntervalRegular             = core.TTIntervalRegular
	VTIntervalRegular             = core.VTIntervalRegular
	TemporalIntervalRegular       = core.TemporalIntervalRegular
	StrictTTIntervalRegular       = core.StrictTTIntervalRegular
	StrictVTIntervalRegular       = core.StrictVTIntervalRegular
	StrictTemporalIntervalRegular = core.StrictTemporalIntervalRegular
)

// The inter-interval classes (§3.4, Figure 5).
const (
	GloballyNonDecreasingIntervals = core.GloballyNonDecreasingIntervals
	GloballyNonIncreasingIntervals = core.GloballyNonIncreasingIntervals
	GloballySequentialIntervals    = core.GloballySequentialIntervals
	GloballyContiguous             = core.GloballyContiguous
	STBefore                       = core.STBefore
	STMeets                        = core.STMeets
	STOverlaps                     = core.STOverlaps
	STStarts                       = core.STStarts
	STDuring                       = core.STDuring
	STFinishes                     = core.STFinishes
	STEqual                        = core.STEqual
	STAfter                        = core.STAfter
	STMetBy                        = core.STMetBy
	STOverlappedBy                 = core.STOverlappedBy
	STStartedBy                    = core.STStartedBy
	STContains                     = core.STContains
	STFinishedBy                   = core.STFinishedBy
)

// Category groups classes by the taxonomy section defining them.
type Category = core.Category

// Categories.
const (
	CategoryIsolatedEvent     = core.CategoryIsolatedEvent
	CategoryInterEventOrder   = core.CategoryInterEventOrder
	CategoryInterEventRegular = core.CategoryInterEventRegular
	CategoryIntervalRegular   = core.CategoryIntervalRegular
	CategoryInterInterval     = core.CategoryInterInterval
)

// Classes lists every class in the taxonomy.
func Classes() []Class { return core.Classes() }

// EventClasses lists the isolated-event classes.
func EventClasses() []Class { return core.EventClasses() }

// TTBasis selects which transaction time an isolated property is relative
// to (insertion or deletion).
type TTBasis = core.TTBasis

// Transaction-time bases.
const (
	TTInsertion = core.TTInsertion
	TTDeletion  = core.TTDeletion
)

// VTEndpoint selects the valid-time endpoint an event property applies to
// on an interval relation.
type VTEndpoint = core.VTEndpoint

// Valid-time endpoints.
const (
	VTStart = core.VTStart
	VTEnd   = core.VTEnd
)

// Stamp is the (transaction time, valid time) pair of one element.
type Stamp = core.Stamp

// IntervalStampPair is the (transaction time, valid interval) pair of one
// element of an interval relation.
type IntervalStampPair = core.IntervalStamp

// EventSpec is an isolated-event specialization (a Figure 1 region).
type EventSpec = core.EventSpec

// Isolated-event spec constructors (§3.1).
func GeneralSpec() EventSpec     { return core.GeneralSpec() }
func RetroactiveSpec() EventSpec { return core.RetroactiveSpec() }
func PredictiveSpec() EventSpec  { return core.PredictiveSpec() }

func DelayedRetroactiveSpec(dt Duration) (EventSpec, error) {
	return core.DelayedRetroactiveSpec(dt)
}
func EarlyPredictiveSpec(dt Duration) (EventSpec, error) {
	return core.EarlyPredictiveSpec(dt)
}
func RetroactivelyBoundedSpec(dt Duration) (EventSpec, error) {
	return core.RetroactivelyBoundedSpec(dt)
}
func StronglyRetroactivelyBoundedSpec(dt Duration) (EventSpec, error) {
	return core.StronglyRetroactivelyBoundedSpec(dt)
}
func DelayedStronglyRetroactivelyBoundedSpec(minDelay, maxDelay Duration) (EventSpec, error) {
	return core.DelayedStronglyRetroactivelyBoundedSpec(minDelay, maxDelay)
}
func PredictivelyBoundedSpec(dt Duration) (EventSpec, error) {
	return core.PredictivelyBoundedSpec(dt)
}
func StronglyPredictivelyBoundedSpec(dt Duration) (EventSpec, error) {
	return core.StronglyPredictivelyBoundedSpec(dt)
}
func EarlyStronglyPredictivelyBoundedSpec(minLead, maxLead Duration) (EventSpec, error) {
	return core.EarlyStronglyPredictivelyBoundedSpec(minLead, maxLead)
}
func StronglyBoundedSpec(dt1, dt2 Duration) (EventSpec, error) {
	return core.StronglyBoundedSpec(dt1, dt2)
}
func DegenerateSpec(g Granularity) (EventSpec, error) {
	return core.DegenerateSpec(g)
}

// Mapping is a mapping function for determined relations.
type Mapping = core.Mapping

// The paper's sample mapping functions.
func M1(dt Duration) Mapping { return core.M1(dt) }
func M2(dt Duration) Mapping { return core.M2(dt) }
func M3() Mapping            { return core.M3() }

// DeterminedSpec is a determined specialization: vt = m(e), with m's output
// additionally satisfying a base event class.
type DeterminedSpec = core.DeterminedSpec

// InterEventSpec is an inter-event specialization (§3.2).
type InterEventSpec = core.InterEventSpec

// Inter-event spec constructors.
func SequentialEventsSpec() InterEventSpec    { return core.SequentialEventsSpec() }
func NonDecreasingEventsSpec() InterEventSpec { return core.NonDecreasingEventsSpec() }
func NonIncreasingEventsSpec() InterEventSpec { return core.NonIncreasingEventsSpec() }

func TTEventRegularSpec(unit Duration) (InterEventSpec, error) {
	return core.TTEventRegularSpec(unit)
}
func VTEventRegularSpec(unit Duration) (InterEventSpec, error) {
	return core.VTEventRegularSpec(unit)
}
func TemporalEventRegularSpec(unit Duration) (InterEventSpec, error) {
	return core.TemporalEventRegularSpec(unit)
}
func StrictTTEventRegularSpec(unit Duration) (InterEventSpec, error) {
	return core.StrictTTEventRegularSpec(unit)
}
func StrictVTEventRegularSpec(unit Duration) (InterEventSpec, error) {
	return core.StrictVTEventRegularSpec(unit)
}
func StrictTemporalEventRegularSpec(unit Duration) (InterEventSpec, error) {
	return core.StrictTemporalEventRegularSpec(unit)
}

// EndpointSpec applies an event specialization to one valid-time endpoint
// of an interval relation (§3.3).
type EndpointSpec = core.EndpointSpec

// IntervalRegularSpec is an isolated-interval regularity specialization
// (§3.3).
type IntervalRegularSpec = core.IntervalRegularSpec

// Interval regularity spec constructors.
func TTIntervalRegularSpec(unit Duration) (IntervalRegularSpec, error) {
	return core.TTIntervalRegularSpec(unit)
}
func VTIntervalRegularSpec(unit Duration) (IntervalRegularSpec, error) {
	return core.VTIntervalRegularSpec(unit)
}
func TemporalIntervalRegularSpec(unit Duration) (IntervalRegularSpec, error) {
	return core.TemporalIntervalRegularSpec(unit)
}
func StrictTTIntervalRegularSpec(unit Duration) (IntervalRegularSpec, error) {
	return core.StrictTTIntervalRegularSpec(unit)
}
func StrictVTIntervalRegularSpec(unit Duration) (IntervalRegularSpec, error) {
	return core.StrictVTIntervalRegularSpec(unit)
}
func StrictTemporalIntervalRegularSpec(unit Duration) (IntervalRegularSpec, error) {
	return core.StrictTemporalIntervalRegularSpec(unit)
}

// InterIntervalSpec is an inter-interval specialization (§3.4).
type InterIntervalSpec = core.InterIntervalSpec

// Inter-interval spec constructors.
func SequentialIntervalsSpec() InterIntervalSpec    { return core.SequentialIntervalsSpec() }
func NonDecreasingIntervalsSpec() InterIntervalSpec { return core.NonDecreasingIntervalsSpec() }
func NonIncreasingIntervalsSpec() InterIntervalSpec { return core.NonIncreasingIntervalsSpec() }
func ContiguousSpec() InterIntervalSpec             { return core.ContiguousSpec() }

// SuccessiveTTSpec restricts tt-successive elements' valid intervals to
// relate by the given Allen relation.
func SuccessiveTTSpec(rel AllenRelation) InterIntervalSpec {
	return core.SuccessiveTTSpec(rel)
}

// Lattice queries (Figures 2-5).
func Children(c Class) []Class               { return core.Children(c) }
func Parents(c Class) []Class                { return core.Parents(c) }
func Ancestors(c Class) []Class              { return core.Ancestors(c) }
func Descendants(c Class) []Class            { return core.Descendants(c) }
func IsSpecializationOf(c, p Class) bool     { return core.IsSpecializationOf(c, p) }
func MostSpecificClasses(cs []Class) []Class { return core.MostSpecific(cs) }

// RenderLattice renders a category's generalization/specialization
// structure as an indented tree.
func RenderLattice(cat Category) string { return core.RenderLattice(cat) }

// Region is a Figure 1 region of the (tt, vt) plane.
type Region = core.Region

// Completeness is the result of the §3.1 completeness enumeration.
type Completeness = core.Completeness

// EnumerateRegions performs the completeness enumeration: eleven
// specialized isolated-event relations plus the general one.
func EnumerateRegions() Completeness { return core.EnumerateRegions() }

// RenderRegion draws a specialization's Figure 1 panel as ASCII art.
func RenderRegion(s EventSpec, size int) string { return core.RenderRegion(s, size) }

// Finding is one specialization an extension satisfies, with synthesized
// parameters.
type Finding = core.Finding

// Report is the classification of an extension.
type Report = core.Report

// Classify infers every specialization an extension satisfies under the
// given basis.
func Classify(es []*Element, basis TTBasis, gran Granularity) Report {
	return core.Classify(es, basis, gran)
}

// ClassifyPerPartition classifies each partition separately and reports
// the classes every partition satisfies (§3's per-partition basis).
func ClassifyPerPartition(parts map[Surrogate][]*Element, basis TTBasis, gran Granularity) Report {
	return core.ClassifyPerPartition(parts, basis, gran)
}

// StampsOf extracts (tt, vt) stamps from an extension.
func StampsOf(es []*Element, b TTBasis, p VTEndpoint) []Stamp {
	return core.StampsOf(es, b, p)
}

// Determine verifies that a candidate mapping function determines the
// extension's valid times.
func Determine(m Mapping, es []*Element, basis TTBasis, p VTEndpoint) error {
	return core.Determine(m, es, basis, p)
}
