package temporalspec

import (
	"io"

	"repro/internal/backlog"
	"repro/internal/constraint"
	"repro/internal/interval"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/tsql"
)

// IntervalSet is a finite union of disjoint half-open intervals — the
// "temporal element" of [Gad88] cited in §2 of the paper.
type IntervalSet = interval.Set

// NewIntervalSet builds a set from arbitrary intervals, normalizing
// overlaps and adjacencies.
func NewIntervalSet(ivs ...Interval) IntervalSet { return interval.NewSet(ivs...) }

// ErrCorruptBacklog reports a failed checksum, bad framing, or truncation
// in a persisted backlog.
var ErrCorruptBacklog = backlog.ErrCorrupt

// WriteBacklog serializes the relation's schema and backlog to w in the
// checksummed binary format (the [JMRS90] backlog representation §2
// cites).
func WriteBacklog(w io.Writer, r *Relation) error { return backlog.Write(w, r) }

// ReadBacklog deserializes a schema and backlog from rd.
func ReadBacklog(rd io.Reader) (Schema, []LogRecord, error) { return backlog.Read(rd) }

// SaveBacklog writes the relation to a file atomically.
func SaveBacklog(path string, r *Relation) error { return backlog.Save(path, r) }

// LoadBacklog reads a file written by SaveBacklog and replays it into a
// fresh relation using the given clock.
func LoadBacklog(path string, clock Clock) (*Relation, error) { return backlog.Load(path, clock) }

// ConstraintDescriptor is a serializable description of one declared
// specialization — the catalog entry that lets declarations survive
// persistence.
type ConstraintDescriptor = constraint.Descriptor

// DescribeConstraint converts a declared constraint into its descriptor;
// ok is false for constraints that carry arbitrary functions (Determined).
func DescribeConstraint(c Constraint, scope Scope) (ConstraintDescriptor, bool) {
	return constraint.Describe(c, scope)
}

// DescribeEnforcer converts an enforcer's declarations into descriptors,
// reporting how many were not serializable.
func DescribeEnforcer(en *Enforcer) ([]ConstraintDescriptor, int) {
	return constraint.DescribeEnforcer(en)
}

// SaveBacklogWithDeclarations persists the relation together with its
// constraint catalog.
func SaveBacklogWithDeclarations(path string, r *Relation, decls []ConstraintDescriptor) error {
	return backlog.SaveWithDeclarations(path, r, decls)
}

// LoadBacklogWithDeclarations loads a relation and re-attaches its
// persisted constraint catalog, warming the incremental checkers with the
// replayed history.
func LoadBacklogWithDeclarations(path string, clock Clock) (*Relation, []ConstraintDescriptor, error) {
	return backlog.LoadWithDeclarations(path, clock)
}

// Replay reconstructs a relation from a backlog. Guards are not consulted;
// attach enforcers after replaying.
func Replay(schema Schema, clock Clock, records []LogRecord) (*Relation, error) {
	return relation.Replay(schema, clock, records)
}

// NewIndexedEventStore returns a heap store for event relations augmented
// with a B-tree valid-time index — the physical design a general relation
// needs for fast historical queries, priced against the order-sharing the
// specialized designs get for free.
func NewIndexedEventStore() Store { return storage.NewIndexedEvent() }

// TemporalQuery is a parsed temporal query (SELECT ... FROM ... [AS OF tt]
// [WHEN ...] [WHERE ...]).
type TemporalQuery = tsql.Query

// TemporalResult is an evaluated query result.
type TemporalResult = tsql.Result

// ParseQuery parses a temporal query string.
func ParseQuery(src string) (*TemporalQuery, error) { return tsql.Parse(src) }

// EvalQuery runs a parsed query against a relation.
func EvalQuery(q *TemporalQuery, r *Relation) (*TemporalResult, error) { return tsql.Eval(q, r) }

// RunQuery parses and evaluates a query, resolving the relation by name.
func RunQuery(src string, lookup func(name string) (*Relation, bool)) (*TemporalResult, error) {
	return tsql.Run(src, lookup)
}
