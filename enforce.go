package temporalspec

import (
	"fmt"

	"repro/internal/constraint"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Scope selects the basis on which a specialization is enforced.
type Scope = constraint.Scope

// Enforcement scopes.
const (
	PerRelation  = constraint.PerRelation
	PerPartition = constraint.PerPartition
)

// Constraint is a declarable temporal specialization.
type Constraint = constraint.Constraint

// Declarable constraint kinds.
type (
	// EventConstraint declares an isolated-event specialization.
	EventConstraint = constraint.Event
	// DeterminedConstraint declares a determined specialization.
	DeterminedConstraint = constraint.Determined
	// InterEventConstraint declares an inter-event specialization.
	InterEventConstraint = constraint.InterEvent
	// IntervalRegularConstraint declares interval regularity.
	IntervalRegularConstraint = constraint.IntervalRegular
	// InterIntervalConstraint declares an inter-interval specialization.
	InterIntervalConstraint = constraint.InterInterval
)

// Enforcer validates every transaction against declared specializations.
type Enforcer = constraint.Enforcer

// NewEnforcer builds an enforcer for the given scope and constraints.
func NewEnforcer(scope Scope, cs ...Constraint) *Enforcer {
	return constraint.NewEnforcer(scope, cs...)
}

// Declare attaches the constraints to the relation as an enforcer, so that
// violating transactions are rejected.
func Declare(r *Relation, scope Scope, cs ...Constraint) *Enforcer {
	return constraint.Attach(r, scope, cs...)
}

// StoreKind identifies a physical organization.
type StoreKind = storage.Kind

// Physical organizations.
const (
	HeapStore      = storage.Heap
	TTOrderedStore = storage.TTOrdered
	VTOrderedStore = storage.VTOrdered
)

// Store is a physical organization of a relation's elements.
type Store = storage.Store

// Store constructors for explicit physical-design choices (the advisor
// normally picks for you).
func NewHeapStore() Store  { return storage.NewHeap() }
func NewTTLogStore() Store { return storage.NewTTLog() }
func NewVTLogStore() Store { return storage.NewVTLog() }

// Advice is the storage advisor's recommendation.
type Advice = storage.Advice

// Advise maps declared specializations to a physical organization, per the
// paper's optimization remarks.
func Advise(classes []Class, stampKind TimestampKind) Advice {
	return storage.Advise(classes, stampKind)
}

// AdviseAuto is Advise with a second channel: classes observed in the
// extension but not declared. Observed classes license the same ordered
// organizations, but the advice is marked inferred (revocable — a future
// insert may break the property) and observed bounds never enable
// pushdowns, which require a declared promise.
func AdviseAuto(declared, observed []Class, stampKind TimestampKind) Advice {
	return storage.AdviseAuto(declared, observed, stampKind)
}

// QueryEngine executes current/historical/rollback queries over a store,
// reporting plans and touched counts.
type QueryEngine = query.Engine

// QueryResult is a query answer with its plan and cost.
type QueryResult = query.Result

// NewQueryEngine builds an engine over a store built for the declared
// classes.
func NewQueryEngine(store Store, classes []Class) *QueryEngine {
	return query.New(store, classes)
}

// EngineForRelation loads a relation into the advised store and returns a
// query engine over it.
func EngineForRelation(r *Relation, classes []Class) (*QueryEngine, Advice, error) {
	return query.ForRelation(r, classes)
}

// WorkloadConfig parameterizes a workload generator.
type WorkloadConfig = workload.Config

// Workload generators for the paper's motivating applications.
func MonitoringWorkload(cfg WorkloadConfig) (*Relation, error)  { return workload.Monitoring(cfg) }
func PayrollWorkload(cfg WorkloadConfig) (*Relation, error)     { return workload.Payroll(cfg) }
func AccountingWorkload(cfg WorkloadConfig) (*Relation, error)  { return workload.Accounting(cfg) }
func OrdersWorkload(cfg WorkloadConfig) (*Relation, error)      { return workload.Orders(cfg) }
func ArchaeologyWorkload(cfg WorkloadConfig) (*Relation, error) { return workload.Archaeology(cfg) }

// AssignmentsWorkload builds the weekly-assignments interval relation with
// the given number of employee life-lines.
func AssignmentsWorkload(cfg WorkloadConfig, employees int) (*Relation, error) {
	return workload.Assignments(cfg, employees)
}

// EventStampsWorkload generates stamps inside a given isolated-event
// class's Figure 1 region.
func EventStampsWorkload(class Class, cfg WorkloadConfig) []Stamp {
	return workload.EventStamps(class, cfg)
}

// WorkloadBounds returns the representative bounds EventStampsWorkload
// generates within.
func WorkloadBounds() (inner, outer Duration) { return workload.Bounds() }

// EnableBoundedPushdown turns a declared two-sided bound (lo ≤ vt − tt ≤
// hi, from spec.OffsetBounds) into a query strategy: valid-time queries on
// the engine's tt-ordered store binary-search the implied transaction-time
// window instead of scanning. Only sound for event-stamped relations —
// interval starts are not bounded below by a query point — and only fixed
// (non-calendric) two-sided bounds qualify.
func EnableBoundedPushdown(en *QueryEngine, r *Relation, spec EventSpec) error {
	if r.Schema().ValidTime != EventStamp {
		return fmt.Errorf("temporalspec: bounded pushdown requires an event-stamped relation")
	}
	lo, hi, ok := spec.OffsetBounds()
	if !ok {
		return fmt.Errorf("temporalspec: %v has no fixed two-sided offset bounds", spec)
	}
	return en.UseVTOffsetBounds(lo, hi)
}
