package temporalspec

import (
	"repro/internal/element"
	"repro/internal/relation"
	"repro/internal/surrogate"
	"repro/internal/tx"
)

// Surrogate is an opaque system-generated identifier (element or object).
type Surrogate = surrogate.Surrogate

// Value is a single attribute value (string, int, float, bool, time, or
// null).
type Value = element.Value

// ValueKind discriminates attribute value types.
type ValueKind = element.ValueKind

// Attribute value kinds.
const (
	KindNull   = element.KindNull
	KindString = element.KindString
	KindInt    = element.KindInt
	KindFloat  = element.KindFloat
	KindBool   = element.KindBool
	KindTime   = element.KindTime
)

// Value constructors.
func Null() Value               { return element.Null() }
func String(s string) Value     { return element.String_(s) }
func Int(i int64) Value         { return element.Int(i) }
func Float(f float64) Value     { return element.Float(f) }
func Bool(b bool) Value         { return element.Bool(b) }
func TimeValue(c Chronon) Value { return element.Time(c) }

// Timestamp is a valid time-stamp: an event or an interval.
type Timestamp = element.Timestamp

// TimestampKind discriminates event- from interval-stamped relations.
type TimestampKind = element.TimestampKind

// Valid time-stamp kinds.
const (
	EventStamp    = element.EventStamp
	IntervalStamp = element.IntervalStamp
)

// EventAt builds an event valid time-stamp.
func EventAt(c Chronon) Timestamp { return element.EventAt(c) }

// SpanOf builds an interval valid time-stamp [start, end).
func SpanOf(start, end Chronon) Timestamp { return element.SpanOf(start, end) }

// Element is a temporal element: the unit of storage, carrying surrogates,
// the transaction-time existence interval, the valid time-stamp, and
// attribute values.
type Element = element.Element

// Column describes one attribute of a relation schema.
type Column = relation.Column

// Schema describes a temporal relation.
type Schema = relation.Schema

// Relation is an in-memory bitemporal relation.
type Relation = relation.Relation

// Insertion describes the user-supplied part of an insert.
type Insertion = relation.Insertion

// Op identifies a backlog operation (insert or logical delete).
type Op = relation.Op

// Backlog operation kinds.
const (
	OpInsert = relation.OpInsert
	OpDelete = relation.OpDelete
)

// LogRecord is one backlog entry.
type LogRecord = relation.LogRecord

// Guard validates transactions before they are applied.
type Guard = relation.Guard

// Clock is a monotonically increasing transaction-time source.
type Clock = tx.Clock

// LogicalClock is a deterministic clock advancing a fixed step per
// transaction.
type LogicalClock = tx.LogicalClock

// NewLogicalClock returns a clock whose first transaction time is
// origin+step.
func NewLogicalClock(origin Chronon, step int64) *LogicalClock {
	return tx.NewLogicalClock(origin, step)
}

// NewScriptedClock returns a clock replaying an explicit stamp sequence.
func NewScriptedClock(stamps ...Chronon) *tx.ScriptedClock {
	return tx.NewScriptedClock(stamps...)
}

// NewRelation creates an empty relation with the given schema and clock.
func NewRelation(schema Schema, clock Clock) *Relation {
	return relation.New(schema, clock)
}

// Relation operation errors.
var (
	ErrNoSuchElement  = relation.ErrNoSuchElement
	ErrAlreadyDeleted = relation.ErrAlreadyDeleted
	ErrWrongStampKind = relation.ErrWrongStampKind
)

// LockedRelation wraps a relation for safe concurrent use: writes take an
// exclusive lock, queries a shared one.
type LockedRelation = relation.Locked

// NewLockedRelation wraps an existing relation; do not use the bare
// relation concurrently afterwards.
func NewLockedRelation(r *Relation) *LockedRelation { return relation.NewLocked(r) }

// SystemClock is a wall-clock-backed transaction-time source with
// uniqueness enforced under same-second collisions and backwards steps.
type SystemClock = tx.SystemClock

// NewSystemClock returns a wall-clock-backed transaction-time source.
func NewSystemClock() *SystemClock { return tx.NewSystemClock() }
