package temporalspec_test

import (
	"fmt"

	ts "repro"
)

// Declaring a retroactive relation and watching enforcement reject a
// future-valid fact.
func ExampleDeclare() {
	r := ts.NewRelation(ts.Schema{
		Name: "readings", ValidTime: ts.EventStamp, Granularity: ts.Second,
	}, ts.NewLogicalClock(1000, 60))
	ts.Declare(r, ts.PerRelation, ts.EventConstraint{Spec: ts.RetroactiveSpec()})

	if _, err := r.Insert(ts.Insertion{VT: ts.EventAt(900)}); err == nil {
		fmt.Println("past reading stored")
	}
	if _, err := r.Insert(ts.Insertion{VT: ts.EventAt(5000)}); err != nil {
		fmt.Println("future reading rejected")
	}
	// Output:
	// past reading stored
	// future reading rejected
}

// Classifying an extension into the taxonomy and asking the advisor for a
// physical design.
func ExampleClassify() {
	r := ts.NewRelation(ts.Schema{
		Name: "samples", ValidTime: ts.EventStamp, Granularity: ts.Second,
	}, ts.NewLogicalClock(0, 60))
	for i := int64(1); i <= 4; i++ {
		// Each sample is stored exactly 45 s after it was taken.
		if _, err := r.Insert(ts.Insertion{VT: ts.EventAt(ts.Chronon(i*60 - 45))}); err != nil {
			panic(err)
		}
	}
	rep := ts.Classify(r.Versions(), ts.TTInsertion, ts.Second)
	fmt.Println("sequential:", rep.Has(ts.GloballySequentialEvents))
	fmt.Println("retroactive:", rep.Has(ts.Retroactive))
	fmt.Println("advice:", ts.Advise(rep.Classes(), ts.EventStamp).Store)
	// Output:
	// sequential: true
	// retroactive: true
	// advice: vt-ordered log
}

// Allen's interval relations and their composition algebra.
func ExampleRelate() {
	morning := ts.MakeInterval(ts.DateTime(1992, 2, 3, 9, 0, 0), ts.DateTime(1992, 2, 3, 12, 0, 0))
	lunch := ts.MakeInterval(ts.DateTime(1992, 2, 3, 12, 0, 0), ts.DateTime(1992, 2, 3, 13, 0, 0))
	afternoon := ts.MakeInterval(ts.DateTime(1992, 2, 3, 13, 0, 0), ts.DateTime(1992, 2, 3, 17, 0, 0))

	fmt.Println(ts.Relate(morning, lunch))
	fmt.Println(ts.Relate(morning, afternoon))
	fmt.Println(ts.Compose(ts.Meets, ts.Meets))
	// Output:
	// meets
	// before
	// {before}
}

// The completeness enumeration of §3.1: eleven specialized isolated-event
// relations plus the general one.
func ExampleEnumerateRegions() {
	c := ts.EnumerateRegions()
	fmt.Printf("%d + %d + %d regions; %d specializations\n",
		c.ZeroLines, c.OneLine, c.TwoLines, c.Specializations())
	// Output:
	// 1 + 6 + 5 regions; 11 specializations
}

// A bitemporal SELECT: what did the database believe at transaction time
// 25 about facts valid at 100?
func ExampleRunQuery() {
	r := ts.NewRelation(ts.Schema{
		Name: "emp", ValidTime: ts.EventStamp, Granularity: ts.Second,
		Invariant: []ts.Column{{Name: "name", Type: ts.KindString}},
	}, ts.NewLogicalClock(0, 10))
	e, _ := r.Insert(ts.Insertion{VT: ts.EventAt(100), Invariant: []ts.Value{ts.String("ann")}})
	_, _ = r.Modify(e.ES, ts.EventAt(300), nil)

	res, _ := ts.RunQuery("select name from emp as of 15 when valid at 100",
		func(string) (*ts.Relation, bool) { return r, true })
	fmt.Println(len(res.Rows), "row(s)")
	// Output:
	// 1 row(s)
}
